//! The repository's central invariant: bypassing never changes
//! architectural state. Every benchmark must produce bit-identical results
//! under every collector model, and every run must match its host
//! reference.

use bow::prelude::*;

fn all_configs() -> Vec<Config> {
    vec![
        ConfigBuilder::baseline().build(),
        ConfigBuilder::bow(2).build(),
        ConfigBuilder::bow(3).build(),
        ConfigBuilder::bow(4).build(),
        ConfigBuilder::bow_wr(3).hints(false).build(),
        ConfigBuilder::bow_wr(2).build(),
        ConfigBuilder::bow_wr(3).build(),
        ConfigBuilder::bow_wr(4).build(),
        ConfigBuilder::bow_wr(3).half_size(true).build(),
        ConfigBuilder::bow_flex(6).build(),
        ConfigBuilder::bow_flex(12).build(),
        ConfigBuilder::bow_wr(3).reorder(true).build(),
        ConfigBuilder::rfc().build(),
    ]
}

#[test]
fn every_benchmark_matches_reference_under_every_collector() {
    for bench in suite(Scale::Test) {
        for config in all_configs() {
            let label = config.label.clone();
            let rec = bow::experiment::run(bench.as_ref(), config);
            assert!(
                rec.outcome.result.completed,
                "{} under {label} hit the watchdog",
                bench.name()
            );
            if let Err(e) = &rec.outcome.checked {
                panic!("{} under {label}: {e}", bench.name());
            }
        }
    }
}

#[test]
fn stats_satisfy_accounting_identities() {
    for bench in suite(Scale::Test) {
        for config in [
            ConfigBuilder::baseline().build(),
            ConfigBuilder::bow(3).build(),
            ConfigBuilder::bow_wr(3).build(),
            ConfigBuilder::rfc().build(),
        ] {
            let label = config.label.clone();
            let rec = bow::experiment::run(bench.as_ref(), config);
            let s = &rec.outcome.result.stats;
            // Reads: every unique source register was bypassed, served by
            // the RFC, or served by a bank.
            assert!(
                s.rf.reads + s.bypassed_reads + s.rfc_reads > 0,
                "{label}: no reads at all?"
            );
            // Writes: everything produced is routed somewhere.
            assert!(
                s.rf_writes_routed + s.bypassed_writes <= s.writes_total + s.forced_evictions,
                "{}: {label}: routed {} + bypassed {} > total {}",
                bench.name(),
                s.rf_writes_routed,
                s.bypassed_writes,
                s.writes_total
            );
            // Baseline never bypasses.
            if label == "baseline" {
                assert_eq!(s.bypassed_reads, 0);
                assert_eq!(s.bypassed_writes, 0);
                assert_eq!(s.writes_total, s.rf_writes_routed);
            }
            // IPC is finite and positive.
            assert!(rec.ipc() > 0.0 && rec.ipc().is_finite());
        }
    }
}

#[test]
fn bypass_rates_monotonic_in_window_for_reads() {
    // Larger windows can only expose more read reuse (Fig. 3 trend),
    // checked on the analyzer which is timing-independent.
    for bench in suite(Scale::Test) {
        let config = ConfigBuilder::baseline()
            .analyzer(&[2, 3, 4, 5, 6, 7])
            .build();
        let rec = bow::experiment::run(bench.as_ref(), config);
        let rates: Vec<f64> = rec
            .outcome
            .result
            .windows
            .iter()
            .map(|w| w.read_rate())
            .collect();
        for pair in rates.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-9,
                "{}: read bypass not monotone: {rates:?}",
                bench.name()
            );
        }
    }
}

#[test]
fn energy_never_exceeds_baseline_for_bow_wr() {
    let model = EnergyModel::table_iv();
    for bench in suite(Scale::Test) {
        let base = bow::experiment::run(bench.as_ref(), ConfigBuilder::baseline().build());
        let wr = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow_wr(3).build());
        let rep = EnergyReport::normalized(
            &model,
            &wr.outcome.result.stats.access_counts(),
            &base.outcome.result.stats.access_counts(),
        );
        assert!(
            rep.total_norm() < 1.0,
            "{}: BOW-WR energy {:.3} not below baseline",
            bench.name(),
            rep.total_norm()
        );
    }
}
