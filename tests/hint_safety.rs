//! Safety of the compiler's `BocOnly` classification: a value the compiler
//! tags as transient must never be needed from the register file. We check
//! this dynamically by replaying every benchmark's per-warp instruction
//! stream through an exact window model and asserting that each read of a
//! transient value hits the window.

use bow::compiler::{classify_kernel, HintClass};
use bow::prelude::*;
use std::collections::HashMap;

/// Exact per-warp window replay over a *static* kernel path: walk each
/// basic block linearly (the in-block guarantee is what the compiler
/// relies on; across blocks it is conservative by construction).
fn check_kernel_hints(kernel: &Kernel, window: u64) {
    let classes: HashMap<usize, HintClass> =
        classify_kernel(kernel, window as u32).into_iter().collect();

    // Replay every straight-line block: entries (reg -> (last_touch,
    // transient_source_pc)).
    let cfg = bow::compiler::Cfg::build(kernel);
    for block in cfg.blocks() {
        let mut present: HashMap<u8, (u64, Option<usize>)> = HashMap::new();
        for (seq0, pc) in block.range().enumerate() {
            let seq = seq0 as u64;
            let inst = &kernel.insts[pc];
            // Slide.
            present.retain(|_, (touch, _)| seq.saturating_sub(*touch) < window);
            for r in inst.unique_src_regs() {
                match present.get_mut(&r.index()) {
                    Some((touch, _)) => *touch = seq,
                    None => {
                        // Window miss: this read goes to the RF. It must not
                        // be a read of a still-live transient value, i.e. no
                        // transient write to r can be the last reaching def
                        // inside this block.
                        let last_def = block
                            .range()
                            .take(seq0)
                            .rfind(|&p| kernel.insts[p].dst_reg() == Some(r));
                        if let Some(def_pc) = last_def {
                            assert_ne!(
                                classes.get(&def_pc),
                                Some(&HintClass::Transient),
                                "kernel `{}`: transient value r{} from #{def_pc} read from RF at #{pc}",
                                kernel.name,
                                r.index()
                            );
                        }
                        present.insert(r.index(), (seq, None));
                    }
                }
            }
            if let Some(d) = inst.dst_reg() {
                let transient = classes.get(&pc) == Some(&HintClass::Transient);
                present.insert(d.index(), (seq, transient.then_some(pc)));
            }
        }
        // Values still present at block end: transient ones must be dead in
        // every successor (the compiler only tags BocOnly when not
        // live-out), which classify_kernel already guarantees via liveness;
        // assert it independently.
        let lv = bow::compiler::Liveness::compute(kernel, &cfg);
        let bi = cfg.block_of(block.start);
        for (reg, (_, src)) in &present {
            if src.is_some() {
                let r = Reg::r(*reg);
                assert!(
                    !lv.live_out(bi).contains(r),
                    "kernel `{}`: transient r{} live out of block {bi}",
                    kernel.name,
                    reg
                );
            }
        }
    }
}

#[test]
fn transient_hints_are_safe_for_all_benchmarks_and_windows() {
    for bench in suite(Scale::Test) {
        let kernel = bench.kernel();
        for w in [2u64, 3, 4, 7] {
            check_kernel_hints(&kernel, w);
        }
    }
}

#[test]
fn annotated_kernels_run_correctly_at_every_window() {
    for bench in suite(Scale::Test) {
        for w in [2u32, 4] {
            let cfg = Config {
                label: format!("bow-wr iw{w}"),
                gpu: GpuConfig::scaled(CollectorKind::bow_wr(w)),
                hints: true,
                reorder: false,
                verify: true,
            };
            let rec = bow::experiment::run(bench.as_ref(), cfg);
            if let Err(e) = &rec.outcome.checked {
                panic!("{} iw{w}: {e}", bench.name());
            }
        }
    }
}

#[test]
fn all_workload_kernels_have_sound_divergence_structure() {
    for bench in suite(Scale::Test) {
        let rep = bow::compiler::check_structure(&bench.kernel());
        assert!(
            rep.is_ok(),
            "{}: {:?}",
            bench.name(),
            rep.errors().collect::<Vec<_>>()
        );
    }
}

#[test]
fn forced_evictions_are_rare_with_half_size_buffers() {
    // §IV-C: only ~3% of cycles need more than half the entries, so forced
    // evictions must stay rare relative to writes.
    let mut forced = 0u64;
    let mut writes = 0u64;
    for bench in suite(Scale::Test) {
        let rec = bow::experiment::run(
            bench.as_ref(),
            ConfigBuilder::bow_wr(3).half_size(true).build(),
        );
        rec.assert_checked();
        forced += rec.outcome.result.stats.forced_evictions;
        writes += rec.outcome.result.stats.writes_total;
    }
    assert!(
        (forced as f64) < 0.10 * writes as f64,
        "forced evictions {forced} vs writes {writes}"
    );
}
