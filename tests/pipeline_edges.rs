//! Edge cases of the pipeline model: partial warps, 2-D launches, LRR
//! scheduling, the full Table II SM count and oversized grids queueing on
//! block slots.

use bow::prelude::*;

/// d[i] = 3*i for a launch whose block is not a multiple of the warp size.
fn iota3() -> Kernel {
    let r = Reg::r;
    KernelBuilder::new("iota3")
        .s2r(r(0), Special::TidX)
        .s2r(r(1), Special::CtaidX)
        .s2r(r(2), Special::NtidX)
        .imad(r(0), r(1).into(), r(2).into(), r(0).into())
        .imul(r(3), r(0).into(), Operand::Imm(3))
        .shl(r(4), r(0).into(), Operand::Imm(2))
        .ldc(r(5), 0)
        .iadd(r(5), r(5).into(), r(4).into())
        .stg(r(5), 0, r(3).into())
        .exit()
        .build()
        .expect("builds")
}

#[test]
fn partial_warps_run_correctly() {
    // 48-thread blocks: warp 1 has only 16 valid lanes.
    for kind in [CollectorKind::Baseline, CollectorKind::bow_wr(3)] {
        let mut gpu = Gpu::new(GpuConfig::scaled(kind));
        let dims = KernelDims {
            grid: (3, 1),
            block: (48, 1),
        };
        let res = gpu.launch(&iota3(), dims, &[0x1000]);
        assert!(res.completed);
        for i in 0..(3 * 48) as u64 {
            assert_eq!(
                gpu.global().read_u32(0x1000 + 4 * i),
                3 * i as u32,
                "thread {i}"
            );
        }
    }
}

#[test]
fn two_dimensional_blocks_expose_tid_y() {
    // tid.y = flat / ntid.x; store tid.y into d[flat thread id].
    let r = Reg::r;
    let k = KernelBuilder::new("tidy")
        .s2r(r(0), Special::TidX)
        .s2r(r(1), Special::TidY)
        .s2r(r(2), Special::NtidX)
        .imad(r(0), r(1).into(), r(2).into(), r(0).into()) // flat in block
        .shl(r(3), r(0).into(), Operand::Imm(2))
        .ldc(r(4), 0)
        .iadd(r(4), r(4).into(), r(3).into())
        .stg(r(4), 0, r(1).into())
        .exit()
        .build()
        .expect("builds");
    let mut gpu = Gpu::new(GpuConfig::scaled(CollectorKind::bow_wr(3)));
    let dims = KernelDims {
        grid: (1, 1),
        block: (16, 8),
    };
    gpu.launch(&k, dims, &[0x2000]);
    for y in 0..8u64 {
        for x in 0..16u64 {
            let flat = y * 16 + x;
            assert_eq!(gpu.global().read_u32(0x2000 + 4 * flat), y as u32);
        }
    }
}

#[test]
fn lrr_scheduler_completes_the_suite_correctly() {
    for bench in suite(Scale::Test) {
        let mut cfg = ConfigBuilder::bow_wr(3).build();
        cfg.gpu.sched = bow::sim::SchedPolicy::Lrr;
        cfg.label = "bow-wr lrr".into();
        let rec = bow::experiment::run(bench.as_ref(), cfg);
        if let Err(e) = &rec.outcome.checked {
            panic!("{} under LRR: {e}", bench.name());
        }
    }
}

#[test]
fn full_titan_x_sm_count_matches_scaled_results() {
    let k = iota3();
    let run = |num_sms: u32| -> u64 {
        let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
        cfg.num_sms = num_sms;
        let mut gpu = Gpu::new(cfg);
        let res = gpu.launch(&k, KernelDims::linear(8, 128), &[0x3000]);
        assert!(res.completed);
        for i in 0..(8 * 128) as u64 {
            assert_eq!(gpu.global().read_u32(0x3000 + 4 * i), 3 * i as u32);
        }
        res.stats.warp_instructions
    };
    // Same total work regardless of SM count; more SMs only spread it.
    assert_eq!(run(2), run(56));
}

#[test]
fn oversized_grids_queue_on_block_slots() {
    // 64 blocks of 8 warps each = 512 warps >> 2 SMs x 32 warp slots:
    // the block scheduler must drip-feed without deadlock.
    let mut gpu = Gpu::new(GpuConfig::scaled(CollectorKind::bow_wr(3)));
    let res = gpu.launch(&iota3(), KernelDims::linear(64, 256), &[0x8_0000]);
    assert!(res.completed);
    let n = 64u64 * 256;
    for i in [0, n / 2, n - 1] {
        assert_eq!(gpu.global().read_u32(0x8_0000 + 4 * i), (3 * i) as u32);
    }
}

#[test]
fn pipeline_trace_orders_stages_per_instruction() {
    use bow::sim::Stage;
    let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
    cfg.trace_pipeline = true;
    let mut gpu = Gpu::new(cfg);
    gpu.launch(&iota3(), KernelDims::linear(1, 32), &[0x5000]);
    let trace = gpu.take_trace();
    assert!(!trace.is_empty());
    // Every data instruction shows Issue -> Dispatch -> Writeback in
    // non-decreasing cycle order.
    use std::collections::HashMap;
    type StageCycles = (Option<u64>, Option<u64>, Option<u64>);
    let mut seen: HashMap<(usize, u64), StageCycles> = HashMap::new();
    for e in trace.events() {
        let entry = seen.entry((e.warp, e.seq)).or_default();
        match e.stage {
            Stage::Issue => entry.0 = Some(e.cycle),
            Stage::Dispatch => entry.1 = Some(e.cycle),
            Stage::Writeback => entry.2 = Some(e.cycle),
            Stage::Control => {}
        }
    }
    let mut complete = 0;
    for ((w, s), (i, d, wb)) in &seen {
        if let (Some(i), Some(d), Some(wb)) = (i, d, wb) {
            assert!(i <= d && d < wb, "warp {w} seq {s}: {i} {d} {wb}");
            complete += 1;
        }
    }
    assert!(complete > 5, "expected several fully traced instructions");
}

#[test]
fn guarded_stores_only_touch_active_lanes() {
    // Odd threads store, even threads do not; untouched slots stay zero.
    let r = Reg::r;
    let k = KernelBuilder::new("odds")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, Pred::p(0), r(1).into(), Operand::Imm(0))
        .shl(r(2), r(0).into(), Operand::Imm(2))
        .ldc(r(3), 0)
        .iadd(r(3), r(3).into(), r(2).into())
        .guard(Pred::p(0), false)
        .stg(r(3), 0, r(0).into())
        .exit()
        .build()
        .expect("builds");
    let mut gpu = Gpu::new(GpuConfig::scaled(CollectorKind::bow_wr(3)));
    gpu.launch(&k, KernelDims::linear(1, 32), &[0x4000]);
    for i in 0..32u64 {
        let want = if i % 2 == 1 { i as u32 } else { 0 };
        assert_eq!(gpu.global().read_u32(0x4000 + 4 * i), want, "lane {i}");
    }
}
