//! Oracle-vs-harness cross-check: every Table III workload must agree
//! with the architectural oracle.
//!
//! With [`OracleCheck::Memory`], each launch runs twice — once through
//! the cycle-level pipeline, once through the timing-free warp-serial
//! oracle — and panics when the final global-memory fingerprints differ.
//! The benchmark's own `checked` host reference then closes the
//! triangle: pipeline == oracle == host model, for all fifteen kernels.
//!
//! Memory mode (not full lockstep) is the right strictness here: some
//! workloads race benignly across warps — level-synchronous `bfs` marks
//! a node from several edges with the same level — so intermediate
//! register values legitimately depend on warp interleaving while final
//! memory does not. Race-free kernels get the per-instruction lockstep
//! check as well.

use bow::prelude::*;
use bow::sim::OracleCheck;

fn crosscheck(mode: OracleCheck, kind: CollectorKind, hints: bool, skip: &[&str]) {
    for bench in suite(Scale::Test) {
        if skip.contains(&bench.name()) {
            continue;
        }
        let mut cfg = GpuConfig::scaled(kind);
        cfg.oracle_check = mode;
        let kernel = if hints {
            annotate(&bench.kernel(), kind.window().unwrap_or(3)).0
        } else {
            bench.kernel()
        };
        let mut gpu = Gpu::new(cfg);
        // An oracle/pipeline mismatch panics inside launch; a
        // host-reference mismatch surfaces here.
        let outcome = bench.run_with(&mut gpu, &kernel);
        assert!(outcome.result.completed, "{}: watchdog fired", bench.name());
        if let Err(e) = outcome.checked {
            panic!("{}: host reference disagrees: {e}", bench.name());
        }
    }
}

#[test]
fn all_workloads_match_the_oracle_on_baseline() {
    crosscheck(OracleCheck::Memory, CollectorKind::Baseline, false, &[]);
}

#[test]
fn all_workloads_match_the_oracle_under_bow_wr_with_hints() {
    crosscheck(OracleCheck::Memory, CollectorKind::bow_wr(3), true, &[]);
}

/// Race-free workloads additionally pass per-instruction lockstep —
/// everything except `bfs`, whose benign cross-warp race (several edges
/// marking one node with the same level) makes intermediate register
/// values schedule-dependent.
#[test]
fn race_free_workloads_pass_lockstep() {
    crosscheck(
        OracleCheck::Lockstep,
        CollectorKind::bow_wr(3),
        true,
        &["bfs"],
    );
}
