//! Shape checks against the paper's headline claims: who wins, by roughly
//! what factor, and where the crossovers fall. Absolute numbers differ
//! (our substrate is a from-scratch simulator), so tolerances are wide and
//! documented in EXPERIMENTS.md.

use bow::prelude::*;

/// Suite-average read/write bypass rates from the timing-independent
/// analyzer (Fig. 3's experiment).
fn analyzer_averages(windows: &[u32]) -> Vec<(f64, f64)> {
    let mut totals = vec![(0u64, 0u64, 0u64, 0u64); windows.len()];
    for bench in suite(Scale::Test) {
        let rec = bow::experiment::run(
            bench.as_ref(),
            ConfigBuilder::baseline().analyzer(windows).build(),
        );
        rec.assert_checked();
        for (i, w) in rec.outcome.result.windows.iter().enumerate() {
            totals[i].0 += w.bypassed_reads;
            totals[i].1 += w.total_reads;
            totals[i].2 += w.bypassed_writes;
            totals[i].3 += w.total_writes;
        }
    }
    totals
        .into_iter()
        .map(|(br, tr, bw, tw)| (br as f64 / tr.max(1) as f64, bw as f64 / tw.max(1) as f64))
        .collect()
}

#[test]
fn fig3_shape_substantial_reuse_growing_with_window() {
    let avgs = analyzer_averages(&[2, 3, 7]);
    let (r2, _w2) = avgs[0];
    let (r3, _w3) = avgs[1];
    let (r7, _w7) = avgs[2];
    // Paper: reads 45% (IW2) -> 59% (IW3) -> >70% (IW7).
    assert!(r2 > 0.25, "IW2 read bypass too low: {r2:.2}");
    assert!(r3 > r2, "IW3 must beat IW2");
    assert!(r7 > r3, "IW7 must beat IW3");
    assert!(r7 > 0.45, "IW7 read bypass too low: {r7:.2}");
    // Diminishing returns: the 3->7 gain is smaller than the 2->3 level.
    assert!(r7 - r3 < 0.35, "no saturation visible");
}

#[test]
fn fig10_shape_bow_improves_ipc_on_average_and_never_regresses_much() {
    let mut base_cycles = 0.0;
    let mut bow_cycles = 0.0;
    let mut wr_cycles = 0.0;
    for bench in suite(Scale::Test) {
        let b = bow::experiment::run(bench.as_ref(), ConfigBuilder::baseline().build());
        let o = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow(3).build());
        let w = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow_wr(3).build());
        b.assert_checked();
        o.assert_checked();
        w.assert_checked();
        // Per-benchmark: BOW should not significantly regress.
        let speedup = b.outcome.result.cycles as f64 / o.outcome.result.cycles as f64;
        assert!(
            speedup > 0.97,
            "{}: BOW slowed down by {:.1}%",
            bench.name(),
            100.0 * (1.0 - speedup)
        );
        base_cycles += b.outcome.result.cycles as f64;
        bow_cycles += o.outcome.result.cycles as f64;
        wr_cycles += w.outcome.result.cycles as f64;
    }
    // Paper: +11% (BOW) / +13% (BOW-WR) average IPC at IW3.
    let bow_gain = base_cycles / bow_cycles - 1.0;
    let wr_gain = base_cycles / wr_cycles - 1.0;
    assert!(
        bow_gain > 0.02,
        "BOW suite speedup only {:.1}%",
        100.0 * bow_gain
    );
    assert!(
        wr_gain >= bow_gain - 0.02,
        "BOW-WR should be at least on par with BOW"
    );
}

#[test]
fn fig11_shape_half_size_loses_little() {
    let mut full = 0.0;
    let mut half = 0.0;
    for bench in suite(Scale::Test) {
        let f = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow_wr(3).build());
        let h = bow::experiment::run(
            bench.as_ref(),
            ConfigBuilder::bow_wr(3).half_size(true).build(),
        );
        f.assert_checked();
        h.assert_checked();
        full += f.outcome.result.cycles as f64;
        half += h.outcome.result.cycles as f64;
    }
    // Paper: ~2% performance loss for half-size buffers.
    let loss = half / full - 1.0;
    assert!(
        loss < 0.05,
        "half-size loses {:.1}% (paper: ~2%)",
        100.0 * loss
    );
}

#[test]
fn fig13_shape_energy_ordering_baseline_bow_bowwr() {
    let model = EnergyModel::table_iv();
    let mut bow_sum = 0.0;
    let mut wr_sum = 0.0;
    let mut n = 0.0;
    for bench in suite(Scale::Test) {
        let b = bow::experiment::run(bench.as_ref(), ConfigBuilder::baseline().build());
        let base_counts = b.outcome.result.stats.access_counts();
        let o = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow(3).build());
        let w = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow_wr(3).build());
        let eo = EnergyReport::normalized(
            &model,
            &o.outcome.result.stats.access_counts(),
            &base_counts,
        );
        let ew = EnergyReport::normalized(
            &model,
            &w.outcome.result.stats.access_counts(),
            &base_counts,
        );
        assert!(
            ew.total_norm() <= eo.total_norm() + 1e-9,
            "{}: BOW-WR ({:.3}) must not exceed BOW ({:.3})",
            bench.name(),
            ew.total_norm(),
            eo.total_norm()
        );
        bow_sum += eo.total_norm();
        wr_sum += ew.total_norm();
        n += 1.0;
    }
    // Paper: BOW saves ~36%, BOW-WR ~55% of RF dynamic energy.
    let bow_saving = 1.0 - bow_sum / n;
    let wr_saving = 1.0 - wr_sum / n;
    assert!(
        bow_saving > 0.15,
        "BOW saving only {:.1}%",
        100.0 * bow_saving
    );
    assert!(
        wr_saving > 0.30,
        "BOW-WR saving only {:.1}%",
        100.0 * wr_saving
    );
    assert!(wr_saving > bow_saving, "write bypassing must add savings");
}

#[test]
fn rfc_comparison_shape_energy_saver_but_not_performance() {
    let mut base_cycles = 0.0;
    let mut rfc_cycles = 0.0;
    let model = EnergyModel::table_iv();
    let mut rfc_energy = 0.0;
    let mut n = 0.0;
    for bench in suite(Scale::Test) {
        let b = bow::experiment::run(bench.as_ref(), ConfigBuilder::baseline().build());
        let r = bow::experiment::run(bench.as_ref(), ConfigBuilder::rfc().build());
        r.assert_checked();
        base_cycles += b.outcome.result.cycles as f64;
        rfc_cycles += r.outcome.result.cycles as f64;
        rfc_energy += EnergyReport::normalized(
            &model,
            &r.outcome.result.stats.access_counts(),
            &b.outcome.result.stats.access_counts(),
        )
        .total_norm();
        n += 1.0;
    }
    // Paper: RFC gains <2% IPC but does save dynamic energy.
    let gain = base_cycles / rfc_cycles - 1.0;
    assert!(
        gain < 0.06,
        "RFC speedup {:.1}% looks too strong",
        100.0 * gain
    );
    assert!(rfc_energy / n < 0.95, "RFC should save energy");
}

#[test]
fn fig7_shape_write_destination_distribution() {
    // Paper averages: 21% RF-only / 27% both / 52% transient at IW3.
    let mut dest = [0u64; 3];
    for bench in suite(Scale::Test) {
        let w = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow_wr(3).build());
        w.assert_checked();
        for (sum, &n) in dest.iter_mut().zip(&w.outcome.result.stats.write_dest) {
            *sum += n;
        }
    }
    let total: u64 = dest.iter().sum();
    assert!(total > 0);
    let frac = |i: usize| dest[i] as f64 / total as f64;
    // Transient values dominate, each class is non-trivial.
    assert!(frac(2) > 0.30, "transient fraction {:.2}", frac(2));
    assert!(frac(0) > 0.05, "rf-only fraction {:.2}", frac(0));
    assert!(frac(1) > 0.05, "both fraction {:.2}", frac(1));
}

#[test]
fn fig12_shape_oc_residency_drops_with_bow() {
    let mut base_oc = 0u64;
    let mut bow_oc = 0u64;
    for bench in suite(Scale::Test) {
        let b = bow::experiment::run(bench.as_ref(), ConfigBuilder::baseline().build());
        let o = bow::experiment::run(bench.as_ref(), ConfigBuilder::bow(3).build());
        base_oc += b.outcome.result.stats.oc_cycles();
        bow_oc += o.outcome.result.stats.oc_cycles();
    }
    // Paper: ~60% reduction in OC-stage cycles at IW3.
    assert!(
        (bow_oc as f64) < 0.8 * base_oc as f64,
        "OC cycles {} not clearly below baseline {}",
        bow_oc,
        base_oc
    );
}
