//! Determinism suite for the windowed parallel execution engine.
//!
//! The engine in `bow_sim::parallel` shards a launch's SM pipelines
//! across a worker pool, but its windowed commit protocol is designed so
//! that `sim_threads` is a *pure execution knob*: results are
//! byte-identical at any thread count, on any host. These tests pin that
//! contract at the public-API level, across the whole Table III suite:
//!
//! * every workload × every collector design produces the same
//!   [`SimStats::fingerprint`] under `sim_threads` ∈ {1, 2, 8};
//! * the architectural oracle (memory mode, and per-instruction lockstep
//!   for race-free kernels) still agrees with the pipeline when the
//!   pipeline runs threaded;
//! * the race sanitizer's report renders byte-identically under every
//!   engine — serial, windowed at any worker count, whole-budget — and
//!   `bfs` (the one benchmark with real findings) is pinned against a
//!   golden snapshot (`BOW_BLESS=1` to re-bless).
//!
//! [`SimStats::fingerprint`]: bow_sim::SimStats::fingerprint

use bow::corpus::adversarial;
use bow::experiment::{Config, ConfigBuilder};
use bow::prelude::*;
use bow::sim::OracleCheck;
use bow::suite::Suite;
use bow_isa::fuzz::{FuzzKernel, PARAMS};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The four collector designs the golden suite pins, on a chosen core.
fn configs_on(threads: u32, core: CoreModelKind) -> Vec<Config> {
    vec![
        ConfigBuilder::baseline()
            .sim_threads(threads)
            .core_model(core)
            .build(),
        ConfigBuilder::bow(3)
            .sim_threads(threads)
            .core_model(core)
            .build(),
        ConfigBuilder::bow_wr(3)
            .sim_threads(threads)
            .core_model(core)
            .build(),
        ConfigBuilder::rfc()
            .sim_threads(threads)
            .core_model(core)
            .build(),
    ]
}

/// One fingerprint line per (benchmark × config) cell, in sweep order.
fn fingerprint_table(threads: u32) -> Vec<String> {
    fingerprint_table_on(threads, CoreModelKind::Pascal)
}

fn fingerprint_table_on(threads: u32, core: CoreModelKind) -> Vec<String> {
    let sweep = Suite::new(Scale::Test)
        .configs(configs_on(threads, core))
        .progress(false)
        .run();
    sweep.assert_checked();
    sweep
        .rows
        .iter()
        .flat_map(|row| {
            row.records.iter().map(|r| {
                format!(
                    "{}/{} {:016x}",
                    r.benchmark,
                    r.label,
                    r.outcome.result.stats.fingerprint()
                )
            })
        })
        .collect()
}

/// The headline contract: the full suite's stats fingerprints are
/// byte-identical for `sim_threads` ∈ {1, 2, 8}. 1 exercises the inline
/// host, 2 a genuine shard split, and 8 more workers than the scaled
/// model has SMs (workers own uneven shard sizes, some empty).
#[test]
fn suite_fingerprints_invariant_under_thread_count() {
    let serial = fingerprint_table(1);
    assert_eq!(serial.len(), 15 * 4, "suite shape changed");
    for threads in [2u32, 8] {
        let threaded = fingerprint_table(threads);
        for (s, t) in serial.iter().zip(&threaded) {
            assert_eq!(s, t, "cell diverged at sim_threads={threads}");
        }
        assert_eq!(serial.len(), threaded.len());
    }
}

/// The same contract on the modern core: sub-core state, the control-bit
/// interlock and the uniform register file all live inside one SM's
/// pipeline, so the windowed engine's shard-commit protocol must keep
/// `sim_threads` a pure execution knob there too.
#[test]
fn modern_suite_fingerprints_invariant_under_thread_count() {
    let serial = fingerprint_table_on(1, CoreModelKind::Modern);
    assert_eq!(serial.len(), 15 * 4, "suite shape changed");
    for threads in [2u32, 8] {
        let threaded = fingerprint_table_on(threads, CoreModelKind::Modern);
        for (s, t) in serial.iter().zip(&threaded) {
            assert_eq!(s, t, "modern cell diverged at sim_threads={threads}");
        }
        assert_eq!(serial.len(), threaded.len());
    }
}

/// The same contract under the convergence-barrier divergence model:
/// the per-warp barrier registers (arm/park/join) replace the SIMT
/// stack as the reconvergence bookkeeping, and that bookkeeping is
/// per-warp state inside one SM's pipeline, so the shard-commit
/// protocol must keep `sim_threads` a pure execution knob on both
/// cores there too.
#[test]
fn barrier_suite_fingerprints_invariant_under_thread_count() {
    for core in [CoreModelKind::Pascal, CoreModelKind::Modern] {
        let table = |threads: u32| {
            let with = |b: ConfigBuilder| {
                b.sim_threads(threads)
                    .core_model(core)
                    .divergence(DivergenceModel::Barrier)
                    .build()
            };
            let configs: Vec<Config> = vec![
                with(ConfigBuilder::baseline()),
                with(ConfigBuilder::bow(3)),
                with(ConfigBuilder::bow_wr(3)),
                with(ConfigBuilder::rfc()),
            ];
            let sweep = Suite::new(Scale::Test)
                .configs(configs)
                .progress(false)
                .run();
            sweep.assert_checked();
            sweep
                .rows
                .iter()
                .flat_map(|row| {
                    row.records.iter().map(|r| {
                        format!(
                            "{}/{} {:016x}",
                            r.benchmark,
                            r.label,
                            r.outcome.result.stats.fingerprint()
                        )
                    })
                })
                .collect::<Vec<_>>()
        };
        let serial = table(1);
        assert_eq!(serial.len(), 15 * 4, "suite shape changed");
        assert!(
            serial.iter().all(|line| line.contains("+barrier")),
            "every cell ran under the barrier model"
        );
        let threaded = table(8);
        for (s, t) in serial.iter().zip(&threaded) {
            assert_eq!(s, t, "{core:?} barrier cell diverged at sim_threads=8");
        }
        assert_eq!(serial.len(), threaded.len());
    }
}

/// The architectural oracle runs under the threaded engine too (the
/// checked launch routes through the same windowed dispatcher), so the
/// pipeline == oracle == host-reference triangle must close with the
/// pipeline sharded across workers.
#[test]
fn oracle_crosscheck_passes_under_threaded_engine() {
    for bench in suite(Scale::Test) {
        let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
        cfg.oracle_check = OracleCheck::Memory;
        cfg.sim_threads = 8;
        let kernel = annotate(&bench.kernel(), 3).0;
        let mut gpu = Gpu::new(cfg);
        // An oracle/pipeline mismatch panics inside the launch.
        let outcome = bench.run_with(&mut gpu, &kernel);
        assert!(outcome.result.completed, "{}: watchdog fired", bench.name());
        if let Err(e) = outcome.checked {
            panic!("{}: host reference disagrees: {e}", bench.name());
        }
    }
}

/// Per-instruction lockstep is the strictest oracle mode; it must also
/// be schedule-independent under the threaded engine. `bfs` is excluded
/// for the same reason as in the serial cross-check: a benign cross-warp
/// race makes its intermediate register values schedule-dependent.
#[test]
fn lockstep_oracle_passes_under_threaded_engine() {
    for bench in suite(Scale::Test) {
        if bench.name() == "bfs" {
            continue;
        }
        let mut cfg = GpuConfig::scaled(CollectorKind::Baseline);
        cfg.oracle_check = OracleCheck::Lockstep;
        cfg.sim_threads = 4;
        let mut gpu = Gpu::new(cfg);
        let outcome = bench.run_with(&mut gpu, &bench.kernel());
        assert!(outcome.result.completed, "{}: watchdog fired", bench.name());
        if let Err(e) = outcome.checked {
            panic!("{}: host reference disagrees: {e}", bench.name());
        }
    }
}

/// Engine configurations the sanitizer must agree across: serial,
/// windowed at two worker counts, and the whole-budget windowed engine.
const SANITIZER_ENGINES: [u32; 4] = [1, 2, 8, 0];

/// Runs `bench` under BOW-WR IW3 with the sanitizer attached at the
/// given intra-run thread count and returns the rendered report.
fn sanitizer_workload_report(bench: &str, core: CoreModelKind, sim_threads: u32) -> String {
    let b = bow::workloads::by_name(bench, Scale::Test).expect("known benchmark");
    let mut cfg = ConfigBuilder::bow_wr(3).core_model(core).build();
    cfg.gpu.sanitize = true;
    cfg.gpu.sim_threads = sim_threads;
    let rec = bow::experiment::run(b.as_ref(), cfg);
    rec.outcome
        .result
        .sanitizer
        .expect("sanitize flag attaches the probe")
        .render()
}

/// Launches one adversarial kernel under the campaign configuration at
/// the given thread count and returns the rendered report.
fn sanitizer_adversarial_report(name: &str, sim_threads: u32) -> String {
    let adv = adversarial::all()
        .into_iter()
        .find(|a| a.name == name)
        .unwrap_or_else(|| panic!("adversarial table has {name}"));
    let kernel = (adv.build)();
    let mut cfg = ConfigBuilder::bow_wr(3).sanitize(true).build().gpu;
    cfg.sim_threads = sim_threads;
    let mut gpu = Gpu::new(cfg);
    let result = gpu.launch(&kernel, FuzzKernel::dims(), &PARAMS);
    result
        .sanitizer
        .expect("sanitize flag attaches the probe")
        .render()
}

/// The sanitizer folds a per-SM event stream into shadow state, so its
/// report must not depend on how the engine schedules that stream. The
/// canonical ordering in `SanitizerReport` is what makes this hold.
#[test]
fn sanitizer_report_is_byte_identical_across_engines() {
    let serial = sanitizer_workload_report("bfs", CoreModelKind::Pascal, 1);
    assert!(!serial.is_empty(), "bfs report is non-trivial");
    for t in SANITIZER_ENGINES {
        assert_eq!(
            sanitizer_workload_report("bfs", CoreModelKind::Pascal, t),
            serial,
            "bfs report diverged at sim_threads {t}"
        );
    }
    for name in ["adv_b015_definite_race", "adv_b016_uninit_shared"] {
        let serial = sanitizer_adversarial_report(name, 1);
        assert!(!serial.is_empty(), "{name} report is non-trivial");
        for t in SANITIZER_ENGINES {
            assert_eq!(
                sanitizer_adversarial_report(name, t),
                serial,
                "{name} report diverged at sim_threads {t}"
            );
        }
    }
}

#[test]
fn sanitizer_off_leaves_no_report() {
    // The flag is the only thing that attaches the probe: a plain run
    // must not pay for (or expose) shadow state.
    let b = bow::workloads::by_name("bfs", Scale::Test).expect("known benchmark");
    let rec = bow::experiment::run(b.as_ref(), ConfigBuilder::bow_wr(3).build());
    assert!(rec.outcome.result.sanitizer.is_none());
}

fn sanitizer_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("sanitizer_bfs.txt")
}

#[test]
fn bfs_is_the_only_workload_the_sanitizer_flags() {
    // The suite-wide sweep the golden pin rests on: every other
    // benchmark is sanitizer-clean. A new finding elsewhere is either a
    // real workload hazard or a sanitizer false positive — both need a
    // human decision, not a silent bless.
    let mut flagged: Vec<String> = Vec::new();
    for b in suite(Scale::Test) {
        let report = sanitizer_workload_report(b.name(), CoreModelKind::Pascal, 1);
        if !report.is_empty() {
            flagged.push(b.name().to_string());
        }
    }
    assert_eq!(flagged, ["bfs"], "sanitizer-flagged workloads changed");
}

#[test]
fn bfs_sanitizer_findings_match_the_golden_pin() {
    let mut got = String::from(
        "# bfs sanitizer findings under bow-wr iw3, per core model (Scale::Test).\n\
         # Regenerate with: BOW_BLESS=1 cargo test -p bow --test determinism\n",
    );
    for core in [CoreModelKind::Pascal, CoreModelKind::Modern] {
        let label = match core {
            CoreModelKind::Pascal => "pascal",
            CoreModelKind::Modern => "modern",
        };
        writeln!(got, "== {label} ==").expect("write to String");
        got.push_str(&sanitizer_workload_report("bfs", core, 1));
    }
    let path = sanitizer_golden_path();
    if std::env::var_os("BOW_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, &got).expect("write goldens");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless with BOW_BLESS=1)", path.display()));
    assert_eq!(
        got,
        want,
        "bfs sanitizer pin diverged from {} — an intentional model change \
         needs BOW_BLESS=1",
        path.display()
    );
}
