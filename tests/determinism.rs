//! Determinism suite for the windowed parallel execution engine.
//!
//! The engine in `bow_sim::parallel` shards a launch's SM pipelines
//! across a worker pool, but its windowed commit protocol is designed so
//! that `sim_threads` is a *pure execution knob*: results are
//! byte-identical at any thread count, on any host. These tests pin that
//! contract at the public-API level, across the whole Table III suite:
//!
//! * every workload × every collector design produces the same
//!   [`SimStats::fingerprint`] under `sim_threads` ∈ {1, 2, 8};
//! * the architectural oracle (memory mode, and per-instruction lockstep
//!   for race-free kernels) still agrees with the pipeline when the
//!   pipeline runs threaded.
//!
//! [`SimStats::fingerprint`]: bow_sim::SimStats::fingerprint

use bow::experiment::{Config, ConfigBuilder};
use bow::prelude::*;
use bow::sim::OracleCheck;
use bow::suite::Suite;

/// The four collector designs the golden suite pins, on a chosen core.
fn configs_on(threads: u32, core: CoreModelKind) -> Vec<Config> {
    vec![
        ConfigBuilder::baseline()
            .sim_threads(threads)
            .core_model(core)
            .build(),
        ConfigBuilder::bow(3)
            .sim_threads(threads)
            .core_model(core)
            .build(),
        ConfigBuilder::bow_wr(3)
            .sim_threads(threads)
            .core_model(core)
            .build(),
        ConfigBuilder::rfc()
            .sim_threads(threads)
            .core_model(core)
            .build(),
    ]
}

/// One fingerprint line per (benchmark × config) cell, in sweep order.
fn fingerprint_table(threads: u32) -> Vec<String> {
    fingerprint_table_on(threads, CoreModelKind::Pascal)
}

fn fingerprint_table_on(threads: u32, core: CoreModelKind) -> Vec<String> {
    let sweep = Suite::new(Scale::Test)
        .configs(configs_on(threads, core))
        .progress(false)
        .run();
    sweep.assert_checked();
    sweep
        .rows
        .iter()
        .flat_map(|row| {
            row.records.iter().map(|r| {
                format!(
                    "{}/{} {:016x}",
                    r.benchmark,
                    r.label,
                    r.outcome.result.stats.fingerprint()
                )
            })
        })
        .collect()
}

/// The headline contract: the full suite's stats fingerprints are
/// byte-identical for `sim_threads` ∈ {1, 2, 8}. 1 exercises the inline
/// host, 2 a genuine shard split, and 8 more workers than the scaled
/// model has SMs (workers own uneven shard sizes, some empty).
#[test]
fn suite_fingerprints_invariant_under_thread_count() {
    let serial = fingerprint_table(1);
    assert_eq!(serial.len(), 15 * 4, "suite shape changed");
    for threads in [2u32, 8] {
        let threaded = fingerprint_table(threads);
        for (s, t) in serial.iter().zip(&threaded) {
            assert_eq!(s, t, "cell diverged at sim_threads={threads}");
        }
        assert_eq!(serial.len(), threaded.len());
    }
}

/// The same contract on the modern core: sub-core state, the control-bit
/// interlock and the uniform register file all live inside one SM's
/// pipeline, so the windowed engine's shard-commit protocol must keep
/// `sim_threads` a pure execution knob there too.
#[test]
fn modern_suite_fingerprints_invariant_under_thread_count() {
    let serial = fingerprint_table_on(1, CoreModelKind::Modern);
    assert_eq!(serial.len(), 15 * 4, "suite shape changed");
    for threads in [2u32, 8] {
        let threaded = fingerprint_table_on(threads, CoreModelKind::Modern);
        for (s, t) in serial.iter().zip(&threaded) {
            assert_eq!(s, t, "modern cell diverged at sim_threads={threads}");
        }
        assert_eq!(serial.len(), threaded.len());
    }
}

/// The architectural oracle runs under the threaded engine too (the
/// checked launch routes through the same windowed dispatcher), so the
/// pipeline == oracle == host-reference triangle must close with the
/// pipeline sharded across workers.
#[test]
fn oracle_crosscheck_passes_under_threaded_engine() {
    for bench in suite(Scale::Test) {
        let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
        cfg.oracle_check = OracleCheck::Memory;
        cfg.sim_threads = 8;
        let kernel = annotate(&bench.kernel(), 3).0;
        let mut gpu = Gpu::new(cfg);
        // An oracle/pipeline mismatch panics inside the launch.
        let outcome = bench.run_with(&mut gpu, &kernel);
        assert!(outcome.result.completed, "{}: watchdog fired", bench.name());
        if let Err(e) = outcome.checked {
            panic!("{}: host reference disagrees: {e}", bench.name());
        }
    }
}

/// Per-instruction lockstep is the strictest oracle mode; it must also
/// be schedule-independent under the threaded engine. `bfs` is excluded
/// for the same reason as in the serial cross-check: a benign cross-warp
/// race makes its intermediate register values schedule-dependent.
#[test]
fn lockstep_oracle_passes_under_threaded_engine() {
    for bench in suite(Scale::Test) {
        if bench.name() == "bfs" {
            continue;
        }
        let mut cfg = GpuConfig::scaled(CollectorKind::Baseline);
        cfg.oracle_check = OracleCheck::Lockstep;
        cfg.sim_threads = 4;
        let mut gpu = Gpu::new(cfg);
        let outcome = bench.run_with(&mut gpu, &bench.kernel());
        assert!(outcome.result.completed, "{}: watchdog fired", bench.name());
        if let Err(e) = outcome.checked {
            panic!("{}: host reference disagrees: {e}", bench.name());
        }
    }
}
