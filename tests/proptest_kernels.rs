//! Property-based testing: random kernels must produce identical final
//! memory under every collector model, and the compiler pass must never
//! change results.
//!
//! Kernels are drawn from the structured fuzzer generator
//! ([`bow::isa::fuzz::FuzzKernel`]) — the same distribution `bow fuzz`
//! explores, covering global/shared memory, predication, nested diamonds,
//! bounded loops and barriers. Generation is a seeded in-tree xorshift
//! stream ([`bow_util::XorShift`]; the workspace builds offline and
//! carries no proptest), so every run checks the same 100 cases per
//! property and a failure reproduces from the printed case number alone.

use bow::isa::fuzz::{FuzzKernel, INPUT_BASE, PARAMS};
use bow::prelude::*;
use bow_util::XorShift;

const CASES: u64 = 100;

/// Statement budget per generated program — small enough that 100 cases
/// per property stay inside the suite's wall-time budget, large enough
/// for loops, diamonds and exchanges to appear together.
const SIZE: usize = 8;

/// Runs `check` on [`CASES`] seeded random kernels, reporting the failing
/// case's seed and statement tree on panic.
fn for_each_case(seed: u64, check: impl Fn(&FuzzKernel, &Kernel, &[u32]) -> Result<(), String>) {
    for case in 0..CASES {
        let mut rng = XorShift::new(seed ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let program = FuzzKernel::generate_sized(&mut rng, SIZE);
        let input = FuzzKernel::gen_input(&mut rng);
        let kernel = program.build("proptest");
        if let Err(msg) = check(&program, &kernel, &input) {
            panic!("case {case} (seed {seed:#x}): {msg}\nprogram: {program:?}");
        }
    }
}

fn final_memory(kernel: &Kernel, input: &[u32], kind: CollectorKind) -> u64 {
    let mut gpu = Gpu::new(GpuConfig::scaled(kind));
    gpu.global_mut()
        .write_slice_u32(u64::from(INPUT_BASE), input);
    let res = gpu.launch(kernel, FuzzKernel::dims(), &PARAMS);
    assert!(res.completed, "watchdog fired");
    gpu.global().fingerprint()
}

#[test]
fn all_collectors_agree_on_final_memory() {
    for_each_case(b0w_seed(1), |_, kernel, input| {
        let baseline = final_memory(kernel, input, CollectorKind::Baseline);
        for kind in [
            CollectorKind::bow(2),
            CollectorKind::bow(3),
            CollectorKind::bow_wr(3),
            CollectorKind::BowWr {
                window: 3,
                half_size: true,
            },
            CollectorKind::rfc6(),
        ] {
            if final_memory(kernel, input, kind) != baseline {
                return Err(format!("diverged under {kind:?}"));
            }
        }
        Ok(())
    });
}

#[test]
fn compiler_annotation_never_changes_results() {
    for_each_case(b0w_seed(2), |_, kernel, input| {
        let plain = final_memory(kernel, input, CollectorKind::bow_wr(3));
        let (annotated, _) = annotate(kernel, 3);
        let hinted = final_memory(&annotated, input, CollectorKind::bow_wr(3));
        if plain != hinted {
            return Err("annotation changed final memory".to_string());
        }
        Ok(())
    });
}

#[test]
fn bow_never_reads_more_than_baseline() {
    for_each_case(b0w_seed(3), |_, kernel, input| {
        let run = |kind: CollectorKind| {
            let mut gpu = Gpu::new(GpuConfig::scaled(kind));
            gpu.global_mut()
                .write_slice_u32(u64::from(INPUT_BASE), input);
            gpu.launch(kernel, FuzzKernel::dims(), &PARAMS).stats
        };
        let base = run(CollectorKind::Baseline);
        let bow = run(CollectorKind::bow(3));
        if bow.rf.reads > base.rf.reads {
            return Err(format!(
                "bow read more banks than baseline: {} > {}",
                bow.rf.reads, base.rf.reads
            ));
        }
        if bow.rf.reads + bow.bypassed_reads != base.rf.reads {
            return Err(format!(
                "bypass accounting broken: {} served + {} bypassed != baseline {}",
                bow.rf.reads, bow.bypassed_reads, base.rf.reads
            ));
        }
        Ok(())
    });
}

/// The host model agrees with the device for every generated program —
/// the same exec-semantics check `bow fuzz` applies, over a fresh stream.
#[test]
fn host_model_matches_device_memory() {
    for_each_case(b0w_seed(4), |program, kernel, input| {
        let mut gpu = Gpu::new(GpuConfig::scaled(CollectorKind::bow_wr(3)));
        gpu.global_mut()
            .write_slice_u32(u64::from(INPUT_BASE), input);
        let res = gpu.launch(kernel, FuzzKernel::dims(), &PARAMS);
        assert!(res.completed, "watchdog fired");
        for (addr, want) in program.expected(input) {
            let got = gpu.global().read_u32(addr);
            if got != want {
                return Err(format!("mem[{addr:#x}] = {got:#x}, expected {want:#x}"));
            }
        }
        Ok(())
    });
}

/// Distinct fixed seeds per property, so adding a property never shifts
/// the cases another property sees.
fn b0w_seed(property: u64) -> u64 {
    0xb01_d0e5_0000_0000 | property
}
