//! Property-based testing: random kernels (straight-line and structured
//! branches/loops) must produce identical final memory under every
//! collector model, and the compiler pass must never change results.
//!
//! Kernels are generated from a seeded in-tree xorshift stream
//! ([`bow_util::XorShift`]; the workspace builds offline and carries no
//! proptest), so every run checks the same 24 cases per property and a
//! failure reproduces from the printed case number alone.

use bow::prelude::*;
use bow_util::XorShift;

const OUT: u64 = 0x10_0000;
const SCRATCH: u64 = 0x20_0000;
const CASES: u64 = 24;

/// A random, always-terminating kernel: a prologue computing the thread
/// index, `ops` arithmetic instructions over 8 registers, an optional
/// predicated diamond and an optional bounded loop, then a store of every
/// register.
#[derive(Clone, Debug)]
struct RandomKernel {
    ops: Vec<(u8, u8, u8, u8)>, // (opcode selector, dst, src1, src2)
    diamond: bool,
    loop_trips: u8,
}

impl RandomKernel {
    /// Draws a kernel shape from the stream: 3..24 ops, each a tuple of
    /// (opcode 0..12, dst 0..8, src1 0..8, src2 0..8).
    fn gen(rng: &mut XorShift) -> RandomKernel {
        let n = 3 + rng.below(21) as usize;
        let ops = (0..n)
            .map(|_| {
                (
                    rng.below_u8(12),
                    rng.below_u8(8),
                    rng.below_u8(8),
                    rng.below_u8(8),
                )
            })
            .collect();
        RandomKernel {
            ops,
            diamond: rng.next_bool(),
            loop_trips: rng.below_u8(4),
        }
    }

    fn build(&self) -> Kernel {
        let r = |i: u8| Reg::r(8 + i); // r8..r15 are the data registers
        let mut b = KernelBuilder::new("random")
            .s2r(Reg::r(0), Special::TidX)
            .s2r(Reg::r(1), Special::CtaidX)
            .s2r(Reg::r(2), Special::NtidX)
            .imad(
                Reg::r(0),
                Reg::r(1).into(),
                Reg::r(2).into(),
                Reg::r(0).into(),
            );
        // Seed data registers from the thread index.
        for i in 0..8u8 {
            b = b.imad(
                r(i),
                Reg::r(0).into(),
                Operand::Imm(u32::from(i) * 7 + 3),
                Operand::Imm(u32::from(i).wrapping_mul(0x9e37)),
            );
        }
        let emit = |mut b: KernelBuilder, chunk: &[(u8, u8, u8, u8)]| {
            for &(op, d, s1, s2) in chunk {
                let (d, a, c) = (r(d), Operand::Reg(r(s1)), Operand::Reg(r(s2)));
                b = match op % 12 {
                    0 => b.iadd(d, a, c),
                    1 => b.isub(d, a, c),
                    2 => b.imul(d, a, c),
                    3 => b.imad(d, a, c, Operand::Imm(13)),
                    4 => b.and(d, a, c),
                    5 => b.or(d, a, c),
                    6 => b.xor(d, a, c),
                    7 => b.shl(d, a, Operand::Imm(u32::from(s2) % 31)),
                    8 => b.shr(d, a, Operand::Imm(u32::from(s2) % 31)),
                    9 => b.imin(d, a, c),
                    10 => b.imax(d, a, c),
                    _ => b.isad(d, a, c, Operand::Imm(1)),
                };
            }
            b
        };
        let half = self.ops.len() / 2;
        b = emit(b, &self.ops[..half]);
        if self.diamond {
            // if (r8 & 1) r9 ^= r10 else r9 += r11, reconverging.
            b = b
                .and(Reg::r(3), r(0).into(), Operand::Imm(1))
                .isetp(CmpOp::Ne, Pred::p(0), Reg::r(3).into(), Operand::Imm(0))
                .ssy("join")
                .bra_if(Pred::p(0), false, "then")
                .iadd(r(1), r(1).into(), r(3).into())
                .bra("join")
                .label("then")
                .xor(r(1), r(1).into(), r(2).into())
                .label("join")
                .sync();
        }
        if self.loop_trips > 0 {
            b = b
                .mov_imm(Reg::r(4), 0)
                .label("loop")
                .iadd(r(2), r(2).into(), r(3).into())
                .xor(r(3), r(3).into(), Operand::Imm(0x5a5a))
                .iadd(Reg::r(4), Reg::r(4).into(), Operand::Imm(1))
                .isetp(
                    CmpOp::Lt,
                    Pred::p(1),
                    Reg::r(4).into(),
                    Operand::Imm(u32::from(self.loop_trips)),
                )
                .bra_if(Pred::p(1), false, "loop");
        }
        b = emit(b, &self.ops[half..]);
        // Store all eight data registers.
        b = b.shl(Reg::r(5), Reg::r(0).into(), Operand::Imm(5)); // tid * 32 bytes
        for i in 0..8u8 {
            b = b
                .iadd(
                    Reg::r(6),
                    Reg::r(5).into(),
                    Operand::Imm(OUT as u32 + u32::from(i) * 4),
                )
                .stg(Reg::r(6), 0, r(i).into());
        }
        b.exit().build().expect("random kernel builds")
    }
}

/// Runs `check` on [`CASES`] seeded random kernels, reporting the failing
/// case's seed and shape on panic.
fn for_each_case(seed: u64, check: impl Fn(&Kernel) -> Result<(), String>) {
    for case in 0..CASES {
        let mut rng = XorShift::new(seed ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let rk = RandomKernel::gen(&mut rng);
        let kernel = rk.build();
        if let Err(msg) = check(&kernel) {
            panic!("case {case} (seed {seed:#x}): {msg}\nshape: {rk:?}");
        }
    }
}

fn final_memory(kernel: &Kernel, kind: CollectorKind) -> u64 {
    let mut gpu = Gpu::new(GpuConfig::scaled(kind));
    gpu.global_mut().write_slice_u32(SCRATCH, &[0; 4]);
    let res = gpu.launch(kernel, KernelDims::linear(2, 64), &[]);
    assert!(res.completed, "watchdog fired");
    gpu.global().fingerprint()
}

#[test]
fn all_collectors_agree_on_final_memory() {
    for_each_case(b0w_seed(1), |kernel| {
        let baseline = final_memory(kernel, CollectorKind::Baseline);
        for kind in [
            CollectorKind::bow(2),
            CollectorKind::bow(3),
            CollectorKind::bow_wr(3),
            CollectorKind::BowWr {
                window: 3,
                half_size: true,
            },
            CollectorKind::rfc6(),
        ] {
            if final_memory(kernel, kind) != baseline {
                return Err(format!("diverged under {kind:?}"));
            }
        }
        Ok(())
    });
}

#[test]
fn compiler_annotation_never_changes_results() {
    for_each_case(b0w_seed(2), |kernel| {
        let plain = final_memory(kernel, CollectorKind::bow_wr(3));
        let (annotated, _) = annotate(kernel, 3);
        let hinted = final_memory(&annotated, CollectorKind::bow_wr(3));
        if plain != hinted {
            return Err("annotation changed final memory".to_string());
        }
        Ok(())
    });
}

#[test]
fn bow_never_reads_more_than_baseline() {
    for_each_case(b0w_seed(3), |kernel| {
        let run = |kind: CollectorKind| {
            let mut gpu = Gpu::new(GpuConfig::scaled(kind));
            gpu.launch(kernel, KernelDims::linear(2, 64), &[]).stats
        };
        let base = run(CollectorKind::Baseline);
        let bow = run(CollectorKind::bow(3));
        if bow.rf.reads > base.rf.reads {
            return Err(format!(
                "bow read more banks than baseline: {} > {}",
                bow.rf.reads, base.rf.reads
            ));
        }
        if bow.rf.reads + bow.bypassed_reads != base.rf.reads {
            return Err(format!(
                "bypass accounting broken: {} served + {} bypassed != baseline {}",
                bow.rf.reads, bow.bypassed_reads, base.rf.reads
            ));
        }
        Ok(())
    });
}

/// Distinct fixed seeds per property, so adding a property never shifts
/// the cases another property sees.
fn b0w_seed(property: u64) -> u64 {
    0xb01_d0e5_0000_0000 | property
}
