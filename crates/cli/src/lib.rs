//! # bow-cli — command-line front end for the BOW GPU model
//!
//! Subcommands:
//!
//! * `suite` — list the benchmark suite;
//! * `run <bench>` — run one benchmark under a chosen collector and print
//!   IPC, traffic and energy;
//! * `compare <bench>` — run every collector model side by side;
//! * `asm <file>` — assemble a kernel from text and print a summary;
//! * `compile <file>` — assemble, run the §IV-B hint pass (and optionally
//!   the footnote-1 scheduler) and print the annotated disassembly;
//! * `sweep <bench>` — IW1..7 window sweep on one benchmark;
//! * `fuzz` — differential kernel fuzzing against the architectural
//!   oracle across all collector models;
//! * `lint` — static-analysis suite and independent hint-soundness
//!   verifier over a kernel file or the whole workload suite; `--mutate`
//!   runs the mutation sanitizer that audits the verifier itself;
//! * `trace <file>` — run with pipeline tracing and print the timeline;
//! * `encode <file>` / `decode <file>` — binary-format round trip;
//! * `serve` — the persistent simulation service (`bow-server`): v1
//!   HTTP/JSON API with a content-addressed result store;
//! * `submit` — client for a running server: submit runs, poll jobs,
//!   fetch stored results, health-check, shut down.
//!
//! Command logic lives in this library and returns strings, so everything
//! is unit-testable; `main.rs` only does process I/O. Failures are typed
//! [`BowError`]s; `main.rs` exits with [`BowError::exit_code`] so scripts
//! can tell parse (2) / config (3) / io (4) / verify (5) failures apart.

use bow::error::{BowError, ConfigError};
use bow::experiment::{pct, render_table, Config};
use bow::prelude::*;
use bow_util::json::Json;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// List the benchmark suite.
    Suite,
    /// Run one benchmark.
    Run {
        /// Benchmark name.
        bench: String,
        /// Collector spec (e.g. `bow-wr`).
        collector: String,
        /// Instruction-window size.
        window: u32,
        /// Problem scale.
        scale: Scale,
        /// Apply the bypass-aware scheduler first.
        reorder: bool,
        /// Intra-run engine threads per launch (None = config default).
        sim_threads: Option<u32>,
        /// SM core model to simulate.
        core_model: CoreModelKind,
        /// Reconvergence machinery: SSY/SYNC stack or convergence barriers.
        divergence: DivergenceModel,
        /// Attach the race sanitizer and print its report.
        sanitize: bool,
    },
    /// Run all collectors on one benchmark.
    Compare {
        /// Benchmark name.
        bench: String,
        /// Problem scale.
        scale: Scale,
        /// Sweep-engine worker count (0 = all cores).
        jobs: usize,
        /// Intra-run engine threads per launch (None = sweep-level only).
        sim_threads: Option<u32>,
        /// SM core model to simulate.
        core_model: CoreModelKind,
        /// Reconvergence machinery: SSY/SYNC stack or convergence barriers.
        divergence: DivergenceModel,
    },
    /// Assemble a kernel file and summarize it.
    Asm {
        /// Path to the assembly source.
        path: String,
    },
    /// Assemble + hint pass (+ optional scheduler), print annotated text.
    Compile {
        /// Path to the assembly source.
        path: String,
        /// Window for the hint pass.
        window: u32,
        /// Run the scheduler first.
        reorder: bool,
    },
    /// Sweep BOW-WR window sizes over one benchmark.
    Sweep {
        /// Benchmark name.
        bench: String,
        /// Problem scale.
        scale: Scale,
        /// Sweep-engine worker count (0 = all cores).
        jobs: usize,
        /// Intra-run engine threads per launch (None = sweep-level only).
        sim_threads: Option<u32>,
        /// SM core model to simulate.
        core_model: CoreModelKind,
        /// Reconvergence machinery: SSY/SYNC stack or convergence barriers.
        divergence: DivergenceModel,
    },
    /// Differential-fuzz generated kernels against the oracle.
    Fuzz {
        /// Number of generated cases.
        cases: u64,
        /// Master seed for case generation.
        seed: u64,
        /// Worker threads (0 = all cores).
        jobs: usize,
        /// Statement budget per generated program.
        size: usize,
        /// Directory for minimized `.asm` repro files.
        out_dir: String,
        /// Intra-run engine threads per launch (None = serial default).
        sim_threads: Option<u32>,
        /// SM core model every case runs on.
        core_model: CoreModelKind,
        /// Reconvergence machinery every case runs under.
        divergence: DivergenceModel,
        /// Cross-validate the race sanitizer against the static lints on
        /// every case (check 4).
        sanitize: bool,
    },
    /// Static-analysis lint suite + hint verifier (or, with `mutate`,
    /// the mutation sanitizer that audits the verifier).
    Lint {
        /// Assembly file to lint; `None` with `all_workloads`/`mutate`.
        path: Option<String>,
        /// Lint every benchmark kernel (annotated at `window`).
        all_workloads: bool,
        /// Fail on warnings as well as errors.
        deny_warnings: bool,
        /// Write the machine-readable report to this file.
        json: Option<String>,
        /// Operand-window size the hint verifier models.
        window: u32,
        /// Run the mutation sanitizer instead of linting.
        mutate: bool,
        /// Use the small fixed CI sanitizer configuration.
        smoke: bool,
        /// Worker threads for the sanitizer (0 = all cores).
        jobs: usize,
        /// Core model the lint targets: `modern` runs the control-bit
        /// emitter first so the sidecar lints judge real output.
        core_model: CoreModelKind,
        /// Divergence model the lint targets: `barrier` lowers SSY/SYNC
        /// to convergence barriers first, putting B017/B018 in play.
        divergence: DivergenceModel,
        /// Print the long-form description of one `B0xx` code and stop;
        /// an empty code lists every known code.
        explain: Option<String>,
    },
    /// Run a kernel with pipeline tracing and print the timeline.
    Trace {
        /// Path to the assembly source.
        path: String,
        /// Collector spec.
        collector: String,
        /// Instruction-window size.
        window: u32,
        /// Maximum events to print.
        limit: usize,
    },
    /// Encode an assembly file to the binary format (hex words).
    Encode {
        /// Path to the assembly source.
        path: String,
    },
    /// Decode a hex-word binary back to assembly.
    Decode {
        /// Path to the hex file.
        path: String,
    },
    /// Run the persistent simulation service.
    Serve {
        /// Bind address (port 0 = ephemeral).
        addr: String,
        /// Job-worker threads (0 = all cores).
        workers: usize,
        /// Result-store directory.
        store: String,
        /// Write the bound address here once listening (CI uses this
        /// with port 0).
        port_file: Option<String>,
    },
    /// Talk to a running server.
    Submit {
        /// Server address.
        addr: String,
        /// What to do.
        action: SubmitAction,
    },
    /// Manage the stratified kernel corpus.
    Corpus {
        /// What to do.
        action: CorpusAction,
    },
    /// Print usage.
    Help,
}

/// The `corpus` subcommand's verbs.
#[derive(Clone, Debug, PartialEq)]
pub enum CorpusAction {
    /// Generate a corpus and write `<dir>/manifest.json`.
    Gen {
        /// Generated kernels across all strata.
        count: usize,
        /// Master seed.
        seed: u64,
        /// Output directory for the manifest.
        dir: String,
    },
    /// Summarize a previously generated manifest.
    Stats {
        /// Directory holding `manifest.json`.
        dir: String,
    },
    /// Sweep the retained corpus through the four collector models.
    Sweep {
        /// Directory holding `manifest.json`.
        dir: String,
        /// Max kernels to sweep (0 = every retained kernel).
        limit: usize,
        /// Sweep-pool worker count (0 = all cores).
        jobs: usize,
        /// Intra-run engine threads per launch (None = sweep-level only).
        sim_threads: Option<u32>,
        /// SM core model to sweep on.
        core_model: CoreModelKind,
        /// Reconvergence machinery to sweep under.
        divergence: DivergenceModel,
        /// Run through a `bow-server` instead of the local pool.
        addr: Option<String>,
        /// Also write the distribution JSON to this file.
        out: Option<String>,
    },
    /// Cross-validate the dynamic race sanitizer against the static
    /// lint suite over the corpus plus the adversarial stratum.
    Sanitize {
        /// Generated kernels across all strata.
        count: usize,
        /// Master seed.
        seed: u64,
        /// Worker threads (0 = all cores).
        jobs: usize,
        /// Use the small fixed CI configuration.
        smoke: bool,
        /// Write the machine-readable campaign report to this file.
        out: Option<String>,
    },
}

/// The `submit` subcommand's verbs.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitAction {
    /// `POST /v1/runs`: a named workload or an inline `.asm` file.
    Run {
        /// Benchmark name (exclusive with `asm`).
        bench: Option<String>,
        /// Assembly file to submit inline (exclusive with `bench`).
        asm: Option<String>,
        /// Collector spec.
        collector: String,
        /// Instruction-window size.
        window: u32,
        /// Problem scale.
        scale: Scale,
        /// Block on completion (false = `"wait":false`, get a job id).
        wait: bool,
    },
    /// `GET /v1/jobs/{id}`.
    Job(u64),
    /// `GET /v1/results/{fingerprint}`.
    Fetch(String),
    /// `GET /v1/healthz`.
    Health,
    /// `POST /v1/shutdown`.
    Shutdown,
}

fn err(msg: impl Into<String>) -> BowError {
    BowError::parse(msg)
}

/// The usage text.
pub const USAGE: &str = "\
bow-cli — the BOW GPU model

USAGE:
  bow-cli suite
  bow-cli run <bench> [--collector C] [--window N] [--scale test|paper] [--reorder]
              [--sim-threads T] [--core-model pascal|modern]
              [--divergence stack|barrier] [--sanitize]
  bow-cli compare <bench> [--scale test|paper] [--jobs N] [--sim-threads T]
                  [--core-model pascal|modern] [--divergence stack|barrier]
  bow-cli asm <file.s>
  bow-cli compile <file.s> [--window N] [--reorder]
  bow-cli sweep <bench> [--scale test|paper] [--jobs N] [--sim-threads T]
                [--core-model pascal|modern] [--divergence stack|barrier]
  bow-cli fuzz [--cases N] [--seed S] [--jobs N] [--size N] [--out DIR] [--smoke]
               [--sim-threads T] [--core-model pascal|modern]
               [--divergence stack|barrier] [--sanitize]
  bow-cli lint <file.s> [--window N] [--deny-warnings] [--json FILE]
              [--core-model pascal|modern] [--divergence stack|barrier]
  bow-cli lint --all-workloads [--window N] [--deny-warnings] [--json FILE]
              [--core-model pascal|modern] [--divergence stack|barrier]
  bow-cli lint --mutate [--smoke] [--jobs N] [--json FILE]
                [--divergence stack|barrier]
  bow-cli lint --explain [B0xx]
  bow-cli trace <file.s> [--collector C] [--window N] [--limit N]
  bow-cli encode <file.s>
  bow-cli decode <file.hex>
  bow-cli serve [--addr HOST:PORT] [--workers N] [--store DIR] [--port-file FILE]
  bow-cli submit <bench> [--asm FILE] [--collector C] [--window N]
                 [--scale test|paper] [--addr HOST:PORT] [--no-wait]
  bow-cli submit --job ID | --fetch FINGERPRINT | --health | --shutdown
                 [--addr HOST:PORT]
  bow-cli corpus gen [--count N] [--seed S] [--dir DIR]
  bow-cli corpus stats [--dir DIR]
  bow-cli corpus sweep [--dir DIR] [--limit N] [--jobs N] [--sim-threads T]
                 [--core-model pascal|modern] [--divergence stack|barrier]
                 [--addr HOST:PORT] [--out FILE]
  bow-cli corpus sanitize [--count N] [--seed S] [--jobs N] [--smoke] [--out FILE]

COLLECTORS:
  baseline | bow | bow-wr | bow-wr-half | bow-flex | rfc

`compare` and `sweep` run their (benchmark x config) matrix on the
parallel sweep engine; --jobs N picks the worker count (default: all
cores, 1 = serial). Results are identical at any job count.
--sim-threads T additionally shards each launch's SM pipelines across T
threads (the intra-run windowed engine; 0 = whole budget per launch);
the --jobs budget is then split between the two layers. Results stay
byte-identical for every T.

`fuzz` generates random kernels and runs each under every collector
model, checking every instruction against a timing-free architectural
oracle and final memory against an independent host model. Failures
shrink to a minimal kernel written as a runnable .asm repro. `--smoke`
is the fixed 64-case CI configuration (other flags except --jobs and
--out are ignored). Any failure makes the command exit non-zero.

`run --sanitize` and `fuzz --sanitize` attach the dynamic race
sanitizer (docs/ANALYSIS.md, `Sanitizer`): shadow state over shared and
global memory plus per-lane register shadows, reporting data races,
never-initialized reads, divergent barriers, broken syncs and `.wb.boc`
hint violations. Under `run` any finding fails the command (exit 5);
under `fuzz` every dynamic finding must carry a static B0xx flag
(dynamic ⊆ static) or the case fails. `corpus sanitize` runs the whole
cross-validation campaign — generated corpus plus the adversarial
stratum, both core models — and writes the CI artifact (default
results/sanitizer_campaign.json; `--smoke` is the fixed 64-kernel CI
configuration).

`lint` runs the static-analysis suite (stable B0xx codes; see
docs/ANALYSIS.md) plus the independent hint-soundness verifier. A file
that carries no write-back hints is annotated first, so the lint judges
what the compiler would actually emit. Errors always fail the command;
--deny-warnings also fails on warnings (advisories never fail).
`lint --mutate` instead audits the verifier itself: it flips sound hints
to BocOnly across a generated corpus and requires every mutant that
demonstrably loses a value to be statically flagged (`--smoke` is the
small fixed CI configuration). --json writes the machine-readable
report for either mode. `lint --explain B0xx` prints the long-form
description of one diagnostic code and exits (unknown codes exit 2);
`lint --explain` with no code lists every known code with its severity
and one-line summary.

--core-model picks the SM microarchitecture (docs/ARCHITECTURE.md,
`Core models`): `pascal` is the paper's scoreboarded Pascal SM and the
default; `modern` is the post-Volta core — four sub-cores, a uniform
register file and compiler-emitted control bits in place of the
scoreboard. Under `fuzz`, `modern` drops the shadow-RF column (the two
cannot combine) and checks the control-bit interlock against the same
lockstep oracle. Under `lint`, `modern` runs the control-bit emitter
before judging, so the sidecar lints (B013/B014) check what the modern
pipeline would actually consume.

--divergence picks the reconvergence machinery (docs/ARCHITECTURE.md,
`Divergence models`): `stack` is the classic SSY/SYNC reconvergence
stack and the default; `barrier` is the post-Volta model — the compiler
lowers SSY/SYNC to BSSY/BSYNC convergence barriers at immediate
post-dominators and the SM tracks divergence with per-warp barrier
registers and thread-group splits, no stack. Orthogonal to
--core-model: all four combinations run. Under `lint`, `barrier`
lowers each kernel first so the barrier-form lints (B017/B018) judge
what the pipeline would actually execute; under `fuzz` and
`lint --mutate` every case runs in barrier form against the same
lockstep oracle and replay campaign.

`corpus` manages the stratified thousand-kernel population
(docs/TESTING.md, `Corpus tier`). `gen` draws `--count` kernels across
the strata from `--seed`, keeps only lint-clean candidates and writes a
deterministic `manifest.json` (seeds + characterization + content
fingerprints — never kernel binaries; the corpus re-materializes from
seeds alone). `stats` tabulates a manifest. `sweep` runs the retained
kernels, round-robin across strata, through baseline/bow/bow-wr/rfc and
prints per-stratum IPC-gain and bypass-rate distributions; with --addr
the runs go through a live bow-server instead (inline submissions under
the server's synthetic-parameter convention: IPC distributions only,
verified by the memory oracle rather than the host reference).

`serve` runs the persistent v1 HTTP/JSON simulation service
(docs/API.md). Every request is keyed by a content-addressed
fingerprint; results persist under --store (default results/store) and
identical resubmissions are answered from cache without simulating.
`submit` is the matching client (default --addr 127.0.0.1:7070): it
prints the server's JSON response verbatim.

EXIT CODES:
  0 success | 1 panic | 2 parse error | 3 invalid config
  4 I/O error | 5 verification failure
";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`BowError::Parse`] describing the first unrecognized token.
pub fn parse(args: &[String]) -> Result<Command, BowError> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&str> = it.collect();

    let flag = |name: &str| rest.contains(&name);
    let opt = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|&a| a == name)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let positional = || -> Option<&str> { rest.iter().find(|a| !a.starts_with("--")).copied() };
    let scale = match opt("--scale") {
        Some("paper") => Scale::Paper,
        Some("test") | None => Scale::Test,
        Some(other) => return Err(err(format!("unknown scale `{other}`"))),
    };
    let window: u32 = match opt("--window") {
        Some(w) => w.parse().map_err(|_| err(format!("bad window `{w}`")))?,
        None => 3,
    };
    let jobs: usize = match opt("--jobs") {
        Some(j) => j.parse().map_err(|_| err(format!("bad jobs `{j}`")))?,
        None => 0,
    };
    let sim_threads: Option<u32> = match opt("--sim-threads") {
        Some(t) => Some(
            t.parse()
                .map_err(|_| err(format!("bad sim-threads `{t}`")))?,
        ),
        None => None,
    };
    let core_model = match opt("--core-model") {
        Some("pascal") | None => CoreModelKind::Pascal,
        Some("modern") => CoreModelKind::Modern,
        Some(other) => return Err(err(format!("unknown core model `{other}`"))),
    };
    let divergence = match opt("--divergence") {
        Some("stack") | None => DivergenceModel::Stack,
        Some("barrier") => DivergenceModel::Barrier,
        Some(other) => return Err(err(format!("unknown divergence model `{other}`"))),
    };

    match cmd {
        "suite" => Ok(Command::Suite),
        "run" => Ok(Command::Run {
            bench: positional()
                .ok_or_else(|| err("run: missing benchmark name"))?
                .into(),
            collector: opt("--collector").unwrap_or("bow-wr").into(),
            window,
            scale,
            reorder: flag("--reorder"),
            sim_threads,
            core_model,
            divergence,
            sanitize: flag("--sanitize"),
        }),
        "compare" => Ok(Command::Compare {
            bench: positional()
                .ok_or_else(|| err("compare: missing benchmark name"))?
                .into(),
            scale,
            jobs,
            sim_threads,
            core_model,
            divergence,
        }),
        "asm" => Ok(Command::Asm {
            path: positional().ok_or_else(|| err("asm: missing file"))?.into(),
        }),
        "compile" => Ok(Command::Compile {
            path: positional()
                .ok_or_else(|| err("compile: missing file"))?
                .into(),
            window,
            reorder: flag("--reorder"),
        }),
        "sweep" => Ok(Command::Sweep {
            bench: positional()
                .ok_or_else(|| err("sweep: missing benchmark name"))?
                .into(),
            scale,
            jobs,
            sim_threads,
            core_model,
            divergence,
        }),
        "fuzz" => {
            let defaults = if flag("--smoke") {
                bow::fuzz::FuzzOptions::smoke()
            } else {
                bow::fuzz::FuzzOptions::default()
            };
            // Seeds round-trip through repro headers and docs in hex, so
            // accept both `0x…` and decimal.
            let parse_u64 = |name: &str, d: u64| -> Result<u64, BowError> {
                match opt(name) {
                    Some(v) => {
                        let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                            Some(hex) => u64::from_str_radix(hex, 16),
                            None => v.parse(),
                        };
                        parsed.map_err(|_| err(format!("bad {} `{v}`", &name[2..])))
                    }
                    None => Ok(d),
                }
            };
            let smoke = flag("--smoke");
            Ok(Command::Fuzz {
                cases: if smoke {
                    defaults.cases
                } else {
                    parse_u64("--cases", defaults.cases)?
                },
                seed: if smoke {
                    defaults.seed
                } else {
                    parse_u64("--seed", defaults.seed)?
                },
                jobs,
                size: if smoke {
                    defaults.size
                } else {
                    parse_u64("--size", defaults.size as u64)? as usize
                },
                out_dir: opt("--out")
                    .map(String::from)
                    .unwrap_or_else(|| defaults.out_dir.display().to_string()),
                sim_threads,
                core_model,
                divergence,
                sanitize: flag("--sanitize"),
            })
        }
        "lint" => {
            // Flags take values (`--window 4`), so only a leading token
            // can be the file path. A bare `--explain` (no code, or
            // directly followed by another flag) lists every code.
            let explain = if flag("--explain") {
                Some(
                    opt("--explain")
                        .filter(|v| !v.starts_with("--"))
                        .unwrap_or("")
                        .to_string(),
                )
            } else {
                None
            };
            let cmd = Command::Lint {
                path: rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .map(|a| (*a).into()),
                all_workloads: flag("--all-workloads"),
                deny_warnings: flag("--deny-warnings"),
                json: opt("--json").map(String::from),
                window,
                mutate: flag("--mutate"),
                smoke: flag("--smoke"),
                jobs,
                core_model,
                divergence,
                explain,
            };
            if let Command::Lint {
                path: None,
                all_workloads: false,
                mutate: false,
                explain: None,
                ..
            } = &cmd
            {
                return Err(err(
                    "lint: pass a file, --all-workloads, --mutate or --explain",
                ));
            }
            Ok(cmd)
        }
        "trace" => Ok(Command::Trace {
            path: positional()
                .ok_or_else(|| err("trace: missing file"))?
                .into(),
            collector: opt("--collector").unwrap_or("bow-wr").into(),
            window,
            limit: match opt("--limit") {
                Some(l) => l.parse().map_err(|_| err(format!("bad limit `{l}`")))?,
                None => 120,
            },
        }),
        "encode" => Ok(Command::Encode {
            path: positional()
                .ok_or_else(|| err("encode: missing file"))?
                .into(),
        }),
        "decode" => Ok(Command::Decode {
            path: positional()
                .ok_or_else(|| err("decode: missing file"))?
                .into(),
        }),
        "serve" => Ok(Command::Serve {
            addr: opt("--addr").unwrap_or("127.0.0.1:7070").into(),
            workers: match opt("--workers") {
                Some(w) => w.parse().map_err(|_| err(format!("bad workers `{w}`")))?,
                None => 0,
            },
            store: opt("--store").unwrap_or("results/store").into(),
            port_file: opt("--port-file").map(String::from),
        }),
        "submit" => {
            let addr = opt("--addr").unwrap_or("127.0.0.1:7070").to_string();
            let action = if flag("--shutdown") {
                SubmitAction::Shutdown
            } else if flag("--health") {
                SubmitAction::Health
            } else if let Some(id) = opt("--job") {
                SubmitAction::Job(id.parse().map_err(|_| err(format!("bad job id `{id}`")))?)
            } else if let Some(fp) = opt("--fetch") {
                SubmitAction::Fetch(fp.to_string())
            } else {
                // Flags take values (`--collector bow`), so only a
                // leading token can be the benchmark name.
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .map(|a| (*a).to_string());
                let asm = opt("--asm").map(String::from);
                match (&bench, &asm) {
                    (None, None) => return Err(err(
                        "submit: pass a benchmark, --asm, --job, --fetch, --health or --shutdown",
                    )),
                    (Some(_), Some(_)) => {
                        return Err(err("submit: pass a benchmark OR --asm, not both"))
                    }
                    _ => {}
                }
                SubmitAction::Run {
                    bench,
                    asm,
                    collector: opt("--collector").unwrap_or("bow-wr").into(),
                    window,
                    scale,
                    wait: !flag("--no-wait"),
                }
            };
            Ok(Command::Submit { addr, action })
        }
        "corpus" => {
            // Flags take values (`--count 64`), so only a leading token
            // can be the verb.
            let verb = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .copied()
                .ok_or_else(|| err("corpus: pass a verb (gen, stats, sweep or sanitize)"))?;
            // Seeds print in hex everywhere, so accept `0x…` and decimal.
            let seed = match opt("--seed") {
                Some(v) => {
                    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => v.parse(),
                    };
                    parsed.map_err(|_| err(format!("bad seed `{v}`")))?
                }
                None => bow::corpus::DEFAULT_SEED,
            };
            let dir = opt("--dir").unwrap_or("corpus").to_string();
            let action = match verb {
                "gen" => CorpusAction::Gen {
                    count: match opt("--count") {
                        Some(c) => c.parse().map_err(|_| err(format!("bad count `{c}`")))?,
                        None => bow::corpus::DEFAULT_COUNT,
                    },
                    seed,
                    dir,
                },
                "stats" => CorpusAction::Stats { dir },
                "sanitize" => {
                    let smoke = flag("--smoke");
                    let defaults = if smoke {
                        bow::sanitize_campaign::CampaignOptions::smoke()
                    } else {
                        bow::sanitize_campaign::CampaignOptions::full()
                    };
                    CorpusAction::Sanitize {
                        count: if smoke {
                            defaults.count
                        } else {
                            match opt("--count") {
                                Some(c) => {
                                    c.parse().map_err(|_| err(format!("bad count `{c}`")))?
                                }
                                None => defaults.count,
                            }
                        },
                        seed: if smoke { defaults.seed } else { seed },
                        jobs,
                        smoke,
                        out: opt("--out").map(String::from),
                    }
                }
                "sweep" => CorpusAction::Sweep {
                    dir,
                    limit: match opt("--limit") {
                        Some(l) => l.parse().map_err(|_| err(format!("bad limit `{l}`")))?,
                        None => 0,
                    },
                    jobs,
                    sim_threads,
                    core_model,
                    divergence,
                    addr: opt("--addr").map(String::from),
                    out: opt("--out").map(String::from),
                },
                other => {
                    return Err(err(format!(
                        "corpus: unknown verb `{other}` (gen, stats, sweep or sanitize)"
                    )))
                }
            };
            Ok(Command::Corpus { action })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(err(format!(
            "unknown command `{other}` (try `bow-cli help`)"
        ))),
    }
}

/// Builds the experiment [`Config`] named by a collector spec.
///
/// # Errors
///
/// Returns [`BowError::Config`] for unknown collector names or
/// out-of-range knobs.
pub fn config_for(
    collector: &str,
    window: u32,
    reorder: bool,
    core_model: CoreModelKind,
    divergence: DivergenceModel,
) -> Result<Config, BowError> {
    let builder = match collector {
        "baseline" => ConfigBuilder::baseline(),
        "bow" => ConfigBuilder::bow(window),
        "bow-wr" => ConfigBuilder::bow_wr(window),
        "bow-wr-half" => ConfigBuilder::bow_wr(window).half_size(true),
        "bow-flex" => ConfigBuilder::bow_flex(4 * window),
        "rfc" => ConfigBuilder::rfc(),
        other => {
            return Err(ConfigError::Unknown {
                what: "collector",
                value: other.to_string(),
            }
            .into())
        }
    };
    Ok(builder
        .reorder(reorder)
        .core_model(core_model)
        .divergence(divergence)
        .try_build()?)
}

fn unknown_benchmark(name: &str) -> BowError {
    ConfigError::Unknown {
        what: "benchmark",
        value: name.to_string(),
    }
    .into()
}

fn core_model_name(core: CoreModelKind) -> &'static str {
    match core {
        CoreModelKind::Pascal => "pascal",
        CoreModelKind::Modern => "modern",
    }
}

fn corpus_manifest_path(dir: &str) -> String {
    format!("{dir}/manifest.json")
}

fn load_corpus_manifest(dir: &str) -> Result<bow::corpus::Manifest, BowError> {
    let path = corpus_manifest_path(dir);
    let text = std::fs::read_to_string(&path).map_err(|e| BowError::io(&path, e))?;
    let json = bow_util::json::parse(&text).map_err(|e| err(format!("{path}: {e}")))?;
    bow::corpus::Manifest::from_json(&json).map_err(|e| err(format!("{path}: {e}")))
}

/// Per-stratum retention table shared by `corpus gen` and `corpus stats`.
fn corpus_stratum_table(manifest: &bow::corpus::Manifest) -> String {
    let rejected_in = |stratum: &str| -> u64 {
        manifest
            .rejected
            .iter()
            .find(|(s, _)| s == stratum)
            .map_or(0, |(_, n)| *n)
    };
    let mean = |xs: &[u64]| -> String {
        format!("{:.1}", xs.iter().sum::<u64>() as f64 / xs.len() as f64)
    };
    let rows: Vec<Vec<String>> = manifest
        .strata()
        .iter()
        .map(|stratum| {
            let entries: Vec<_> = manifest
                .entries
                .iter()
                .filter(|e| &e.stratum == stratum)
                .collect();
            let retained = entries.iter().filter(|e| e.retained).count();
            let col = |f: &dyn Fn(&bow::corpus::ManifestEntry) -> u64| {
                mean(&entries.iter().map(|e| f(e)).collect::<Vec<u64>>())
            };
            vec![
                (*stratum).to_string(),
                retained.to_string(),
                (entries.len() - retained + rejected_in(stratum) as usize).to_string(),
                col(&|e| u64::from(e.traits.insts)),
                col(&|e| u64::from(e.traits.regs_written)),
                col(&|e| e.traits.reuse_x100 / 100),
                col(&|e| u64::from(e.traits.branch_depth)),
                col(&|e| u64::from(e.traits.mem_per_ki)),
            ]
        })
        .collect();
    render_table(
        &[
            "stratum", "kept", "rejected", "insts", "regs", "reuse", "depth", "mem/ki",
        ],
        &rows,
    )
}

/// Drives the corpus sweep through a running `bow-server`: every
/// selected kernel is submitted inline (assembly text) under each of the
/// four collector columns, and the per-stratum IPC-gain distributions
/// are reduced client-side. The server runs inline kernels under its
/// synthetic-parameter convention with the memory oracle, so this path
/// reports IPC only — bypass-rate distributions need the local pool.
fn corpus_server_sweep(
    manifest: &bow::corpus::Manifest,
    limit: usize,
    addr: &str,
    core: CoreModelKind,
    divergence: DivergenceModel,
) -> Result<Json, BowError> {
    use bow::corpus;
    const COLLECTORS: [&str; 4] = ["baseline", "bow", "bow-wr", "rfc"];
    let picked = corpus::select(manifest, limit);
    if picked.is_empty() {
        return Err(err("corpus sweep: manifest has no retained kernels"));
    }
    let mut ipc: Vec<Vec<f64>> = vec![Vec::new(); COLLECTORS.len()];
    for entry in &picked {
        let kernel = corpus::kernel_for(entry).ok_or_else(|| {
            err(format!(
                "{}: cannot re-materialize from manifest",
                entry.name
            ))
        })?;
        let asm = kernel.disassemble();
        for (ci, collector) in COLLECTORS.iter().enumerate() {
            let body = Json::obj([
                (
                    "kernel",
                    Json::obj([
                        ("asm", Json::from(asm.as_str())),
                        ("blocks", Json::from(bow_isa::fuzz::GRID.0)),
                        ("threads", Json::from(bow_isa::fuzz::BLOCK.0)),
                    ]),
                ),
                (
                    "config",
                    Json::obj([
                        ("collector", Json::from(*collector)),
                        ("window", Json::from(3_u32)),
                        ("model", Json::from("scaled")),
                        ("core_model", Json::from(core_model_name(core))),
                        ("divergence", Json::from(divergence.name())),
                    ]),
                ),
                ("wait", Json::from(true)),
            ]);
            let response = bow_server::client::post(addr, "/v1/runs", &body.to_string_compact())?;
            if response.status >= 400 {
                return Err(BowError::io(addr, response.body.trim_end()));
            }
            let parsed = response
                .json()
                .map_err(|e| err(format!("server response: {e}")))?;
            let value = parsed
                .get("result")
                .and_then(|r| r.get("ipc"))
                .and_then(Json::as_f64)
                .ok_or_else(|| err("server response has no `result.ipc`"))?;
            ipc[ci].push(value);
        }
    }

    // Reduce to the same shape as `corpus::distribution_json`, minus the
    // bypass-rate column the server path cannot observe.
    let strata: Vec<&str> = picked.iter().map(|e| e.stratum.as_str()).collect();
    let mut names: Vec<&str> = Vec::new();
    for s in &strata {
        if !names.contains(s) {
            names.push(s);
        }
    }
    let mut scopes: Vec<(&str, Option<&str>)> = vec![("all", None)];
    scopes.extend(names.iter().map(|s| (*s, Some(*s))));
    let mut rows = Vec::new();
    for (scope, filter) in scopes {
        let mut collectors = Vec::new();
        for (ci, collector) in COLLECTORS.iter().enumerate().skip(1) {
            let gains: Vec<f64> = strata
                .iter()
                .enumerate()
                .filter(|(ki, s)| filter.is_none_or(|f| f == **s) && ipc[0][*ki] > 0.0)
                .map(|(ki, _)| ipc[ci][ki] / ipc[0][ki])
                .collect();
            collectors.push(Json::obj([
                ("label", Json::from(*collector)),
                ("ipc_gain", corpus::Dist::of(gains).to_json()),
            ]));
        }
        rows.push(Json::obj([
            ("stratum", Json::from(scope)),
            ("collectors", Json::Arr(collectors)),
        ]));
    }
    Ok(Json::obj([
        ("schema_version", Json::from(corpus::MANIFEST_VERSION)),
        ("core_model", Json::from(core_model_name(core))),
        ("divergence", Json::from(divergence.name())),
        ("kernels", Json::from(picked.len() as u64)),
        ("strata", Json::Arr(rows)),
    ]))
}

/// Executes a command, returning the text to print.
///
/// # Errors
///
/// Returns a [`BowError`] for unknown benchmarks, unreadable files or
/// invalid kernels; `main.rs` exits with its
/// [`exit_code`](BowError::exit_code).
pub fn execute(cmd: Command) -> Result<String, BowError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Suite => {
            let rows: Vec<Vec<String>> = suite(Scale::Paper)
                .iter()
                .map(|b| {
                    vec![
                        b.name().to_string(),
                        b.suite().to_string(),
                        b.description().to_string(),
                    ]
                })
                .collect();
            Ok(render_table(&["benchmark", "suite", "description"], &rows))
        }
        Command::Run {
            bench,
            collector,
            window,
            scale,
            reorder,
            sim_threads,
            core_model,
            divergence,
            sanitize,
        } => {
            let b =
                bow::workloads::by_name(&bench, scale).ok_or_else(|| unknown_benchmark(&bench))?;
            let mut cfg = config_for(&collector, window, reorder, core_model, divergence)?;
            if let Some(t) = sim_threads {
                cfg.gpu.sim_threads = t;
            }
            cfg.gpu.sanitize = sanitize;
            let label = cfg.label.clone();
            let rec = bow::experiment::run(b.as_ref(), cfg);
            rec.outcome
                .checked
                .as_ref()
                .map_err(|e| BowError::verify(format!("verification: {e}")))?;
            let s = &rec.outcome.result.stats;
            let mut out = String::new();
            writeln!(out, "{bench} under {label}: OK (results verified)").unwrap();
            writeln!(out, "  cycles             {}", rec.outcome.result.cycles).unwrap();
            writeln!(out, "  warp instructions  {}", s.warp_instructions).unwrap();
            writeln!(out, "  IPC                {:.3}", rec.ipc()).unwrap();
            writeln!(out, "  RF reads/writes    {} / {}", s.rf.reads, s.rf.writes).unwrap();
            writeln!(out, "  read bypass        {}", pct(s.read_bypass_rate())).unwrap();
            writeln!(out, "  write bypass       {}", pct(s.write_bypass_rate())).unwrap();
            if let Some(c) = &rec.compiler {
                writeln!(
                    out,
                    "  compiler           {} transient / {} persistent / {} rf-only; {} regs elided",
                    c.transient, c.persistent, c.rf_only, c.transient_regs.len()
                )
                .unwrap();
            }
            if let Some(san) = &rec.outcome.result.sanitizer {
                if san.is_clean() {
                    writeln!(out, "  sanitizer          clean").unwrap();
                } else {
                    writeln!(
                        out,
                        "  sanitizer          {} finding(s)",
                        san.findings.len()
                    )
                    .unwrap();
                    out.push_str(&san.render());
                    return Err(BowError::verify(out));
                }
            }
            Ok(out)
        }
        Command::Compare {
            bench,
            scale,
            jobs,
            sim_threads,
            core_model,
            divergence,
        } => {
            let b =
                bow::workloads::by_name(&bench, scale).ok_or_else(|| unknown_benchmark(&bench))?;
            let model = EnergyModel::table_iv();
            let with = |b: ConfigBuilder| b.core_model(core_model).divergence(divergence).build();
            let mut suite = Suite::over(vec![b])
                .configs([
                    with(ConfigBuilder::baseline()),
                    with(ConfigBuilder::bow(3)),
                    with(ConfigBuilder::bow_wr(3)),
                    with(ConfigBuilder::bow_wr(3).half_size(true)),
                    with(ConfigBuilder::bow_flex(12)),
                    with(ConfigBuilder::rfc()),
                ])
                .jobs(jobs);
            if let Some(t) = sim_threads {
                suite = suite.sim_threads(t);
            }
            let result = suite.run();
            let base = &result.row(0).records[0];
            base.outcome
                .checked
                .as_ref()
                .map_err(|e| BowError::verify(format!("verification: {e}")))?;
            let base_counts = base.outcome.result.stats.access_counts();
            let mut rows = Vec::new();
            for row in &result.rows {
                let rec = &row.records[0];
                rec.outcome
                    .checked
                    .as_ref()
                    .map_err(|e| BowError::verify(format!("verification: {e}")))?;
                let s = &rec.outcome.result.stats;
                let energy = EnergyReport::normalized(&model, &s.access_counts(), &base_counts);
                rows.push(vec![
                    rec.label.clone(),
                    format!("{:.3}", rec.ipc()),
                    format!("{:+.1}%", 100.0 * (rec.ipc() / base.ipc() - 1.0)),
                    pct(s.read_bypass_rate()),
                    pct(s.write_bypass_rate()),
                    format!("{:.2}", energy.total_norm()),
                ]);
            }
            Ok(render_table(
                &[
                    "config",
                    "ipc",
                    "vs base",
                    "rd bypass",
                    "wr bypass",
                    "energy",
                ],
                &rows,
            ))
        }
        Command::Asm { path } => {
            let text = std::fs::read_to_string(&path).map_err(|e| BowError::io(&path, e))?;
            let k = bow_isa::asm::parse_kernel(&text).map_err(|e| err(e.to_string()))?;
            let mut out = String::new();
            writeln!(
                out,
                "kernel `{}`: {} instructions, {} registers, {} B shared, {} params",
                k.name,
                k.len(),
                k.num_regs,
                k.shared_bytes,
                k.param_words
            )
            .unwrap();
            out.push_str(&k.disassemble());
            Ok(out)
        }
        Command::Compile {
            path,
            window,
            reorder,
        } => {
            let text = std::fs::read_to_string(&path).map_err(|e| BowError::io(&path, e))?;
            let mut k = bow_isa::asm::parse_kernel(&text).map_err(|e| err(e.to_string()))?;
            if reorder {
                k = bow_compiler::reorder_for_bypass(&k);
            }
            let (annotated, report) = annotate(&k, window);
            let mut out = String::new();
            writeln!(
                out,
                "hint pass (IW{window}): {} transient / {} persistent / {} rf-only; \
                 {} of {} registers need no RF slot",
                report.transient,
                report.persistent,
                report.rf_only,
                report.transient_regs.len(),
                report.used_regs
            )
            .unwrap();
            out.push_str(&annotated.disassemble());
            Ok(out)
        }
        Command::Sweep {
            bench,
            scale,
            jobs,
            sim_threads,
            core_model,
            divergence,
        } => {
            let b =
                bow::workloads::by_name(&bench, scale).ok_or_else(|| unknown_benchmark(&bench))?;
            let model = EnergyModel::table_iv();
            let with = |b: ConfigBuilder| b.core_model(core_model).divergence(divergence).build();
            let mut configs = vec![with(ConfigBuilder::baseline())];
            configs.extend((1..=7u32).map(|w| with(ConfigBuilder::bow_wr(w))));
            let mut suite = Suite::over(vec![b]).configs(configs).jobs(jobs);
            if let Some(t) = sim_threads {
                suite = suite.sim_threads(t);
            }
            let result = suite.run();
            for rec in result.all_records() {
                rec.outcome
                    .checked
                    .as_ref()
                    .map_err(|e| BowError::verify(format!("verification: {e}")))?;
            }
            let base = &result.row(0).records[0];
            let base_counts = base.outcome.result.stats.access_counts();
            let mut rows = Vec::new();
            for (w, row) in (1..=7u32).zip(&result.rows[1..]) {
                let rec = &row.records[0];
                let s = &rec.outcome.result.stats;
                let energy = EnergyReport::normalized(&model, &s.access_counts(), &base_counts);
                rows.push(vec![
                    format!("IW{w}"),
                    format!("{:+.1}%", 100.0 * (rec.ipc() / base.ipc() - 1.0)),
                    pct(s.read_bypass_rate()),
                    pct(s.write_bypass_rate()),
                    format!("{:.2}", energy.total_norm()),
                ]);
            }
            Ok(render_table(
                &["window", "ipc vs base", "rd bypass", "wr bypass", "energy"],
                &rows,
            ))
        }
        Command::Fuzz {
            cases,
            seed,
            jobs,
            size,
            out_dir,
            sim_threads,
            core_model,
            divergence,
            sanitize,
        } => {
            let report = bow::fuzz::run_fuzz(&bow::fuzz::FuzzOptions {
                cases,
                seed,
                jobs,
                size,
                out_dir: out_dir.into(),
                progress: false,
                sim_threads: sim_threads.unwrap_or(1),
                core_model,
                divergence,
                sanitize,
            });
            if report.failures.is_empty() {
                Ok(report.summary())
            } else {
                Err(BowError::verify(report.summary()))
            }
        }
        Command::Lint {
            path,
            all_workloads,
            deny_warnings,
            json,
            window,
            mutate,
            smoke,
            jobs,
            core_model,
            divergence,
            explain,
        } => {
            if let Some(code) = explain {
                if code.is_empty() {
                    // Bare `--explain`: list every known code.
                    let rows: Vec<Vec<String>> = bow_compiler::LINT_DOCS
                        .iter()
                        .map(|d| {
                            vec![
                                d.code.to_string(),
                                d.severity.to_string(),
                                d.summary.to_string(),
                            ]
                        })
                        .collect();
                    let mut out = render_table(&["code", "severity", "summary"], &rows);
                    out.push_str("\nuse `bow-cli lint --explain B0xx` for the full description\n");
                    return Ok(out);
                }
                return bow_compiler::explain(&code)
                    .ok_or_else(|| err(format!("lint: unknown diagnostic code `{code}`")));
            }
            if mutate {
                let mut opts = if smoke {
                    bow::mutate::MutateOptions::smoke()
                } else {
                    bow::mutate::MutateOptions::full()
                };
                opts.jobs = jobs;
                opts.divergence = divergence;
                let report = bow::mutate::run_mutation(&opts);
                if let Some(p) = json {
                    std::fs::write(&p, report.to_json().to_string_pretty())
                        .map_err(|e| BowError::io(&p, e))?;
                }
                return if report.passed() {
                    Ok(report.summary())
                } else {
                    Err(BowError::verify(report.summary()))
                };
            }

            // (kernel, pc -> source line when it came from a .s file)
            let mut targets: Vec<(Kernel, Option<Vec<usize>>)> = Vec::new();
            if let Some(p) = &path {
                let text = std::fs::read_to_string(p).map_err(|e| BowError::io(p.as_str(), e))?;
                let (k, lines) =
                    bow_isa::asm::parse_kernel_lines(&text).map_err(|e| err(e.to_string()))?;
                // Lint hand-annotated kernels as written; run the hint
                // pass on bare ones so B010 judges real compiler output.
                // Annotation only sets per-instruction hints, so the
                // pc -> line table stays valid.
                let k = if k.insts.iter().any(|i| i.hint != WritebackHint::Both) {
                    k
                } else {
                    bow_compiler::annotate(&k, window).0
                };
                targets.push((k, Some(lines)));
            }
            if all_workloads {
                for b in suite(Scale::Test) {
                    let annotated = bow_compiler::annotate(&b.kernel(), window).0;
                    targets.push((annotated, None));
                }
            }
            // Under the barrier divergence model the pipeline executes the
            // lowered form, so lint that: replace SSY/SYNC with convergence
            // barriers first, which puts B017/B018 in play. Lowering is a
            // pure opcode rewrite, so pc -> line tables stay valid.
            if divergence == DivergenceModel::Barrier {
                for (k, _) in &mut targets {
                    *k = bow_compiler::lower_to_barriers(k)
                        .map_err(|e| err(format!("{}: barrier lowering: {e}", k.name)))?;
                }
            }
            // On the modern core every kernel ships with a control-bit
            // sidecar, so lint the artifact the pipeline would consume:
            // run the emitter, which puts B013/B014 in play.
            if core_model == CoreModelKind::Modern {
                for (k, _) in &mut targets {
                    *k = bow_compiler::emit_ctrl(k, &bow_compiler::CtrlLatencies::default());
                }
            }

            let opts = bow_compiler::LintOptions {
                window,
                check_hints: true,
                ..bow_compiler::LintOptions::default()
            };
            let reports: Vec<_> = targets
                .iter()
                .map(|(k, _)| bow_compiler::lint_kernel(k, &opts))
                .collect();
            if let Some(p) = json {
                let doc = bow::util::json::Json::arr(reports.iter().map(|r| r.to_json()));
                std::fs::write(&p, doc.to_string_pretty()).map_err(|e| BowError::io(&p, e))?;
            }

            let mut out = String::new();
            for ((k, lines), report) in targets.iter().zip(&reports) {
                out.push_str(&report.render(k, lines.as_deref()));
                out.push('\n');
            }
            let failing: Vec<&str> = reports
                .iter()
                .filter(|r| r.errors() > 0 || (deny_warnings && !r.passes_deny_warnings()))
                .map(|r| r.kernel.as_str())
                .collect();
            writeln!(
                out,
                "linted {} kernel(s) at IW{window}: {}",
                reports.len(),
                if failing.is_empty() {
                    "clean".to_string()
                } else {
                    format!("FAILED ({})", failing.join(", "))
                }
            )
            .unwrap();
            if failing.is_empty() {
                Ok(out)
            } else {
                Err(BowError::verify(out))
            }
        }
        Command::Trace {
            path,
            collector,
            window,
            limit,
        } => {
            let text = std::fs::read_to_string(&path).map_err(|e| BowError::io(&path, e))?;
            let kernel = bow_isa::asm::parse_kernel(&text).map_err(|e| err(e.to_string()))?;
            let cfg = config_for(
                &collector,
                window,
                false,
                CoreModelKind::Pascal,
                DivergenceModel::Stack,
            )?;
            let mut gpu_cfg = cfg.gpu.clone();
            gpu_cfg.trace_pipeline = true;
            gpu_cfg.num_sms = 1;
            let kernel = if cfg.hints {
                bow_compiler::annotate(&kernel, window).0
            } else {
                kernel
            };
            let mut gpu = bow_sim::Gpu::new(gpu_cfg);
            let params: Vec<u32> = (0..kernel.param_words)
                .map(|i| 0x10_0000 + u32::from(i) * 0x1_0000)
                .collect();
            let res = gpu.launch(&kernel, bow_isa::KernelDims::linear(1, 32), &params);
            let trace = gpu.take_trace();
            let mut out = String::new();
            writeln!(
                out,
                "{} cycles, {} warp instructions, IPC {:.3} under {}\n",
                res.cycles,
                res.stats.warp_instructions,
                res.ipc(),
                cfg.label
            )
            .unwrap();
            out.push_str(&trace.render(limit));
            Ok(out)
        }
        Command::Encode { path } => {
            let text = std::fs::read_to_string(&path).map_err(|e| BowError::io(&path, e))?;
            let k = bow_isa::asm::parse_kernel(&text).map_err(|e| err(e.to_string()))?;
            let words = bow_isa::encode_kernel(&k);
            let mut out = String::with_capacity(words.len() * 9);
            for w in words {
                writeln!(out, "{w:08x}").unwrap();
            }
            Ok(out)
        }
        Command::Decode { path } => {
            let text = std::fs::read_to_string(&path).map_err(|e| BowError::io(&path, e))?;
            let words: Result<Vec<u32>, _> = text
                .split_whitespace()
                .map(|t| u32::from_str_radix(t, 16))
                .collect();
            let words = words.map_err(|e| err(format!("bad hex word: {e}")))?;
            let k = bow_isa::decode_kernel("decoded", &words).map_err(|e| err(e.to_string()))?;
            Ok(k.disassemble())
        }
        Command::Serve {
            addr,
            workers,
            store,
            port_file,
        } => {
            let server = bow_server::Server::bind(&bow_server::ServerConfig {
                addr,
                workers,
                store_dir: store.into(),
            })?;
            let bound = server.local_addr();
            if let Some(p) = port_file {
                std::fs::write(&p, bound.to_string()).map_err(|e| BowError::io(&p, e))?;
            }
            eprintln!("bow-server listening on {bound} (POST /v1/shutdown to stop)");
            server.run()?;
            Ok(format!("bow-server on {bound} stopped\n"))
        }
        Command::Submit { addr, action } => {
            let response = match action {
                SubmitAction::Run {
                    bench,
                    asm,
                    collector,
                    window,
                    scale,
                    wait,
                } => {
                    let kernel = match (&bench, &asm) {
                        (Some(b), None) => Json::obj([
                            ("workload", Json::from(b.as_str())),
                            (
                                "scale",
                                Json::from(match scale {
                                    Scale::Test => "test",
                                    Scale::Paper => "paper",
                                }),
                            ),
                        ]),
                        (None, Some(path)) => {
                            let text =
                                std::fs::read_to_string(path).map_err(|e| BowError::io(path, e))?;
                            Json::obj([("asm", Json::from(text))])
                        }
                        _ => unreachable!("parse() enforces bench XOR asm"),
                    };
                    let body = Json::obj([
                        ("kernel", kernel),
                        (
                            "config",
                            Json::obj([
                                ("collector", Json::from(collector.as_str())),
                                ("window", Json::from(window)),
                            ]),
                        ),
                        ("wait", Json::from(wait)),
                    ]);
                    bow_server::client::post(&addr, "/v1/runs", &body.to_string_compact())?
                }
                SubmitAction::Job(id) => bow_server::client::get(&addr, &format!("/v1/jobs/{id}"))?,
                SubmitAction::Fetch(fp) => {
                    bow_server::client::get(&addr, &format!("/v1/results/{fp}"))?
                }
                SubmitAction::Health => bow_server::client::get(&addr, "/v1/healthz")?,
                SubmitAction::Shutdown => bow_server::client::post(&addr, "/v1/shutdown", "{}")?,
            };
            // Print the server's JSON verbatim; non-2xx responses carry a
            // structured error document and fail the process.
            let mut out = response.body.clone();
            if !out.ends_with('\n') {
                out.push('\n');
            }
            if response.status < 400 {
                Ok(out)
            } else {
                let kind = response
                    .json()
                    .ok()
                    .and_then(|v| {
                        v.get("error")?
                            .get("kind")
                            .and_then(Json::as_str)
                            .map(String::from)
                    })
                    .unwrap_or_default();
                Err(match kind.as_str() {
                    "config" => BowError::Config(ConfigError::Unknown {
                        what: "request (server rejected the configuration)",
                        value: out.trim_end().to_string(),
                    }),
                    "io" | "not_found" => BowError::io(&addr, out.trim_end()),
                    "verify" => BowError::verify(out.trim_end()),
                    _ => BowError::parse(out.trim_end()),
                })
            }
        }
        Command::Corpus { action } => match action {
            CorpusAction::Gen { count, seed, dir } => {
                let manifest = bow::corpus::generate(seed, count);
                std::fs::create_dir_all(&dir).map_err(|e| BowError::io(&dir, e))?;
                let path = corpus_manifest_path(&dir);
                let mut text = manifest.to_json().to_string_pretty();
                if !text.ends_with('\n') {
                    text.push('\n');
                }
                std::fs::write(&path, text).map_err(|e| BowError::io(&path, e))?;
                let retained = manifest.retained().count();
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "corpus: seed {seed:#x}, {count} generated candidates, \
                     {retained}/{} entries retained → {path}",
                    manifest.entries.len()
                );
                out.push_str(&corpus_stratum_table(&manifest));
                Ok(out)
            }
            CorpusAction::Stats { dir } => {
                let manifest = load_corpus_manifest(&dir)?;
                let retained = manifest.retained().count();
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "corpus: seed {:#x}, count {}, {retained}/{} entries retained",
                    manifest.seed,
                    manifest.count,
                    manifest.entries.len()
                );
                out.push_str(&corpus_stratum_table(&manifest));
                Ok(out)
            }
            CorpusAction::Sweep {
                dir,
                limit,
                jobs,
                sim_threads,
                core_model,
                divergence,
                addr,
                out,
            } => {
                let manifest = load_corpus_manifest(&dir)?;
                let doc = if let Some(addr) = addr {
                    corpus_server_sweep(&manifest, limit, &addr, core_model, divergence)?
                } else {
                    let opts = bow::corpus::SweepOptions {
                        limit,
                        jobs,
                        sim_threads,
                        core_model,
                        divergence,
                        progress: true,
                    };
                    let result = bow::corpus::sweep(&manifest, &opts);
                    for row in &result.rows {
                        for rec in &row.records {
                            if let Err(e) = &rec.outcome.checked {
                                return Err(BowError::verify(format!(
                                    "{} under {}: {e}",
                                    rec.benchmark, row.label
                                )));
                            }
                        }
                    }
                    bow::corpus::distribution_json(
                        &manifest,
                        &result,
                        core_model_name(core_model),
                        divergence.name(),
                    )
                };
                let mut text = doc.to_string_pretty();
                if !text.ends_with('\n') {
                    text.push('\n');
                }
                if let Some(out_path) = out {
                    std::fs::write(&out_path, &text).map_err(|e| BowError::io(&out_path, e))?;
                }
                Ok(text)
            }
            CorpusAction::Sanitize {
                count,
                seed,
                jobs,
                smoke,
                out,
            } => {
                let mut opts = if smoke {
                    bow::sanitize_campaign::CampaignOptions::smoke()
                } else {
                    bow::sanitize_campaign::CampaignOptions::full()
                };
                opts.count = count;
                opts.seed = seed;
                opts.jobs = jobs;
                let report = bow::sanitize_campaign::run_campaign(&opts);
                let out_path = out.unwrap_or_else(|| "results/sanitizer_campaign.json".into());
                if let Some(dir) = std::path::Path::new(&out_path).parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| BowError::io(dir.display().to_string(), e))?;
                    }
                }
                let mut text = report.to_json().to_string_pretty();
                if !text.ends_with('\n') {
                    text.push('\n');
                }
                std::fs::write(&out_path, text).map_err(|e| BowError::io(&out_path, e))?;
                let summary = format!("{}\nreport → {out_path}\n", report.summary().trim_end());
                if report.passed() {
                    Ok(summary)
                } else {
                    Err(BowError::verify(summary))
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_run_with_options() {
        let c = parse(&argv(
            "run btree --collector bow --window 4 --scale test --reorder --sim-threads 2",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Run {
                bench: "btree".into(),
                collector: "bow".into(),
                window: 4,
                scale: Scale::Test,
                reorder: true,
                sim_threads: Some(2),
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                sanitize: false,
            }
        );
        assert!(parse(&argv("run btree --sim-threads lots")).is_err());
    }

    #[test]
    fn parse_defaults() {
        let c = parse(&argv("run vectoradd")).unwrap();
        assert_eq!(
            c,
            Command::Run {
                bench: "vectoradd".into(),
                collector: "bow-wr".into(),
                window: 3,
                scale: Scale::Test,
                reorder: false,
                sim_threads: None,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                sanitize: false,
            }
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run x --scale huge")).is_err());
    }

    #[test]
    fn parse_sweep() {
        let c = parse(&argv("sweep nw --scale test --jobs 2")).unwrap();
        assert_eq!(
            c,
            Command::Sweep {
                bench: "nw".into(),
                scale: Scale::Test,
                jobs: 2,
                sim_threads: None,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
            }
        );
    }

    #[test]
    fn parse_jobs_defaults_to_all_cores() {
        let c = parse(&argv("compare nw --scale test")).unwrap();
        assert_eq!(
            c,
            Command::Compare {
                bench: "nw".into(),
                scale: Scale::Test,
                jobs: 0,
                sim_threads: None,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
            }
        );
        assert!(parse(&argv("sweep nw --jobs lots")).is_err());
    }

    #[test]
    fn sweep_runs_all_windows() {
        let out = execute(Command::Sweep {
            bench: "vectoradd".into(),
            scale: Scale::Test,
            jobs: 2,
            sim_threads: None,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
        })
        .unwrap();
        assert!(out.contains("IW1") && out.contains("IW7"), "{out}");
    }

    #[test]
    fn compare_lists_all_collectors() {
        let out = execute(Command::Compare {
            bench: "vectoradd".into(),
            scale: Scale::Test,
            jobs: 2,
            sim_threads: Some(2),
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
        })
        .unwrap();
        for label in ["baseline", "bow iw3", "bow-wr iw3", "bow-flex c12", "rfc"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn suite_lists_benchmarks() {
        let out = execute(Command::Suite).unwrap();
        assert!(out.contains("btree"));
        assert!(out.contains("vectoradd"));
    }

    #[test]
    fn run_vectoradd_reports_verified() {
        let out = execute(Command::Run {
            bench: "vectoradd".into(),
            collector: "bow-wr".into(),
            window: 3,
            scale: Scale::Test,
            reorder: false,
            sim_threads: Some(2),
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            sanitize: false,
        })
        .unwrap();
        assert!(out.contains("OK (results verified)"), "{out}");
        assert!(out.contains("IPC"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let e = execute(Command::Run {
            bench: "nope".into(),
            collector: "bow".into(),
            window: 3,
            scale: Scale::Test,
            reorder: false,
            sim_threads: None,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            sanitize: false,
        })
        .unwrap_err();
        assert!(e.to_string().contains("unknown benchmark"));
    }

    #[test]
    fn encode_decode_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("bow_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let asm = dir.join("k.s");
        std::fs::write(
            &asm,
            ".kernel k\n    mov r0, 7\n    iadd r1, r0, 1\n    exit\n",
        )
        .unwrap();
        let hex = execute(Command::Encode {
            path: asm.display().to_string(),
        })
        .unwrap();
        let hex_path = dir.join("k.hex");
        std::fs::write(&hex_path, hex).unwrap();
        let text = execute(Command::Decode {
            path: hex_path.display().to_string(),
        })
        .unwrap();
        assert!(text.contains("mov r0, 7"));
        assert!(text.contains("iadd r1, r0, 1"));
    }

    #[test]
    fn parse_fuzz_flags_and_smoke() {
        let c = parse(&argv("fuzz --cases 10 --seed 42 --jobs 2 --size 8")).unwrap();
        assert_eq!(
            c,
            Command::Fuzz {
                cases: 10,
                seed: 42,
                jobs: 2,
                size: 8,
                out_dir: bow::fuzz::FuzzOptions::default()
                    .out_dir
                    .display()
                    .to_string(),
                sim_threads: None,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                sanitize: false,
            }
        );
        // --smoke pins cases/seed/size regardless of other flags.
        let smoke = bow::fuzz::FuzzOptions::smoke();
        let c = parse(&argv("fuzz --smoke --cases 9999 --jobs 3 --sim-threads 4")).unwrap();
        assert_eq!(
            c,
            Command::Fuzz {
                cases: smoke.cases,
                seed: smoke.seed,
                jobs: 3,
                size: smoke.size,
                out_dir: smoke.out_dir.display().to_string(),
                sim_threads: Some(4),
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                sanitize: false,
            }
        );
        assert!(parse(&argv("fuzz --cases many")).is_err());
        // Hex seeds round-trip from repro headers and the docs.
        match parse(&argv("fuzz --seed 0x5330c0de")).unwrap() {
            Command::Fuzz { seed, .. } => assert_eq!(seed, 0x5330_c0de),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn fuzz_command_runs_clean() {
        let out = execute(Command::Fuzz {
            cases: 2,
            seed: 7,
            jobs: 2,
            size: 10,
            out_dir: std::env::temp_dir()
                .join("bow_cli_fuzz_test")
                .display()
                .to_string(),
            sim_threads: Some(2),
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            sanitize: true,
        })
        .unwrap();
        assert!(out.contains("OK"), "{out}");
    }

    #[test]
    fn parse_lint_flags() {
        let c = parse(&argv(
            "lint --all-workloads --deny-warnings --window 4 --json out.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Lint {
                path: None,
                all_workloads: true,
                deny_warnings: true,
                json: Some("out.json".into()),
                window: 4,
                mutate: false,
                smoke: false,
                jobs: 0,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                explain: None,
            }
        );
        // A bare `lint` has nothing to lint.
        assert!(parse(&argv("lint")).is_err());
        match parse(&argv("lint --mutate --smoke --jobs 2")).unwrap() {
            Command::Lint {
                mutate,
                smoke,
                jobs,
                ..
            } => {
                assert!(mutate && smoke);
                assert_eq!(jobs, 2);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn lint_all_workloads_is_clean_under_deny_warnings() {
        let dir = std::env::temp_dir().join("bow_cli_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("lint.json");
        let out = execute(Command::Lint {
            path: None,
            all_workloads: true,
            deny_warnings: true,
            json: Some(json.display().to_string()),
            window: 3,
            mutate: false,
            smoke: false,
            jobs: 0,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            explain: None,
        })
        .unwrap();
        assert!(out.contains("linted 15 kernel(s) at IW3: clean"), "{out}");
        let doc = std::fs::read_to_string(&json).unwrap();
        let parsed = bow::util::json::parse(&doc).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), 15);
    }

    #[test]
    fn lint_on_the_modern_core_emits_and_judges_control_bits() {
        // --core-model modern routes every workload kernel through the
        // control-bit emitter before linting, so the sidecar lints
        // (B013/B014) exercise real compiler output — and it is clean.
        let out = execute(Command::Lint {
            path: None,
            all_workloads: true,
            deny_warnings: true,
            json: None,
            window: 3,
            mutate: false,
            smoke: false,
            jobs: 0,
            core_model: CoreModelKind::Modern,
            divergence: DivergenceModel::Stack,
            explain: None,
        })
        .unwrap();
        assert!(out.contains("linted 15 kernel(s) at IW3: clean"), "{out}");
    }

    #[test]
    fn lint_flags_an_unsound_file_and_maps_source_lines() {
        let dir = std::env::temp_dir().join("bow_cli_lint_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let asm = dir.join("bad.s");
        // A hand-annotated kernel: the BocOnly value is evicted (window 3
        // runs out) before the distant read, and r9 is read uninitialized.
        std::fs::write(
            &asm,
            ".kernel bad\n\
             \x20   mov r0, 7 .wb.boc\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   nop\n\
             \x20   iadd r1, r0, 1\n\
             \x20   iadd r2, r9, 1\n\
             \x20   exit\n",
        )
        .unwrap();
        let e = execute(Command::Lint {
            path: Some(asm.display().to_string()),
            all_workloads: false,
            deny_warnings: false,
            json: None,
            window: 3,
            mutate: false,
            smoke: false,
            jobs: 0,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            explain: None,
        })
        .unwrap_err()
        .to_string();
        assert!(e.contains("error[B010]"), "{e}");
        assert!(e.contains("warning[B001]"), "{e}");
        // Source-line spans, not raw pcs: `mov r0` sits on line 2.
        assert!(e.contains("bad:2"), "{e}");
        assert!(e.contains("FAILED (bad)"), "{e}");
    }

    #[test]
    fn lint_annotates_bare_kernels_before_judging_hints() {
        let dir = std::env::temp_dir().join("bow_cli_lint_bare_test");
        std::fs::create_dir_all(&dir).unwrap();
        let asm = dir.join("ok.s");
        std::fs::write(
            &asm,
            ".kernel ok\n\
             \x20   mov r0, 7\n\
             \x20   iadd r1, r0, 1\n\
             \x20   stg [r1], r0\n\
             \x20   exit\n",
        )
        .unwrap();
        let out = execute(Command::Lint {
            path: Some(asm.display().to_string()),
            all_workloads: false,
            deny_warnings: true,
            json: None,
            window: 3,
            mutate: false,
            smoke: false,
            jobs: 0,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            explain: None,
        })
        .unwrap();
        assert!(out.contains("linted 1 kernel(s) at IW3: clean"), "{out}");
    }

    #[test]
    fn config_for_covers_all_collectors() {
        for c in [
            "baseline",
            "bow",
            "bow-wr",
            "bow-wr-half",
            "bow-flex",
            "rfc",
        ] {
            assert!(
                config_for(c, 3, false, CoreModelKind::Pascal, DivergenceModel::Stack).is_ok(),
                "{c}"
            );
            assert!(
                config_for(c, 3, false, CoreModelKind::Modern, DivergenceModel::Stack).is_ok(),
                "{c}"
            );
        }
        assert!(config_for(
            "warp-drive",
            3,
            false,
            CoreModelKind::Pascal,
            DivergenceModel::Stack
        )
        .is_err());
    }

    #[test]
    fn parse_core_model_flag() {
        match parse(&argv("run vectoradd --core-model modern")).unwrap() {
            Command::Run { core_model, .. } => assert_eq!(core_model, CoreModelKind::Modern),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("fuzz --smoke --core-model modern")).unwrap() {
            Command::Fuzz { core_model, .. } => assert_eq!(core_model, CoreModelKind::Modern),
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&argv("run vectoradd --core-model volta")).is_err());
    }

    #[test]
    fn run_on_the_modern_core_reports_verified() {
        let out = execute(Command::Run {
            bench: "vectoradd".into(),
            collector: "bow-wr".into(),
            window: 3,
            scale: Scale::Test,
            reorder: false,
            sim_threads: Some(2),
            core_model: CoreModelKind::Modern,
            divergence: DivergenceModel::Stack,
            sanitize: false,
        })
        .unwrap();
        assert!(out.contains("bow-wr iw3+modern"), "{out}");
        assert!(out.contains("OK (results verified)"), "{out}");
    }

    #[test]
    fn compare_on_the_modern_core_labels_every_row() {
        let out = execute(Command::Compare {
            bench: "vectoradd".into(),
            scale: Scale::Test,
            jobs: 2,
            sim_threads: None,
            core_model: CoreModelKind::Modern,
            divergence: DivergenceModel::Stack,
        })
        .unwrap();
        for label in ["baseline+modern", "bow iw3+modern", "rfc+modern"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn parse_corpus_verbs() {
        assert_eq!(
            parse(&argv("corpus gen --count 64 --seed 0x2a --dir pop")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Gen {
                    count: 64,
                    seed: 0x2a,
                    dir: "pop".into(),
                }
            }
        );
        assert_eq!(
            parse(&argv("corpus gen")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Gen {
                    count: bow::corpus::DEFAULT_COUNT,
                    seed: bow::corpus::DEFAULT_SEED,
                    dir: "corpus".into(),
                }
            }
        );
        assert_eq!(
            parse(&argv("corpus stats --dir pop")).unwrap(),
            Command::Corpus {
                action: CorpusAction::Stats { dir: "pop".into() }
            }
        );
        assert_eq!(
            parse(&argv(
                "corpus sweep --limit 16 --jobs 2 --core-model modern \
                 --addr 127.0.0.1:9 --out d.json"
            ))
            .unwrap(),
            Command::Corpus {
                action: CorpusAction::Sweep {
                    dir: "corpus".into(),
                    limit: 16,
                    jobs: 2,
                    sim_threads: None,
                    core_model: CoreModelKind::Modern,
                    divergence: DivergenceModel::Stack,
                    addr: Some("127.0.0.1:9".into()),
                    out: Some("d.json".into()),
                }
            }
        );
        assert!(parse(&argv("corpus")).is_err());
        assert!(parse(&argv("corpus prune")).is_err());
        assert!(parse(&argv("corpus gen --seed banana")).is_err());
        assert!(parse(&argv("corpus gen --count some")).is_err());
    }

    #[test]
    fn corpus_gen_then_stats_roundtrip() {
        let dir = std::env::temp_dir().join("bow_cli_corpus_test");
        let _ = std::fs::remove_dir_all(&dir);
        let dir = dir.display().to_string();
        let gen = |_| {
            execute(Command::Corpus {
                action: CorpusAction::Gen {
                    count: 18,
                    seed: 0x5eed,
                    dir: dir.clone(),
                },
            })
            .unwrap();
            std::fs::read_to_string(format!("{dir}/manifest.json")).unwrap()
        };
        let first = gen(0);
        let second = gen(1);
        assert_eq!(first, second, "manifest is byte-identical across runs");
        assert!(first.ends_with('\n'));

        let out = execute(Command::Corpus {
            action: CorpusAction::Stats { dir: dir.clone() },
        })
        .unwrap();
        assert!(out.contains("seed 0x5eed"), "{out}");
        for stratum in ["mixed", "divergent", "mem-heavy", "adversarial"] {
            assert!(out.contains(stratum), "missing {stratum} in:\n{out}");
        }
        let _ = std::fs::remove_dir_all(&dir);
        assert!(execute(Command::Corpus {
            action: CorpusAction::Stats { dir },
        })
        .is_err());
    }

    #[test]
    fn corpus_sweep_emits_distributions() {
        let dir = std::env::temp_dir()
            .join("bow_cli_corpus_sweep_test")
            .display()
            .to_string();
        execute(Command::Corpus {
            action: CorpusAction::Gen {
                count: 9,
                seed: 0xd157,
                dir: dir.clone(),
            },
        })
        .unwrap();
        let out_file = format!("{dir}/dist.json");
        let out = execute(Command::Corpus {
            action: CorpusAction::Sweep {
                dir: dir.clone(),
                limit: 4,
                jobs: 2,
                sim_threads: None,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                addr: None,
                out: Some(out_file.clone()),
            },
        })
        .unwrap();
        for key in ["ipc_gain", "read_bypass_rate", "\"core_model\": \"pascal\""] {
            assert!(out.contains(key), "missing {key} in:\n{out}");
        }
        assert_eq!(std::fs::read_to_string(&out_file).unwrap(), out);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_sanitize_flags() {
        match parse(&argv("run vectoradd --sanitize")).unwrap() {
            Command::Run { sanitize, .. } => assert!(sanitize),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("fuzz --smoke --sanitize")).unwrap() {
            Command::Fuzz { sanitize, .. } => assert!(sanitize),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv(
            "corpus sanitize --count 32 --seed 0x2a --jobs 2 --out s.json",
        ))
        .unwrap()
        {
            Command::Corpus {
                action:
                    CorpusAction::Sanitize {
                        count,
                        seed,
                        jobs,
                        smoke,
                        out,
                    },
            } => {
                assert_eq!((count, seed, jobs, smoke), (32, 0x2a, 2, false));
                assert_eq!(out.as_deref(), Some("s.json"));
            }
            other => panic!("parsed {other:?}"),
        }
        // --smoke pins the fixed CI campaign regardless of other knobs.
        match parse(&argv("corpus sanitize --smoke --count 9999")).unwrap() {
            Command::Corpus {
                action: CorpusAction::Sanitize { count, smoke, .. },
            } => {
                assert_eq!(
                    count,
                    bow::sanitize_campaign::CampaignOptions::smoke().count
                );
                assert!(smoke);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn run_with_sanitizer_reports_clean() {
        let out = execute(Command::Run {
            bench: "vectoradd".into(),
            collector: "bow-wr".into(),
            window: 3,
            scale: Scale::Test,
            reorder: false,
            sim_threads: None,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            sanitize: true,
        })
        .unwrap();
        assert!(out.contains("sanitizer          clean"), "{out}");
    }

    #[test]
    fn lint_explain_prints_docs_and_rejects_unknown_codes() {
        match parse(&argv("lint --explain B015")).unwrap() {
            Command::Lint { explain, .. } => assert_eq!(explain.as_deref(), Some("B015")),
            other => panic!("parsed {other:?}"),
        }
        let out = execute(parse(&argv("lint --explain B015")).unwrap()).unwrap();
        assert!(out.starts_with("B015:"), "{out}");
        assert!(out.contains("error"), "{out}");
        // Unknown codes are a usage error: exit code 2 for scripts.
        let e = execute(parse(&argv("lint --explain B999")).unwrap()).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("B999"), "{e}");
    }

    #[test]
    fn lint_explain_with_no_code_lists_every_code() {
        // A bare `--explain` (or one directly followed by another flag)
        // lists the whole catalog instead of erroring.
        for cmdline in ["lint --explain", "lint --explain --window 3"] {
            let out = execute(parse(&argv(cmdline)).unwrap()).unwrap();
            for code in ["B001", "B010", "B017", "B018"] {
                assert!(out.contains(code), "missing {code} in:\n{out}");
            }
            assert!(out.contains("severity"), "{out}");
        }
    }

    #[test]
    fn parse_divergence_flag() {
        match parse(&argv("run vectoradd --divergence barrier")).unwrap() {
            Command::Run { divergence, .. } => assert_eq!(divergence, DivergenceModel::Barrier),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv(
            "fuzz --smoke --divergence barrier --core-model modern",
        ))
        .unwrap()
        {
            Command::Fuzz {
                divergence,
                core_model,
                ..
            } => {
                assert_eq!(divergence, DivergenceModel::Barrier);
                assert_eq!(core_model, CoreModelKind::Modern);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("corpus sweep --divergence barrier")).unwrap() {
            Command::Corpus {
                action: CorpusAction::Sweep { divergence, .. },
            } => assert_eq!(divergence, DivergenceModel::Barrier),
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&argv("run vectoradd --divergence ipdom")).is_err());
    }

    #[test]
    fn run_under_barrier_divergence_reports_verified() {
        // bfs is divergent at test scale, so this exercises real
        // split/join traffic end to end through the CLI path.
        let run = |sanitize: bool| {
            execute(Command::Run {
                bench: "bfs".into(),
                collector: "bow-wr".into(),
                window: 3,
                scale: Scale::Test,
                reorder: false,
                sim_threads: Some(2),
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Barrier,
                sanitize,
            })
        };
        let out = run(false).unwrap();
        assert!(out.contains("bow-wr iw3+barrier"), "{out}");
        assert!(out.contains("OK (results verified)"), "{out}");
        // With the sanitizer attached, bfs's known benign cross-warp
        // race is still found under barrier divergence: the probe rides
        // the same event stream whatever the reconvergence bookkeeping,
        // and findings surface as the usual exit-code-5 Verify error.
        let err = match run(true) {
            Err(BowError::Verify(msg)) => msg,
            other => panic!("expected sanitizer findings, got {other:?}"),
        };
        assert!(err.contains("race: global word"), "{err}");
    }

    #[test]
    fn lint_all_workloads_under_barriers_is_clean() {
        // --divergence barrier lowers every workload kernel to
        // convergence-barrier form before linting; the barrier-form
        // structure checks and B017/B018 must all come back clean.
        let out = execute(Command::Lint {
            path: None,
            all_workloads: true,
            deny_warnings: true,
            json: None,
            window: 3,
            mutate: false,
            smoke: false,
            jobs: 0,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Barrier,
            explain: None,
        })
        .unwrap();
        assert!(out.contains("linted 15 kernel(s) at IW3: clean"), "{out}");
    }

    #[test]
    fn corpus_sanitize_writes_the_campaign_artifact() {
        let dir = std::env::temp_dir().join("bow_cli_corpus_sanitize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out_file = dir.join("campaign.json").display().to_string();
        let out = execute(Command::Corpus {
            action: CorpusAction::Sanitize {
                count: 6,
                seed: 0xdeca,
                jobs: 2,
                smoke: false,
                out: Some(out_file.clone()),
            },
        })
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains(&out_file), "{out}");
        let doc = bow::util::json::parse(&std::fs::read_to_string(&out_file).unwrap()).unwrap();
        assert_eq!(doc.get("passed").and_then(Json::as_bool), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_sweep_through_a_live_server() {
        let root =
            std::env::temp_dir().join(format!("bow_cli_corpus_server_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dir = root.join("pop").display().to_string();
        execute(Command::Corpus {
            action: CorpusAction::Gen {
                count: 9,
                seed: 0xcafe,
                dir: dir.clone(),
            },
        })
        .unwrap();

        let server = bow_server::Server::bind(&bow_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            store_dir: root.join("store"),
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().expect("server run"));

        let out = execute(Command::Corpus {
            action: CorpusAction::Sweep {
                dir,
                limit: 2,
                jobs: 0,
                sim_threads: None,
                core_model: CoreModelKind::Pascal,
                divergence: DivergenceModel::Stack,
                addr: Some(addr.clone()),
                out: None,
            },
        })
        .unwrap();
        assert!(out.contains("ipc_gain"), "{out}");
        assert!(out.contains("\"kernels\": 2"), "{out}");
        // The server path measures IPC only (memory-oracle runs with
        // synthetic parameters); it must not fabricate bypass numbers.
        assert!(!out.contains("read_bypass_rate"), "{out}");

        let resp = bow_server::client::post(&addr, "/v1/shutdown", "{}").expect("shutdown");
        assert_eq!(resp.status, 200);
        handle.join().expect("join");
        let _ = std::fs::remove_dir_all(&root);
    }
}
