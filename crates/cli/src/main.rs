//! Process entry point: parse, execute, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bow_cli::parse(&args).and_then(bow_cli::execute) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
