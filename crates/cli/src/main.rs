//! Process entry point: parse, execute, print.
//!
//! Failure classes map to stable exit codes via
//! [`BowError::exit_code`](bow::error::BowError::exit_code):
//! 2 parse, 3 config, 4 io, 5 verify (1 is reserved for panics).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bow_cli::parse(&args).and_then(bow_cli::execute) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
