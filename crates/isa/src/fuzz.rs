//! Structured kernel fuzzer with an independent host-side evaluator.
//!
//! [`FuzzKernel`] is a small structured program — straight-line ALU work,
//! predicate-guarded instructions, global loads/stores, shared-memory
//! exchanges across barriers, nested diamonds and bounded loops — drawn
//! deterministically from a [`XorShift`] stream. It lowers to a real
//! [`Kernel`] via [`FuzzKernel::build`], and [`FuzzKernel::expected`]
//! evaluates the *same* structured program on the host with plain Rust
//! arithmetic: a second, independent implementation of the ISA semantics
//! that never touches the simulator. A divergence between the two is a bug
//! in one of them — this is the differential half of the `bow fuzz`
//! subsystem (the architectural oracle in `bow-sim` is the lockstep half).
//!
//! Failing cases shrink via [`FuzzKernel::shrink`]: greedy delta-debugging
//! over the statement tree (drop statements, flatten diamonds and loops,
//! strip guards) until no smaller program still fails.
//!
//! ## Register convention of lowered kernels
//!
//! | register | role |
//! |----------|------|
//! | `r0`     | global thread id (`gtid`) |
//! | `r1,r2`  | lowering scratch |
//! | `r3`     | `INPUT_BASE + gtid*4` (input pointer) |
//! | `r4,r5`  | loop counters (outer, inner) |
//! | `r6`     | shared-memory slot base (`tid_in_block * 16`) |
//! | `r7`     | this thread's input word |
//! | `r8..r15`| the eight fuzzed data registers |
//!
//! Every lowered kernel ends by storing all eight data registers to
//! `OUT_BASE + gtid*32`, so the final global memory is a complete
//! observation of the program's architectural effect.

use crate::builder::KernelBuilder;
use crate::kernel::{Kernel, KernelDims};
use crate::opcode::CmpOp;
use crate::operand::{Operand, Special};
use crate::reg::{Pred, Reg};
use bow_util::XorShift;
use std::collections::BTreeMap;

/// Grid dimensions of every fuzzed launch (x, y).
pub const GRID: (u32, u32) = (2, 1);
/// Block dimensions of every fuzzed launch (x, y).
pub const BLOCK: (u32, u32) = (64, 1);
/// Total threads in a fuzzed launch.
pub const NUM_THREADS: u32 = GRID.0 * GRID.1 * BLOCK.0 * BLOCK.1;

/// Base address of the per-thread output block (8 words per thread).
pub const OUT_BASE: u32 = 0x10_0000;
/// Base address of the scratch store region (16 word slots per thread).
pub const SCRATCH_BASE: u32 = 0x20_0000;
/// Base address of the read-only input region (1 word per thread).
pub const INPUT_BASE: u32 = 0x30_0000;

/// Kernel parameter words every fuzzed kernel is launched with.
pub const PARAMS: [u32; 4] = [INPUT_BASE, OUT_BASE, 0x1234_5678, 0x9e37_79b9];

/// Number of fuzzed data registers (`r8..r15`).
pub const DATA_REGS: u8 = 8;
/// Maximum per-thread scratch store slots.
const MAX_STORE_SLOTS: u8 = 16;
/// Maximum shared-memory exchange slots (4 words per thread).
const MAX_XCHG_SLOTS: u8 = 4;
/// Shared bytes per block: 4 exchange slots per thread.
const SHARED_BYTES: u32 = BLOCK.0 * 16;

const DATA_BASE: u8 = 8;
const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];
const XOR_PARTNERS: [u8; 9] = [1, 2, 3, 5, 8, 17, 32, 33, 63];

/// Closed ALU opcode set the fuzzer draws from. Mirrors the data opcodes
/// of [`crate::Opcode`]; each variant lowers to exactly one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluOp {
    IAdd,
    ISub,
    IMul,
    IMad,
    IMin,
    IMax,
    IAbs,
    ISad,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,
    Sar,
    FAdd,
    FSub,
    FMul,
    FFma,
    FMin,
    FMax,
    FRcp,
    FSqrt,
    FLog2,
    FExp2,
    I2F,
    F2I,
    MovImm,
    Sel,
    S2R,
}

const ALU_OPS: [AluOp; 30] = [
    AluOp::IAdd,
    AluOp::ISub,
    AluOp::IMul,
    AluOp::IMad,
    AluOp::IMin,
    AluOp::IMax,
    AluOp::IAbs,
    AluOp::ISad,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Not,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::FAdd,
    AluOp::FSub,
    AluOp::FMul,
    AluOp::FFma,
    AluOp::FMin,
    AluOp::FMax,
    AluOp::FRcp,
    AluOp::FSqrt,
    AluOp::FLog2,
    AluOp::FExp2,
    AluOp::I2F,
    AluOp::F2I,
    AluOp::MovImm,
    AluOp::Sel,
    AluOp::S2R,
];

const SPECIALS: [Special; 7] = [
    Special::TidX,
    Special::TidY,
    Special::CtaidX,
    Special::NtidX,
    Special::NctaidX,
    Special::LaneId,
    Special::WarpId,
];

/// One statement of the structured fuzz program.
///
/// Register indices (`dst`, `a`, `b`, `c`, `src`) select among the
/// [`DATA_REGS`] data registers; predicate indices select `p2`/`p3`.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A single data instruction over the data registers.
    Alu {
        /// Which operation.
        op: AluOp,
        /// Destination data register index.
        dst: u8,
        /// First source data register index.
        a: u8,
        /// Second source data register index.
        b: u8,
        /// Third source data register index (IMad/ISad/FFma/Sel).
        c: u8,
        /// Immediate payload: shift amount, MovImm value, S2R selector.
        imm: u32,
        /// Optional `@p`/`@!p` guard: (predicate index 0..2 → p2/p3, negated).
        guard: Option<(u8, bool)>,
    },
    /// Compare two data registers into `p2`/`p3`.
    Setp {
        /// Predicate index 0..2 (→ p2/p3).
        pred: u8,
        /// Index into the comparison-op table.
        cmp: u8,
        /// Float compare instead of integer.
        float: bool,
        /// First source data register index.
        a: u8,
        /// Second source data register index.
        b: u8,
    },
    /// Load a kernel parameter word from constant memory.
    LdConst {
        /// Destination data register index.
        dst: u8,
        /// Parameter word index (0..4).
        word: u8,
    },
    /// Load from the input region at `gtid + delta` words (clamped to 0
    /// for out-of-range reads by memory semantics).
    GlobalLoad {
        /// Destination data register index.
        dst: u8,
        /// Word offset relative to this thread's input word (-1, 0, 1).
        delta: i8,
    },
    /// Store a data register to this thread's private scratch slot.
    GlobalStore {
        /// Source data register index.
        src: u8,
        /// Per-thread scratch slot (unique per static store).
        slot: u8,
    },
    /// Branch on a bit of a data register: `if bit set { then } else { els }`.
    Diamond {
        /// Data register index supplying the condition.
        src: u8,
        /// Which bit of the register to test (0..32).
        bit: u8,
        /// Taken branch body.
        then: Vec<Stmt>,
        /// Not-taken branch body.
        els: Vec<Stmt>,
    },
    /// A counted loop with a compile-time trip count.
    Loop {
        /// Trip count (1..=4).
        trips: u8,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Shared-memory exchange: every thread publishes `src` to its own
    /// slot, barriers, then reads partner `tid ^ xor`'s slot into `dst`.
    Exchange {
        /// Source data register index.
        src: u8,
        /// Destination data register index.
        dst: u8,
        /// Partner XOR mask (< block width).
        xor: u8,
        /// Shared slot (unique per static exchange).
        slot: u8,
    },
    /// A bare block-wide barrier.
    Barrier,
}

impl Stmt {
    fn count(&self) -> usize {
        match self {
            Stmt::Diamond { then, els, .. } => {
                1 + then.iter().map(Stmt::count).sum::<usize>()
                    + els.iter().map(Stmt::count).sum::<usize>()
            }
            Stmt::Loop { body, .. } => 1 + body.iter().map(Stmt::count).sum::<usize>(),
            _ => 1,
        }
    }
}

/// A structured fuzz program plus its launch input.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzKernel {
    /// Top-level statement list.
    pub stmts: Vec<Stmt>,
}

/// Steerable knobs of the structured generator: the paper's workload
/// axes (register pressure, operand reuse distance, branch divergence,
/// memory-op density) plus the raw statement-kind mix.
///
/// [`GenParams::default`] reproduces the classic fuzzer distribution
/// *byte for byte* — the same `XorShift` consumption, so every historic
/// repro seed still regenerates the same kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Register pressure: data registers in play (1..=[`DATA_REGS`]).
    /// Destinations and uniform sources are drawn from `r8..r8+n`.
    pub active_regs: u8,
    /// Operand reuse distance: when > 0, three source draws out of four
    /// come from the `reuse_window` most-recently-written data registers
    /// instead of the uniform pool, shortening def→use distances (the
    /// bypass-friendly regime). 0 keeps sources uniform.
    pub reuse_window: u8,
    /// Maximum diamond nesting depth (0..=2). 0 disables divergence.
    pub branch_depth: u32,
    /// Maximum loop nesting depth (0..=2). 0 disables loops.
    pub loop_depth: u32,
    /// Statement-kind weights (relative; bands are rolled out of their
    /// sum, so only ratios matter).
    pub w_alu: u32,
    /// Weight of predicate-setting compares.
    pub w_setp: u32,
    /// Weight of constant-bank parameter loads.
    pub w_ldconst: u32,
    /// Weight of global loads.
    pub w_load: u32,
    /// Weight of global scratch stores.
    pub w_store: u32,
    /// Weight of branch diamonds.
    pub w_branch: u32,
    /// Weight of counted loops.
    pub w_loop: u32,
    /// Weight of shared-memory exchanges (barrier + cross-thread read).
    pub w_exchange: u32,
    /// Weight of bare block-wide barriers.
    pub w_barrier: u32,
}

impl Default for GenParams {
    fn default() -> GenParams {
        GenParams {
            active_regs: DATA_REGS,
            reuse_window: 0,
            branch_depth: 2,
            loop_depth: 2,
            // The classic percentage bands: 45/10/5/6/8/8/6/6/6 = 100.
            w_alu: 45,
            w_setp: 10,
            w_ldconst: 5,
            w_load: 6,
            w_store: 8,
            w_branch: 8,
            w_loop: 6,
            w_exchange: 6,
            w_barrier: 6,
        }
    }
}

impl GenParams {
    /// Sum of the statement-kind weights (the roll modulus).
    fn total_weight(&self) -> u64 {
        u64::from(self.w_alu)
            + u64::from(self.w_setp)
            + u64::from(self.w_ldconst)
            + u64::from(self.w_load)
            + u64::from(self.w_store)
            + u64::from(self.w_branch)
            + u64::from(self.w_loop)
            + u64::from(self.w_exchange)
            + u64::from(self.w_barrier)
    }

    /// Clamps every knob into the range the lowering supports.
    fn clamped(mut self) -> GenParams {
        self.active_regs = self.active_regs.clamp(1, DATA_REGS);
        self.branch_depth = self.branch_depth.min(2);
        self.loop_depth = self.loop_depth.min(2);
        if self.total_weight() == 0 {
            self.w_alu = 1;
        }
        self
    }
}

/// Generation context threaded through recursive block generation.
struct GenCtx {
    store_slot: u8,
    xchg_slot: u8,
    /// Most-recently-written data registers, newest first (deduplicated).
    /// Feeds the reuse-distance knob; unused when `reuse_window` is 0.
    recent: Vec<u8>,
}

impl FuzzKernel {
    /// Generates a program with the default statement budget.
    pub fn generate(rng: &mut XorShift) -> FuzzKernel {
        Self::generate_sized(rng, 24)
    }

    /// Generates a program with roughly `budget` statements.
    pub fn generate_sized(rng: &mut XorShift, budget: usize) -> FuzzKernel {
        Self::generate_with(rng, budget, &GenParams::default())
    }

    /// Generates a program with roughly `budget` statements, steered by
    /// `params`. Out-of-range knobs are clamped rather than rejected so
    /// every parameter point is a valid generator.
    pub fn generate_with(rng: &mut XorShift, budget: usize, params: &GenParams) -> FuzzKernel {
        let params = params.clamped();
        let mut ctx = GenCtx {
            store_slot: 0,
            xchg_slot: 0,
            recent: Vec::new(),
        };
        let mut stmts = Vec::new();
        let mut budget = budget as i64;
        gen_block(rng, &mut ctx, &params, 0, 0, true, &mut budget, &mut stmts);
        FuzzKernel { stmts }
    }

    /// Total statement count (tree-wide), the metric shrinking minimizes.
    pub fn count_stmts(&self) -> usize {
        self.stmts.iter().map(Stmt::count).sum()
    }

    /// Removes statements whose written value can never be observed: a
    /// backward statement-level liveness pass mirroring the compiler's
    /// may-live analysis (a guarded write is only a may-def and does not
    /// kill; diamond arms union; loop bodies run to a back-edge
    /// fixpoint). Purely semantics-preserving — every store, exchange
    /// and final data-register value is unchanged, so [`Self::expected`]
    /// agrees before and after.
    ///
    /// Random programs overwrite unread intermediates constantly; the
    /// corpus pipeline scrubs candidates so the `B004` dead-write lint
    /// judges real hazards instead of generator noise. Deterministic:
    /// same program in, same program out.
    pub fn scrub(&self) -> FuzzKernel {
        let mut stmts = self.stmts.clone();
        loop {
            // The lowering epilogue stores every data register, so all
            // of them are live at program exit.
            let mut live = [true; DATA_REGS as usize];
            if !scrub_block(&mut stmts, &mut live) {
                break;
            }
        }
        FuzzKernel { stmts }
    }

    /// Launch dimensions every fuzzed kernel uses.
    pub fn dims() -> KernelDims {
        KernelDims {
            grid: GRID,
            block: BLOCK,
        }
    }

    /// Generates the per-thread input words for a case.
    pub fn gen_input(rng: &mut XorShift) -> Vec<u32> {
        (0..NUM_THREADS).map(|_| rng.next_u32()).collect()
    }

    /// Lowers the structured program to a runnable [`Kernel`].
    pub fn build(&self, name: &str) -> Kernel {
        self.build_inner(name, false)
    }

    /// Like [`Self::build`], but the fixed prologue is pruned to what the
    /// program can actually observe: data registers that are dead on
    /// entry (overwritten on every path before any read) are not seeded,
    /// and the input-pointer / input-load / shared-base setup is emitted
    /// only when something downstream reads it. Observable behaviour is
    /// identical to [`Self::build`] — [`Self::expected`] holds for both —
    /// but the pruned form carries no dead prologue writes, so the `B004`
    /// lint judges the program body rather than boilerplate. The classic
    /// [`Self::build`] lowering is unchanged (historic fingerprints).
    pub fn build_pruned(&self, name: &str) -> Kernel {
        self.build_inner(name, true)
    }

    fn build_inner(&self, name: &str, prune: bool) -> Kernel {
        let r = Reg::r;
        // Which data registers the body can read before writing — the
        // rest are seeded for nothing. The epilogue reads all of them,
        // so a dead-on-entry register is rewritten on every path.
        let seed_mask: LiveSet = if prune {
            let mut live = [true; DATA_REGS as usize];
            analyze_block(&self.stmts, &mut live);
            live
        } else {
            [true; DATA_REGS as usize]
        };
        let any_seed = seed_mask.iter().any(|&x| x);
        let has_gload = stmt_any(&self.stmts, &|s| matches!(s, Stmt::GlobalLoad { .. }));
        let has_exchange = stmt_any(&self.stmts, &|s| matches!(s, Stmt::Exchange { .. }));
        let need_input_ptr = !prune || any_seed || has_gload;
        let need_input_word = !prune || any_seed;
        let need_shared_base = !prune || has_exchange;

        let mut b = KernelBuilder::new(name)
            .num_regs(16)
            .shared_bytes(SHARED_BYTES)
            .param_words(PARAMS.len() as u16)
            // r0 = gtid = ctaid.x * ntid.x + tid.x
            .s2r(r(0), Special::TidX)
            .s2r(r(1), Special::CtaidX)
            .s2r(r(2), Special::NtidX)
            .imad(
                r(0),
                Operand::Reg(r(1)),
                Operand::Reg(r(2)),
                Operand::Reg(r(0)),
            );
        if need_input_ptr {
            // r3 = INPUT_BASE + gtid*4
            b = b.shl(r(3), Operand::Reg(r(0)), Operand::Imm(2)).iadd(
                r(3),
                Operand::Reg(r(3)),
                Operand::Imm(INPUT_BASE),
            );
        }
        if need_input_word {
            // r7 = input[gtid]
            b = b.ldg(r(7), r(3), 0);
        }
        if need_shared_base {
            // r6 = tid_in_block * 16 (shared slot base)
            b = b
                .s2r(r(6), Special::TidX)
                .shl(r(6), Operand::Reg(r(6)), Operand::Imm(4));
        }
        // Seed the data registers from gtid and the input word.
        for i in 0..DATA_REGS {
            if !seed_mask[i as usize] {
                continue;
            }
            let d = r(DATA_BASE + i);
            b = b
                .imad(
                    d,
                    Operand::Reg(r(0)),
                    Operand::Imm(2 * u32::from(i) + 3),
                    Operand::Imm(seed_const(i)),
                )
                .xor(d, Operand::Reg(d), Operand::Reg(r(7)));
        }
        let mut labels = 0u32;
        for s in &self.stmts {
            b = lower_stmt(b, s, 0, &mut labels);
        }
        // Epilogue: r1 = OUT_BASE + gtid*32, store all data registers.
        b = b.shl(r(1), Operand::Reg(r(0)), Operand::Imm(5)).iadd(
            r(1),
            Operand::Reg(r(1)),
            Operand::Imm(OUT_BASE),
        );
        for i in 0..DATA_REGS {
            b = b.stg(r(1), i32::from(i) * 4, Operand::Reg(r(DATA_BASE + i)));
        }
        b.exit().build().expect("fuzz kernel lowering is valid")
    }

    /// Evaluates the structured program on the host with plain Rust
    /// arithmetic and returns the final `(address, value)` pairs of every
    /// global word the kernel writes (scratch stores + the epilogue dump).
    ///
    /// This is an independent reimplementation of the ISA semantics — it
    /// shares no code with `bow-sim`'s `exec` module, so a mismatch
    /// against the simulator flags a real semantics divergence.
    pub fn expected(&self, input: &[u32]) -> Vec<(u64, u32)> {
        assert_eq!(input.len(), NUM_THREADS as usize);
        let threads_per_block = (BLOCK.0 * BLOCK.1) as usize;
        let num_blocks = (GRID.0 * GRID.1) as usize;
        let mut stores: BTreeMap<u64, u32> = BTreeMap::new();
        for block in 0..num_blocks {
            let mut threads: Vec<HostThread> = (0..threads_per_block)
                .map(|t| HostThread::new(block, t, input))
                .collect();
            let mut shared = vec![0u32; (SHARED_BYTES / 4) as usize];
            eval_block(&self.stmts, &mut threads, &mut shared, input, &mut stores);
            for th in &threads {
                let base = u64::from(OUT_BASE) + u64::from(th.gtid) * 32;
                for i in 0..DATA_REGS as usize {
                    stores.insert(base + i as u64 * 4, th.regs[i]);
                }
            }
        }
        stores.into_iter().collect()
    }

    /// Greedy delta-debugging: repeatedly applies the smallest-first
    /// simplification whose result still makes `fails` return `true`.
    /// `fails` must be deterministic; the original program must fail.
    pub fn shrink<F: FnMut(&FuzzKernel) -> bool>(&self, mut fails: F) -> FuzzKernel {
        let mut cur = self.clone();
        loop {
            let mut improved = false;
            for cand in variants(&cur.stmts) {
                let cand = FuzzKernel { stmts: cand };
                if cand.count_stmts() <= cur.count_stmts() && cand != cur && fails(&cand) {
                    cur = cand;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return cur;
            }
        }
    }
}

fn seed_const(i: u8) -> u32 {
    0x9e37_79b9u32.wrapping_mul(u32::from(i) + 1)
}

/// Draws a source data-register index. Uniform over the active pool by
/// default; with a reuse window, three draws out of four come from the
/// most-recently-written registers.
fn pick_src(rng: &mut XorShift, ctx: &GenCtx, p: &GenParams) -> u8 {
    if p.reuse_window > 0 && !ctx.recent.is_empty() {
        if rng.below(4) != 0 {
            let w = (p.reuse_window as usize).min(ctx.recent.len());
            return ctx.recent[rng.below(w as u64) as usize];
        }
        return rng.below_u8(p.active_regs);
    }
    rng.below_u8(p.active_regs)
}

/// Draws a destination data-register index from the active pool.
fn pick_dst(rng: &mut XorShift, p: &GenParams) -> u8 {
    rng.below_u8(p.active_regs)
}

/// Records a data-register write for the reuse-distance heuristic.
fn note_write(ctx: &mut GenCtx, reg: u8) {
    ctx.recent.retain(|&r| r != reg);
    ctx.recent.insert(0, reg);
    ctx.recent.truncate(DATA_REGS as usize);
}

#[allow(clippy::too_many_arguments)]
fn gen_block(
    rng: &mut XorShift,
    ctx: &mut GenCtx,
    p: &GenParams,
    depth: u32,
    loop_depth: u32,
    top: bool,
    budget: &mut i64,
    out: &mut Vec<Stmt>,
) {
    // Cumulative band edges; a roll below `c_x` but past the previous
    // edge selects band x. Bands whose structural guard fails (slot
    // budget spent, nesting too deep, not at top level) fall back to a
    // plain ALU statement, exactly like the classic generator.
    let c_alu = u64::from(p.w_alu);
    let c_setp = c_alu + u64::from(p.w_setp);
    let c_ldconst = c_setp + u64::from(p.w_ldconst);
    let c_load = c_ldconst + u64::from(p.w_load);
    let c_store = c_load + u64::from(p.w_store);
    let c_branch = c_store + u64::from(p.w_branch);
    let c_loop = c_branch + u64::from(p.w_loop);
    let c_xchg = c_loop + u64::from(p.w_exchange);
    let total = c_xchg + u64::from(p.w_barrier);
    while *budget > 0 {
        *budget -= 1;
        let roll = rng.below(total);
        let stmt = if roll < c_alu {
            gen_alu(rng, ctx, p)
        } else if roll < c_setp {
            Stmt::Setp {
                pred: rng.below_u8(2),
                cmp: rng.below_u8(CMPS.len() as u8),
                float: rng.below(4) == 0,
                a: pick_src(rng, ctx, p),
                b: pick_src(rng, ctx, p),
            }
        } else if roll < c_ldconst {
            Stmt::LdConst {
                dst: pick_dst(rng, p),
                word: rng.below_u8(PARAMS.len() as u8),
            }
        } else if roll < c_load {
            Stmt::GlobalLoad {
                dst: pick_dst(rng, p),
                delta: (rng.below(3) as i8) - 1,
            }
        } else if roll < c_store {
            if ctx.store_slot < MAX_STORE_SLOTS {
                let slot = ctx.store_slot;
                ctx.store_slot += 1;
                Stmt::GlobalStore {
                    src: pick_src(rng, ctx, p),
                    slot,
                }
            } else {
                gen_alu(rng, ctx, p)
            }
        } else if roll < c_branch {
            if depth < p.branch_depth && *budget > 2 {
                let mut then = Vec::new();
                let mut els = Vec::new();
                let mut sub = (*budget / 2).min(6);
                *budget -= sub;
                gen_block(
                    rng,
                    ctx,
                    p,
                    depth + 1,
                    loop_depth,
                    false,
                    &mut sub,
                    &mut then,
                );
                let mut sub = (*budget / 2).min(6);
                *budget -= sub;
                gen_block(
                    rng,
                    ctx,
                    p,
                    depth + 1,
                    loop_depth,
                    false,
                    &mut sub,
                    &mut els,
                );
                Stmt::Diamond {
                    src: pick_src(rng, ctx, p),
                    bit: rng.below_u8(32),
                    then,
                    els,
                }
            } else {
                gen_alu(rng, ctx, p)
            }
        } else if roll < c_loop {
            if loop_depth < p.loop_depth && *budget > 2 {
                let mut body = Vec::new();
                let mut sub = (*budget / 2).min(6);
                *budget -= sub;
                gen_block(
                    rng,
                    ctx,
                    p,
                    depth,
                    loop_depth + 1,
                    false,
                    &mut sub,
                    &mut body,
                );
                Stmt::Loop {
                    trips: 1 + rng.below_u8(if loop_depth == 0 { 4 } else { 3 }),
                    body,
                }
            } else {
                gen_alu(rng, ctx, p)
            }
        } else if roll < c_xchg {
            if top && ctx.xchg_slot < MAX_XCHG_SLOTS {
                let slot = ctx.xchg_slot;
                ctx.xchg_slot += 1;
                Stmt::Exchange {
                    src: pick_src(rng, ctx, p),
                    dst: pick_dst(rng, p),
                    xor: *rng.choose(&XOR_PARTNERS),
                    slot,
                }
            } else {
                gen_alu(rng, ctx, p)
            }
        } else if top {
            Stmt::Barrier
        } else {
            gen_alu(rng, ctx, p)
        };
        match &stmt {
            Stmt::Alu { dst, .. }
            | Stmt::LdConst { dst, .. }
            | Stmt::GlobalLoad { dst, .. }
            | Stmt::Exchange { dst, .. } => note_write(ctx, *dst),
            _ => {}
        }
        out.push(stmt);
    }
}

fn gen_alu(rng: &mut XorShift, ctx: &GenCtx, p: &GenParams) -> Stmt {
    let op = *rng.choose(&ALU_OPS);
    let imm = match op {
        AluOp::Shl | AluOp::Shr | AluOp::Sar => rng.below(32) as u32,
        AluOp::S2R => rng.below(SPECIALS.len() as u64) as u32,
        _ => rng.next_u32(),
    };
    let guard = if rng.below(5) == 0 {
        Some((rng.below_u8(2), rng.next_bool()))
    } else {
        None
    };
    Stmt::Alu {
        op,
        dst: pick_dst(rng, p),
        a: pick_src(rng, ctx, p),
        b: pick_src(rng, ctx, p),
        c: pick_src(rng, ctx, p),
        imm,
        guard,
    }
}

// ---------------------------------------------------------------------------
// Lowering to bow-isa instructions
// ---------------------------------------------------------------------------

fn data_reg(i: u8) -> Reg {
    Reg::r(DATA_BASE + i)
}

fn fuzz_pred(i: u8) -> Pred {
    Pred::p(2 + i)
}

/// Which of `(a, b, c)` an ALU statement actually reads, matching the
/// lowering in [`lower_stmt`] operand for operand.
fn alu_srcs(op: AluOp) -> (bool, bool, bool) {
    match op {
        AluOp::IMad | AluOp::ISad | AluOp::FFma => (true, true, true),
        AluOp::IAdd
        | AluOp::ISub
        | AluOp::IMul
        | AluOp::IMin
        | AluOp::IMax
        | AluOp::And
        | AluOp::Or
        | AluOp::Xor
        | AluOp::FAdd
        | AluOp::FSub
        | AluOp::FMul
        | AluOp::FMin
        | AluOp::FMax
        | AluOp::Sel => (true, true, false),
        AluOp::IAbs
        | AluOp::Not
        | AluOp::Shl
        | AluOp::Shr
        | AluOp::Sar
        | AluOp::FRcp
        | AluOp::FSqrt
        | AluOp::FLog2
        | AluOp::FExp2
        | AluOp::I2F
        | AluOp::F2I => (true, false, false),
        AluOp::MovImm | AluOp::S2R => (false, false, false),
    }
}

type LiveSet = [bool; DATA_REGS as usize];

/// Does any statement in the tree satisfy `f`?
fn stmt_any(stmts: &[Stmt], f: &dyn Fn(&Stmt) -> bool) -> bool {
    stmts.iter().any(|s| {
        f(s) || match s {
            Stmt::Diamond { then, els, .. } => stmt_any(then, f) || stmt_any(els, f),
            Stmt::Loop { body, .. } => stmt_any(body, f),
            _ => false,
        }
    })
}

/// The backward liveness transfer of one statement (no removal).
fn stmt_transfer(s: &Stmt, live: &mut LiveSet) {
    match s {
        Stmt::Alu {
            op,
            dst,
            a,
            b,
            c,
            guard,
            ..
        } => {
            if guard.is_none() {
                live[*dst as usize] = false;
            }
            let (ra, rb, rc) = alu_srcs(*op);
            if ra {
                live[*a as usize] = true;
            }
            if rb {
                live[*b as usize] = true;
            }
            if rc {
                live[*c as usize] = true;
            }
        }
        Stmt::Setp { a, b, .. } => {
            live[*a as usize] = true;
            live[*b as usize] = true;
        }
        Stmt::LdConst { dst, .. } | Stmt::GlobalLoad { dst, .. } => {
            live[*dst as usize] = false;
        }
        Stmt::GlobalStore { src, .. } => {
            live[*src as usize] = true;
        }
        Stmt::Diamond { src, then, els, .. } => {
            let mut l_then = *live;
            let mut l_els = *live;
            analyze_block(then, &mut l_then);
            analyze_block(els, &mut l_els);
            for (l, (t, e)) in live.iter_mut().zip(l_then.iter().zip(l_els.iter())) {
                *l = *t || *e;
            }
            live[*src as usize] = true;
        }
        Stmt::Loop { body, .. } => {
            let exit = loop_fixpoint(body, live);
            *live = exit;
            analyze_block(body, live);
        }
        Stmt::Exchange { src, dst, .. } => {
            live[*dst as usize] = false;
            live[*src as usize] = true;
        }
        Stmt::Barrier => {}
    }
}

/// Backward liveness over a statement list (no removal).
fn analyze_block(stmts: &[Stmt], live: &mut LiveSet) {
    for s in stmts.iter().rev() {
        stmt_transfer(s, live);
    }
}

/// Liveness at the **end** of a loop body: the live-after set of the
/// loop joined, to a fixpoint, with whatever the back edge feeds in
/// from the body's own entry liveness.
fn loop_fixpoint(body: &[Stmt], live_after: &LiveSet) -> LiveSet {
    let mut exit = *live_after;
    loop {
        let mut l = exit;
        analyze_block(body, &mut l);
        let mut grew = false;
        for (x, entry) in exit.iter_mut().zip(l.iter()) {
            if *entry && !*x {
                *x = true;
                grew = true;
            }
        }
        if !grew {
            return exit;
        }
    }
}

/// One backward scrub pass: removes `Alu`/`LdConst`/`GlobalLoad`
/// statements whose destination is not live (a guarded write of a dead
/// value is still removable — it is unobservable either way). Exchanges
/// are never removed: their barrier and shared-store side effects are
/// observable by other threads.
fn scrub_block(stmts: &mut Vec<Stmt>, live: &mut LiveSet) -> bool {
    let mut changed = false;
    let mut i = stmts.len();
    while i > 0 {
        i -= 1;
        let dead = match &stmts[i] {
            Stmt::Alu { dst, .. } | Stmt::LdConst { dst, .. } | Stmt::GlobalLoad { dst, .. } => {
                !live[*dst as usize]
            }
            _ => false,
        };
        if dead {
            stmts.remove(i);
            changed = true;
            continue;
        }
        match &mut stmts[i] {
            Stmt::Diamond { src, then, els, .. } => {
                let mut l_then = *live;
                let mut l_els = *live;
                changed |= scrub_block(then, &mut l_then);
                changed |= scrub_block(els, &mut l_els);
                for (l, (t, e)) in live.iter_mut().zip(l_then.iter().zip(l_els.iter())) {
                    *l = *t || *e;
                }
                live[*src as usize] = true;
            }
            Stmt::Loop { body, .. } => {
                let mut exit = loop_fixpoint(body, live);
                changed |= scrub_block(body, &mut exit);
                *live = exit;
            }
            s => stmt_transfer(s, live),
        }
    }
    changed
}

fn lower_stmt(mut b: KernelBuilder, s: &Stmt, loop_depth: u32, labels: &mut u32) -> KernelBuilder {
    let r = Reg::r;
    match s {
        Stmt::Alu {
            op,
            dst,
            a,
            b: src_b,
            c,
            imm,
            guard,
        } => {
            if let Some((p, neg)) = guard {
                b = b.guard(fuzz_pred(*p), *neg);
            }
            let d = data_reg(*dst);
            let a = Operand::Reg(data_reg(*a));
            let bb = Operand::Reg(data_reg(*src_b));
            let cc = Operand::Reg(data_reg(*c));
            match op {
                AluOp::IAdd => b.iadd(d, a, bb),
                AluOp::ISub => b.isub(d, a, bb),
                AluOp::IMul => b.imul(d, a, bb),
                AluOp::IMad => b.imad(d, a, bb, cc),
                AluOp::IMin => b.imin(d, a, bb),
                AluOp::IMax => b.imax(d, a, bb),
                AluOp::IAbs => b.iabs(d, a),
                AluOp::ISad => b.isad(d, a, bb, cc),
                AluOp::And => b.and(d, a, bb),
                AluOp::Or => b.or(d, a, bb),
                AluOp::Xor => b.xor(d, a, bb),
                AluOp::Not => b.not(d, a),
                AluOp::Shl => b.shl(d, a, Operand::Imm(*imm)),
                AluOp::Shr => b.shr(d, a, Operand::Imm(*imm)),
                AluOp::Sar => b.sar(d, a, Operand::Imm(*imm)),
                AluOp::FAdd => b.fadd(d, a, bb),
                AluOp::FSub => b.fsub(d, a, bb),
                AluOp::FMul => b.fmul(d, a, bb),
                AluOp::FFma => b.ffma(d, a, bb, cc),
                AluOp::FMin => b.fmin(d, a, bb),
                AluOp::FMax => b.fmax(d, a, bb),
                AluOp::FRcp => b.frcp(d, a),
                AluOp::FSqrt => b.fsqrt(d, a),
                AluOp::FLog2 => b.flog2(d, a),
                AluOp::FExp2 => b.fexp2(d, a),
                AluOp::I2F => b.i2f(d, a),
                AluOp::F2I => b.f2i(d, a),
                AluOp::MovImm => b.mov_imm(d, *imm),
                AluOp::Sel => b.sel(d, a, bb, fuzz_pred((*imm & 1) as u8)),
                AluOp::S2R => b.s2r(d, SPECIALS[*imm as usize % SPECIALS.len()]),
            }
        }
        Stmt::Setp {
            pred,
            cmp,
            float,
            a,
            b: src_b,
        } => {
            let p = fuzz_pred(*pred);
            let op = CMPS[*cmp as usize % CMPS.len()];
            let a = Operand::Reg(data_reg(*a));
            let bb = Operand::Reg(data_reg(*src_b));
            if *float {
                b.fsetp(op, p, a, bb)
            } else {
                b.isetp(op, p, a, bb)
            }
        }
        Stmt::LdConst { dst, word } => b.ldc(data_reg(*dst), i32::from(*word) * 4),
        Stmt::GlobalLoad { dst, delta } => b.ldg(data_reg(*dst), r(3), i32::from(*delta) * 4),
        Stmt::GlobalStore { src, slot } => {
            // r1 = SCRATCH_BASE + gtid*64; store at slot*4.
            b.shl(r(1), Operand::Reg(r(0)), Operand::Imm(6))
                .iadd(r(1), Operand::Reg(r(1)), Operand::Imm(SCRATCH_BASE))
                .stg(r(1), i32::from(*slot) * 4, Operand::Reg(data_reg(*src)))
        }
        Stmt::Diamond {
            src,
            bit,
            then,
            els,
        } => {
            let n = *labels;
            *labels += 1;
            let l_then = format!("d{n}_then");
            let l_join = format!("d{n}_join");
            b = b
                .and(r(1), Operand::Reg(data_reg(*src)), Operand::Imm(1 << bit))
                .isetp(CmpOp::Ne, Pred::p(0), Operand::Reg(r(1)), Operand::Imm(0))
                .ssy(l_join.as_str())
                .bra_if(Pred::p(0), false, l_then.as_str());
            for s in els {
                b = lower_stmt(b, s, loop_depth, labels);
            }
            b = b.bra(l_join.as_str()).label(l_then.as_str());
            for s in then {
                b = lower_stmt(b, s, loop_depth, labels);
            }
            b.label(l_join.as_str()).sync()
        }
        Stmt::Loop { trips, body } => {
            let n = *labels;
            *labels += 1;
            let l_top = format!("loop{n}");
            let ctr = r(4 + loop_depth as u8);
            b = b.mov_imm(ctr, 0).label(l_top.as_str());
            for s in body {
                b = lower_stmt(b, s, loop_depth + 1, labels);
            }
            b.iadd(ctr, Operand::Reg(ctr), Operand::Imm(1))
                .isetp(
                    CmpOp::Lt,
                    Pred::p(1),
                    Operand::Reg(ctr),
                    Operand::Imm(u32::from(*trips)),
                )
                .bra_if(Pred::p(1), false, l_top.as_str())
        }
        Stmt::Exchange {
            src,
            dst,
            xor,
            slot,
        } => b
            .sts(r(6), i32::from(*slot) * 4, Operand::Reg(data_reg(*src)))
            .bar()
            .s2r(r(1), Special::TidX)
            .xor(r(1), Operand::Reg(r(1)), Operand::Imm(u32::from(*xor)))
            .shl(r(1), Operand::Reg(r(1)), Operand::Imm(4))
            .lds(data_reg(*dst), r(1), i32::from(*slot) * 4),
        Stmt::Barrier => b.bar(),
    }
}

// ---------------------------------------------------------------------------
// Independent host-side evaluator
// ---------------------------------------------------------------------------

/// Float results collapse NaNs to the canonical 0x7fffffff, matching the
/// device model (and NVIDIA hardware, which does not preserve f32 NaN
/// payloads). Independently re-stated here rather than imported: this
/// evaluator must not share code with the simulator it checks.
fn canon_f32(v: f32) -> u32 {
    if v.is_nan() {
        0x7fff_ffff
    } else {
        v.to_bits()
    }
}

struct HostThread {
    gtid: u32,
    tid: u32,
    block: u32,
    regs: [u32; DATA_REGS as usize],
    preds: [bool; 2],
}

impl HostThread {
    fn new(block: usize, tid: usize, input: &[u32]) -> HostThread {
        let threads_per_block = BLOCK.0 * BLOCK.1;
        let gtid = block as u32 * threads_per_block + tid as u32;
        let input_word = input[gtid as usize];
        let mut regs = [0u32; DATA_REGS as usize];
        for (i, reg) in regs.iter_mut().enumerate() {
            *reg = gtid
                .wrapping_mul(2 * i as u32 + 3)
                .wrapping_add(seed_const(i as u8))
                ^ input_word;
        }
        HostThread {
            gtid,
            tid: tid as u32,
            block: block as u32,
            regs,
            preds: [false; 2],
        }
    }

    fn special(&self, sp: Special) -> u32 {
        // Geometry mirrors the simulator: a flat block index decomposed by
        // the x-width, 1-wide in y for the fuzzer's fixed BLOCK/GRID.
        match sp {
            Special::TidX => self.tid % BLOCK.0,
            Special::TidY => self.tid / BLOCK.0,
            Special::CtaidX => self.block % GRID.0,
            Special::NtidX => BLOCK.0,
            Special::NctaidX => GRID.0,
            Special::LaneId => self.tid % 32,
            Special::WarpId => self.tid / 32,
            _ => 0,
        }
    }
}

fn eval_block(
    stmts: &[Stmt],
    threads: &mut [HostThread],
    shared: &mut [u32],
    input: &[u32],
    stores: &mut BTreeMap<u64, u32>,
) {
    for s in stmts {
        match s {
            Stmt::Exchange {
                src,
                dst,
                xor,
                slot,
            } => {
                // Phase 1: everyone publishes; barrier; phase 2: read partner.
                for th in threads.iter() {
                    shared[(th.tid * 4 + u32::from(*slot)) as usize] = th.regs[*src as usize];
                }
                for th in threads.iter_mut() {
                    let partner = th.tid ^ u32::from(*xor);
                    th.regs[*dst as usize] = shared[(partner * 4 + u32::from(*slot)) as usize];
                }
            }
            Stmt::Barrier => {}
            _ => {
                for th in threads.iter_mut() {
                    eval_thread(s, th, input, stores);
                }
            }
        }
    }
}

fn eval_thread(s: &Stmt, th: &mut HostThread, input: &[u32], stores: &mut BTreeMap<u64, u32>) {
    match s {
        Stmt::Alu {
            op,
            dst,
            a,
            b,
            c,
            imm,
            guard,
        } => {
            if let Some((p, neg)) = guard {
                if th.preds[*p as usize] == *neg {
                    return;
                }
            }
            let a = th.regs[*a as usize];
            let b = th.regs[*b as usize];
            let c = th.regs[*c as usize];
            let fa = f32::from_bits(a);
            let fb = f32::from_bits(b);
            let fc = f32::from_bits(c);
            let v = match op {
                AluOp::IAdd => a.wrapping_add(b),
                AluOp::ISub => a.wrapping_sub(b),
                AluOp::IMul => a.wrapping_mul(b),
                AluOp::IMad => a.wrapping_mul(b).wrapping_add(c),
                AluOp::IMin => (a as i32).min(b as i32) as u32,
                AluOp::IMax => (a as i32).max(b as i32) as u32,
                AluOp::IAbs => (a as i32).unsigned_abs(),
                AluOp::ISad => (a as i32).abs_diff(b as i32).wrapping_add(c),
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Not => !a,
                AluOp::Shl => a.wrapping_shl(*imm),
                AluOp::Shr => a.wrapping_shr(*imm),
                AluOp::Sar => (a as i32).wrapping_shr(*imm) as u32,
                AluOp::FAdd => canon_f32(fa + fb),
                AluOp::FSub => canon_f32(fa - fb),
                AluOp::FMul => canon_f32(fa * fb),
                AluOp::FFma => canon_f32(fa.mul_add(fb, fc)),
                AluOp::FMin => canon_f32(fa.min(fb)),
                AluOp::FMax => canon_f32(fa.max(fb)),
                AluOp::FRcp => canon_f32(1.0 / fa),
                AluOp::FSqrt => canon_f32(fa.sqrt()),
                AluOp::FLog2 => canon_f32(fa.log2()),
                AluOp::FExp2 => canon_f32(fa.exp2()),
                AluOp::I2F => (a as i32 as f32).to_bits(),
                AluOp::F2I => (fa as i32) as u32,
                AluOp::MovImm => *imm,
                AluOp::Sel => {
                    if th.preds[(*imm & 1) as usize] {
                        a
                    } else {
                        b
                    }
                }
                AluOp::S2R => th.special(SPECIALS[*imm as usize % SPECIALS.len()]),
            };
            th.regs[*dst as usize] = v;
        }
        Stmt::Setp {
            pred,
            cmp,
            float,
            a,
            b,
        } => {
            let op = CMPS[*cmp as usize % CMPS.len()];
            let a = th.regs[*a as usize];
            let b = th.regs[*b as usize];
            th.preds[*pred as usize] = if *float {
                op.eval_f32(f32::from_bits(a), f32::from_bits(b))
            } else {
                op.eval_i32(a as i32, b as i32)
            };
        }
        Stmt::LdConst { dst, word } => {
            th.regs[*dst as usize] = PARAMS[*word as usize];
        }
        Stmt::GlobalLoad { dst, delta } => {
            let idx = i64::from(th.gtid) + i64::from(*delta);
            th.regs[*dst as usize] = if (0..input.len() as i64).contains(&idx) {
                input[idx as usize]
            } else {
                0
            };
        }
        Stmt::GlobalStore { src, slot } => {
            let addr = u64::from(SCRATCH_BASE) + u64::from(th.gtid) * 64 + u64::from(*slot) * 4;
            stores.insert(addr, th.regs[*src as usize]);
        }
        Stmt::Diamond {
            src,
            bit,
            then,
            els,
        } => {
            let taken = (th.regs[*src as usize] >> bit) & 1 != 0;
            let body = if taken { then } else { els };
            for s in body {
                eval_thread(s, th, input, stores);
            }
        }
        Stmt::Loop { trips, body } => {
            for _ in 0..*trips {
                for s in body {
                    eval_thread(s, th, input, stores);
                }
            }
        }
        Stmt::Exchange { .. } | Stmt::Barrier => {
            unreachable!("block-wide statements are evaluated in eval_block")
        }
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// All one-step simplifications of a statement list, smallest-delta first.
fn variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Drop the statement entirely.
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
        match &stmts[i] {
            Stmt::Diamond { then, els, .. } => {
                // Flatten to either branch body.
                for repl in [then, els] {
                    let mut v = stmts.to_vec();
                    v.splice(i..i + 1, repl.iter().cloned());
                    out.push(v);
                }
                // Recurse into both branches.
                for sub in variants(then) {
                    let mut v = stmts.to_vec();
                    if let Stmt::Diamond { then, .. } = &mut v[i] {
                        *then = sub;
                    }
                    out.push(v);
                }
                for sub in variants(els) {
                    let mut v = stmts.to_vec();
                    if let Stmt::Diamond { els, .. } = &mut v[i] {
                        *els = sub;
                    }
                    out.push(v);
                }
            }
            Stmt::Loop { trips, body } => {
                // Flatten to one unrolled body.
                let mut v = stmts.to_vec();
                v.splice(i..i + 1, body.iter().cloned());
                out.push(v);
                // Reduce the trip count.
                if *trips > 1 {
                    let mut v = stmts.to_vec();
                    if let Stmt::Loop { trips, .. } = &mut v[i] {
                        *trips = 1;
                    }
                    out.push(v);
                }
                for sub in variants(body) {
                    let mut v = stmts.to_vec();
                    if let Stmt::Loop { body, .. } = &mut v[i] {
                        *body = sub;
                    }
                    out.push(v);
                }
            }
            Stmt::Alu { guard: Some(_), .. } => {
                let mut v = stmts.to_vec();
                if let Stmt::Alu { guard, .. } = &mut v[i] {
                    *guard = None;
                }
                out.push(v);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_kernels_validate() {
        let mut rng = XorShift::new(0xf022);
        for _ in 0..50 {
            let fk = FuzzKernel::generate(&mut rng);
            let k = fk.build("fuzz");
            k.validate().expect("lowered kernel validates");
            assert!(k.insts.len() < 512, "kernel stays small");
        }
    }

    #[test]
    fn lowering_roundtrips_through_asm() {
        let mut rng = XorShift::new(7);
        let fk = FuzzKernel::generate(&mut rng);
        let k = fk.build("fuzz");
        let text = k.disassemble();
        let k2 = crate::asm::parse_kernel(&text).expect("reparses");
        assert_eq!(k.insts, k2.insts);
    }

    #[test]
    fn expected_is_deterministic_and_covers_epilogue() {
        let mut rng = XorShift::new(42);
        let fk = FuzzKernel::generate(&mut rng);
        let input = FuzzKernel::gen_input(&mut rng);
        let a = fk.expected(&input);
        let b = fk.expected(&input);
        assert_eq!(a, b);
        // The epilogue always dumps all data regs of all threads.
        assert!(a.len() >= (NUM_THREADS * u32::from(DATA_REGS)) as usize);
    }

    #[test]
    fn shrink_reaches_a_local_minimum() {
        let mut rng = XorShift::new(99);
        let fk = FuzzKernel::generate_sized(&mut rng, 16);
        // "Fails" whenever the program still contains a GlobalStore.
        let has_store = |k: &FuzzKernel| {
            fn any_store(stmts: &[Stmt]) -> bool {
                stmts.iter().any(|s| match s {
                    Stmt::GlobalStore { .. } => true,
                    Stmt::Diamond { then, els, .. } => any_store(then) || any_store(els),
                    Stmt::Loop { body, .. } => any_store(body),
                    _ => false,
                })
            }
            any_store(&k.stmts)
        };
        if !has_store(&fk) {
            return; // nothing to shrink toward in this draw
        }
        let min = fk.shrink(has_store);
        assert!(has_store(&min));
        assert_eq!(min.count_stmts(), 1, "minimal failing program is 1 stmt");
    }

    fn max_reg(stmts: &[Stmt]) -> u8 {
        let mut m = 0;
        for s in stmts {
            match s {
                Stmt::Alu { dst, a, b, c, .. } => m = m.max(*dst).max(*a).max(*b).max(*c),
                Stmt::Setp { a, b, .. } => m = m.max(*a).max(*b),
                Stmt::LdConst { dst, .. } | Stmt::GlobalLoad { dst, .. } => m = m.max(*dst),
                Stmt::GlobalStore { src, .. } => m = m.max(*src),
                Stmt::Diamond { src, then, els, .. } => {
                    m = m.max(*src).max(max_reg(then)).max(max_reg(els));
                }
                Stmt::Loop { body, .. } => m = m.max(max_reg(body)),
                Stmt::Exchange { src, dst, .. } => m = m.max(*src).max(*dst),
                Stmt::Barrier => {}
            }
        }
        m
    }

    fn count_kind(stmts: &[Stmt], f: &dyn Fn(&Stmt) -> bool) -> usize {
        stmts
            .iter()
            .map(|s| {
                let inner = match s {
                    Stmt::Diamond { then, els, .. } => count_kind(then, f) + count_kind(els, f),
                    Stmt::Loop { body, .. } => count_kind(body, f),
                    _ => 0,
                };
                usize::from(f(s)) + inner
            })
            .sum()
    }

    #[test]
    fn default_params_match_the_classic_generator() {
        // generate_sized and generate_with(default) must consume the
        // rng identically: historic repro seeds depend on it.
        let mut a = XorShift::new(0xfeed);
        let mut b = XorShift::new(0xfeed);
        for _ in 0..20 {
            let ka = FuzzKernel::generate_sized(&mut a, 24);
            let kb = FuzzKernel::generate_with(&mut b, 24, &GenParams::default());
            assert_eq!(ka, kb);
        }
        assert_eq!(a.next_u64(), b.next_u64(), "streams stayed in sync");
    }

    #[test]
    fn active_regs_caps_the_register_pool() {
        let p = GenParams {
            active_regs: 3,
            ..GenParams::default()
        };
        let mut rng = XorShift::new(11);
        for _ in 0..20 {
            let fk = FuzzKernel::generate_with(&mut rng, 32, &p);
            assert!(max_reg(&fk.stmts) < 3, "only r8..r10 in play");
            fk.build("cap").validate().expect("valid");
        }
    }

    #[test]
    fn zero_weights_disable_statement_kinds() {
        let p = GenParams {
            w_branch: 0,
            w_loop: 0,
            w_load: 0,
            w_store: 0,
            ..GenParams::default()
        };
        let mut rng = XorShift::new(12);
        for _ in 0..20 {
            let fk = FuzzKernel::generate_with(&mut rng, 32, &p);
            let control = count_kind(&fk.stmts, &|s| {
                matches!(
                    s,
                    Stmt::Diamond { .. }
                        | Stmt::Loop { .. }
                        | Stmt::GlobalLoad { .. }
                        | Stmt::GlobalStore { .. }
                )
            });
            assert_eq!(control, 0, "disabled kinds never appear");
        }
    }

    #[test]
    fn reuse_window_shortens_source_distances() {
        // With a tight reuse window, sources should mostly re-read the
        // most recent writes; measure via mean def→use gap in statement
        // order over a large draw.
        fn mean_gap(p: &GenParams, seed: u64) -> f64 {
            let mut rng = XorShift::new(seed);
            let mut sum = 0usize;
            let mut n = 0usize;
            for _ in 0..40 {
                let fk = FuzzKernel::generate_with(&mut rng, 32, p);
                let mut last = [None::<usize>; DATA_REGS as usize];
                for (i, s) in fk.stmts.iter().enumerate() {
                    if let Stmt::Alu { dst, a, b, c, .. } = s {
                        for src in [a, b, c] {
                            if let Some(d) = last[*src as usize] {
                                sum += i - d;
                                n += 1;
                            }
                        }
                        last[*dst as usize] = Some(i);
                    }
                }
            }
            sum as f64 / n as f64
        }
        let near = GenParams {
            reuse_window: 2,
            ..GenParams::default()
        };
        let far = GenParams::default();
        assert!(
            mean_gap(&near, 77) < mean_gap(&far, 77),
            "reuse window shortens operand distances"
        );
    }

    #[test]
    fn clamping_keeps_degenerate_params_generating() {
        let p = GenParams {
            active_regs: 0,
            reuse_window: 1,
            branch_depth: 9,
            loop_depth: 9,
            w_alu: 0,
            w_setp: 0,
            w_ldconst: 0,
            w_load: 0,
            w_store: 0,
            w_branch: 0,
            w_loop: 0,
            w_exchange: 0,
            w_barrier: 0,
        };
        let mut rng = XorShift::new(13);
        let fk = FuzzKernel::generate_with(&mut rng, 8, &p);
        assert!(!fk.stmts.is_empty());
        fk.build("degenerate").validate().expect("valid");
    }

    #[test]
    fn scrub_preserves_semantics_and_reaches_a_fixpoint() {
        let mut rng = XorShift::new(0x5c2b);
        for _ in 0..100 {
            let fk = FuzzKernel::generate_sized(&mut rng, 24);
            let input = FuzzKernel::gen_input(&mut rng);
            let scrubbed = fk.scrub();
            assert!(
                scrubbed.count_stmts() <= fk.count_stmts(),
                "scrubbing never grows the program"
            );
            assert_eq!(
                fk.expected(&input),
                scrubbed.expected(&input),
                "dead-code elimination is semantics-preserving"
            );
            assert_eq!(scrubbed.scrub(), scrubbed, "scrub is idempotent");
            scrubbed.build("scrubbed").validate().expect("valid");
        }
    }

    #[test]
    fn pruned_build_only_drops_prologue_code() {
        let mut rng = XorShift::new(0x9127);
        for _ in 0..50 {
            let fk = FuzzKernel::generate_sized(&mut rng, 24).scrub();
            let full = fk.build("k");
            let pruned = fk.build_pruned("k");
            pruned.validate().expect("pruned kernel validates");
            assert!(
                pruned.insts.len() <= full.insts.len(),
                "pruning never grows the kernel"
            );
            // The body and epilogue are untouched: the pruned program is
            // a suffix-preserving subsequence of the full lowering.
            let mut full_it = full.insts.iter();
            for inst in &pruned.insts {
                assert!(
                    full_it.any(|f| f.op == inst.op),
                    "pruned stream stays a subsequence (lost {:?})",
                    inst.op
                );
            }
        }
    }

    #[test]
    fn exchange_swaps_values_between_partners() {
        let fk = FuzzKernel {
            stmts: vec![Stmt::Exchange {
                src: 0,
                dst: 1,
                xor: 1,
                slot: 0,
            }],
        };
        let input = vec![0u32; NUM_THREADS as usize];
        let out = fk.expected(&input);
        // Thread 0's r9 (dst=1) must hold thread 1's r8 seed.
        let t1_r8 = 1u32.wrapping_mul(3).wrapping_add(seed_const(0));
        let t0_r9 = out
            .iter()
            .find(|(a, _)| *a == u64::from(OUT_BASE) + 4)
            .expect("epilogue word")
            .1;
        assert_eq!(t0_r9, t1_r8);
    }
}
