//! A fluent builder for constructing kernels programmatically.

use crate::error::KernelError;
use crate::inst::{Dst, Instruction, MemRef, PredGuard, WritebackHint};
use crate::kernel::Kernel;
use crate::opcode::{CmpOp, Opcode};
use crate::operand::{Operand, Special};
use crate::reg::{Pred, Reg};
use std::collections::HashMap;

/// Builds a [`Kernel`] incrementally, resolving symbolic labels to
/// instruction indices at [`build`](KernelBuilder::build) time.
///
/// The builder is the main programmatic entry point: the workload suite uses
/// it for every kernel. Each emitter appends one instruction and returns
/// `self` for chaining. `num_regs` and `param_words` are inferred from the
/// instructions unless set explicitly.
///
/// # Example
///
/// ```
/// use bow_isa::{KernelBuilder, Reg, Operand, CmpOp, Pred};
/// let r = Reg::r;
/// let k = KernelBuilder::new("count")
///     .mov_imm(r(0), 0)
///     .label("loop")
///     .iadd(r(0), r(0).into(), Operand::Imm(1))
///     .isetp(CmpOp::Lt, Pred::p(0), r(0).into(), Operand::Imm(10))
///     .bra_if(Pred::p(0), false, "loop")
///     .exit()
///     .build()?;
/// assert_eq!(k.num_regs, 1);
/// # Ok::<(), bow_isa::KernelError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<Instruction>,
    labels: HashMap<String, usize>,
    pending_targets: Vec<(usize, String)>,
    shared_bytes: u32,
    num_regs: Option<u16>,
    param_words: Option<u16>,
    guard_next: Option<PredGuard>,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            pending_targets: Vec::new(),
            shared_bytes: 0,
            num_regs: None,
            param_words: None,
            guard_next: None,
        }
    }

    /// Declares the shared-memory bytes each block allocates.
    pub fn shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Overrides the inferred per-thread register count.
    pub fn num_regs(mut self, n: u16) -> Self {
        self.num_regs = Some(n);
        self
    }

    /// Overrides the inferred parameter-word count.
    pub fn param_words(mut self, n: u16) -> Self {
        self.param_words = Some(n);
        self
    }

    /// Binds a label to the next emitted instruction.
    pub fn label(mut self, name: impl Into<String>) -> Self {
        self.labels.insert(name.into(), self.insts.len());
        self
    }

    /// Guards the *next* emitted instruction with `@p` (or `@!p`).
    pub fn guard(mut self, pred: Pred, negated: bool) -> Self {
        self.guard_next = Some(PredGuard { pred, negated });
        self
    }

    fn push(mut self, mut inst: Instruction) -> Self {
        if let Some(g) = self.guard_next.take() {
            inst.guard = Some(g);
        }
        self.insts.push(inst);
        self
    }

    /// Emits a raw, fully-formed instruction.
    pub fn raw(self, inst: Instruction) -> Self {
        self.push(inst)
    }

    // ----- data movement -----

    /// `mov d, src`.
    pub fn mov(self, d: Reg, src: Operand) -> Self {
        self.push(Instruction::new(Opcode::Mov, Dst::Reg(d), vec![src]))
    }

    /// `mov d, imm`.
    pub fn mov_imm(self, d: Reg, imm: u32) -> Self {
        self.mov(d, Operand::Imm(imm))
    }

    /// `s2r d, %special`.
    pub fn s2r(self, d: Reg, sp: Special) -> Self {
        self.push(Instruction::new(
            Opcode::S2R,
            Dst::Reg(d),
            vec![Operand::Special(sp)],
        ))
    }

    /// `sel d, a, b, p` — `d = p ? a : b`.
    pub fn sel(self, d: Reg, a: Operand, b: Operand, p: Pred) -> Self {
        self.push(Instruction::new(
            Opcode::Sel,
            Dst::Reg(d),
            vec![a, b, Operand::Pred(p)],
        ))
    }

    // ----- integer -----

    /// `iadd d, a, b`.
    pub fn iadd(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::IAdd, Dst::Reg(d), vec![a, b]))
    }

    /// `isub d, a, b`.
    pub fn isub(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::ISub, Dst::Reg(d), vec![a, b]))
    }

    /// `imul d, a, b`.
    pub fn imul(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::IMul, Dst::Reg(d), vec![a, b]))
    }

    /// `imad d, a, b, c` — `d = a*b + c`.
    pub fn imad(self, d: Reg, a: Operand, b: Operand, c: Operand) -> Self {
        self.push(Instruction::new(Opcode::IMad, Dst::Reg(d), vec![a, b, c]))
    }

    /// `imin d, a, b`.
    pub fn imin(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::IMin, Dst::Reg(d), vec![a, b]))
    }

    /// `imax d, a, b`.
    pub fn imax(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::IMax, Dst::Reg(d), vec![a, b]))
    }

    /// `iabs d, a`.
    pub fn iabs(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::IAbs, Dst::Reg(d), vec![a]))
    }

    /// `isad d, a, b, c` — `d = |a-b| + c`.
    pub fn isad(self, d: Reg, a: Operand, b: Operand, c: Operand) -> Self {
        self.push(Instruction::new(Opcode::ISad, Dst::Reg(d), vec![a, b, c]))
    }

    // ----- logic & shift -----

    /// `and d, a, b`.
    pub fn and(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::And, Dst::Reg(d), vec![a, b]))
    }

    /// `or d, a, b`.
    pub fn or(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::Or, Dst::Reg(d), vec![a, b]))
    }

    /// `xor d, a, b`.
    pub fn xor(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::Xor, Dst::Reg(d), vec![a, b]))
    }

    /// `not d, a`.
    pub fn not(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::Not, Dst::Reg(d), vec![a]))
    }

    /// `shl d, a, b`.
    pub fn shl(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::Shl, Dst::Reg(d), vec![a, b]))
    }

    /// `shr d, a, b` (logical).
    pub fn shr(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::Shr, Dst::Reg(d), vec![a, b]))
    }

    /// `sar d, a, b` (arithmetic).
    pub fn sar(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::Sar, Dst::Reg(d), vec![a, b]))
    }

    // ----- float -----

    /// `fadd d, a, b`.
    pub fn fadd(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::FAdd, Dst::Reg(d), vec![a, b]))
    }

    /// `fsub d, a, b`.
    pub fn fsub(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::FSub, Dst::Reg(d), vec![a, b]))
    }

    /// `fmul d, a, b`.
    pub fn fmul(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::FMul, Dst::Reg(d), vec![a, b]))
    }

    /// `ffma d, a, b, c` — `d = a*b + c`.
    pub fn ffma(self, d: Reg, a: Operand, b: Operand, c: Operand) -> Self {
        self.push(Instruction::new(Opcode::FFma, Dst::Reg(d), vec![a, b, c]))
    }

    /// `fmin d, a, b`.
    pub fn fmin(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::FMin, Dst::Reg(d), vec![a, b]))
    }

    /// `fmax d, a, b`.
    pub fn fmax(self, d: Reg, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(Opcode::FMax, Dst::Reg(d), vec![a, b]))
    }

    /// `frcp d, a`.
    pub fn frcp(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::FRcp, Dst::Reg(d), vec![a]))
    }

    /// `fsqrt d, a`.
    pub fn fsqrt(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::FSqrt, Dst::Reg(d), vec![a]))
    }

    /// `flog2 d, a`.
    pub fn flog2(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::FLog2, Dst::Reg(d), vec![a]))
    }

    /// `fexp2 d, a`.
    pub fn fexp2(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::FExp2, Dst::Reg(d), vec![a]))
    }

    /// `i2f d, a`.
    pub fn i2f(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::I2F, Dst::Reg(d), vec![a]))
    }

    /// `f2i d, a`.
    pub fn f2i(self, d: Reg, a: Operand) -> Self {
        self.push(Instruction::new(Opcode::F2I, Dst::Reg(d), vec![a]))
    }

    // ----- compares -----

    /// `isetp.<op> p, a, b`.
    pub fn isetp(self, op: CmpOp, p: Pred, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(
            Opcode::ISetp(op),
            Dst::Pred(p),
            vec![a, b],
        ))
    }

    /// `fsetp.<op> p, a, b`.
    pub fn fsetp(self, op: CmpOp, p: Pred, a: Operand, b: Operand) -> Self {
        self.push(Instruction::new(
            Opcode::FSetp(op),
            Dst::Pred(p),
            vec![a, b],
        ))
    }

    // ----- memory -----

    /// `ldg d, [base+off]` — global load.
    pub fn ldg(self, d: Reg, base: Reg, off: i32) -> Self {
        let mut i = Instruction::new(Opcode::Ldg, Dst::Reg(d), vec![]);
        i.mem = Some(MemRef { base, offset: off });
        self.push(i)
    }

    /// `stg [base+off], v` — global store.
    pub fn stg(self, base: Reg, off: i32, v: Operand) -> Self {
        let mut i = Instruction::new(Opcode::Stg, Dst::None, vec![v]);
        i.mem = Some(MemRef { base, offset: off });
        self.push(i)
    }

    /// `lds d, [base+off]` — shared-memory load.
    pub fn lds(self, d: Reg, base: Reg, off: i32) -> Self {
        let mut i = Instruction::new(Opcode::Lds, Dst::Reg(d), vec![]);
        i.mem = Some(MemRef { base, offset: off });
        self.push(i)
    }

    /// `sts [base+off], v` — shared-memory store.
    pub fn sts(self, base: Reg, off: i32, v: Operand) -> Self {
        let mut i = Instruction::new(Opcode::Sts, Dst::None, vec![v]);
        i.mem = Some(MemRef { base, offset: off });
        self.push(i)
    }

    /// `ldc d, c[byte_off]` — kernel-parameter load.
    pub fn ldc(self, d: Reg, byte_off: i32) -> Self {
        let mut i = Instruction::new(Opcode::Ldc, Dst::Reg(d), vec![]);
        i.mem = Some(MemRef {
            base: Reg::RZ,
            offset: byte_off,
        });
        self.push(i)
    }

    // ----- control -----

    /// Unconditional `bra label`.
    pub fn bra(mut self, label: impl Into<String>) -> Self {
        let pc = self.insts.len();
        self.pending_targets.push((pc, label.into()));
        self.push(Instruction::new(Opcode::Bra, Dst::None, vec![]))
    }

    /// Guarded `@p bra label` (or `@!p` when `negated`).
    pub fn bra_if(mut self, pred: Pred, negated: bool, label: impl Into<String>) -> Self {
        let pc = self.insts.len();
        self.pending_targets.push((pc, label.into()));
        let mut i = Instruction::new(Opcode::Bra, Dst::None, vec![]);
        i.guard = Some(PredGuard { pred, negated });
        self.push(i)
    }

    /// `ssy label` — push the reconvergence point for the divergent region
    /// that follows.
    pub fn ssy(mut self, label: impl Into<String>) -> Self {
        let pc = self.insts.len();
        self.pending_targets.push((pc, label.into()));
        self.push(Instruction::new(Opcode::Ssy, Dst::None, vec![]))
    }

    /// `sync` — reconverge with the innermost `ssy`.
    pub fn sync(self) -> Self {
        self.push(Instruction::new(Opcode::Sync, Dst::None, vec![]))
    }

    /// `bssy bN, label` — arm convergence barrier `bar` for the divergent
    /// region whose reconvergence point is `label` (stack-less model).
    pub fn bssy(mut self, bar: u8, label: impl Into<String>) -> Self {
        let pc = self.insts.len();
        self.pending_targets.push((pc, label.into()));
        self.push(Instruction::new(
            Opcode::Bssy,
            Dst::None,
            vec![Operand::Imm(u32::from(bar))],
        ))
    }

    /// `bsync bN` — wait on convergence barrier `bar` and reconverge.
    pub fn bsync(self, bar: u8) -> Self {
        self.push(Instruction::new(
            Opcode::Bsync,
            Dst::None,
            vec![Operand::Imm(u32::from(bar))],
        ))
    }

    /// `bar` — block-wide barrier.
    pub fn bar(self) -> Self {
        self.push(Instruction::new(Opcode::Bar, Dst::None, vec![]))
    }

    /// `exit`.
    pub fn exit(self) -> Self {
        self.push(Instruction::new(Opcode::Exit, Dst::None, vec![]))
    }

    /// `nop`.
    pub fn nop(self) -> Self {
        self.push(Instruction::new(Opcode::Nop, Dst::None, vec![]))
    }

    /// Sets the write-back hint on the most recently emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been emitted yet.
    pub fn hint(mut self, hint: WritebackHint) -> Self {
        self.insts
            .last_mut()
            .expect("hint() requires a previously emitted instruction")
            .hint = hint;
        self
    }

    /// Resolves labels, infers resource counts and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if a label is undefined or validation fails.
    pub fn build(mut self) -> Result<Kernel, KernelError> {
        for (pc, label) in std::mem::take(&mut self.pending_targets) {
            let Some(&t) = self.labels.get(&label) else {
                return Err(KernelError::Instruction {
                    kernel: self.name.clone(),
                    pc,
                    msg: format!("undefined label `{label}`"),
                });
            };
            self.insts[pc].target = Some(t);
        }
        let inferred_regs = self
            .insts
            .iter()
            .flat_map(|i| i.src_regs().into_iter().chain(i.dst_reg()))
            .map(|r| u16::from(r.index()) + 1)
            .max()
            .unwrap_or(0);
        let inferred_params = self
            .insts
            .iter()
            .filter(|i| i.op == Opcode::Ldc)
            .filter_map(|i| i.mem.map(|m| (m.offset / 4 + 1) as u16))
            .max()
            .unwrap_or(0);
        let kernel = Kernel {
            name: self.name,
            insts: self.insts,
            num_regs: self.num_regs.unwrap_or(inferred_regs),
            shared_bytes: self.shared_bytes,
            param_words: self.param_words.unwrap_or(inferred_params),
            ctrl: Vec::new(),
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let r = Reg::r;
        let k = KernelBuilder::new("labels")
            .bra("end")
            .label("back")
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .bra("back")
            .label("end")
            .exit()
            .build()
            .unwrap();
        assert_eq!(k.insts[0].target, Some(3));
        assert_eq!(k.insts[2].target, Some(1));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let err = KernelBuilder::new("bad")
            .bra("nowhere")
            .exit()
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("undefined label"));
    }

    #[test]
    fn resources_are_inferred() {
        let r = Reg::r;
        let k = KernelBuilder::new("inferred")
            .ldc(r(9), 12)
            .iadd(r(3), r(9).into(), Operand::Imm(1))
            .exit()
            .build()
            .unwrap();
        assert_eq!(k.num_regs, 10); // r9 is the highest register
        assert_eq!(k.param_words, 4); // c[12] => params 0..=3
    }

    #[test]
    fn guard_applies_to_next_instruction_only() {
        let r = Reg::r;
        let k = KernelBuilder::new("guarded")
            .guard(Pred::p(0), false)
            .mov_imm(r(0), 1)
            .mov_imm(r(1), 2)
            .exit()
            .build()
            .unwrap();
        assert!(k.insts[0].guard.is_some());
        assert!(k.insts[1].guard.is_none());
    }

    #[test]
    fn hint_tags_last_instruction() {
        let r = Reg::r;
        let k = KernelBuilder::new("hinted")
            .mov_imm(r(0), 1)
            .hint(WritebackHint::BocOnly)
            .exit()
            .build()
            .unwrap();
        assert_eq!(k.insts[0].hint, WritebackHint::BocOnly);
    }

    #[test]
    fn built_kernels_are_valid() {
        let r = Reg::r;
        let k = KernelBuilder::new("all")
            .s2r(r(0), Special::TidX)
            .ldc(r(1), 0)
            .shl(r(2), r(0).into(), Operand::Imm(2))
            .iadd(r(1), r(1).into(), r(2).into())
            .ldg(r(3), r(1), 0)
            .ffma(r(3), r(3).into(), Operand::fimm(2.0), Operand::fimm(1.0))
            .stg(r(1), 0, r(3).into())
            .exit()
            .build()
            .unwrap();
        assert!(k.validate().is_ok());
        assert_eq!(k.len(), 8);
    }
}
