//! Per-instruction control bits for compiler-scheduled dependences.
//!
//! Post-Volta NVIDIA cores drop the hardware scoreboard for fixed-latency
//! producers and instead read dependence information the compiler embeds
//! in every instruction (see "Analyzing Modern NVIDIA GPU cores",
//! arXiv 2503.20481): a *stall count* delaying the next issue from the
//! same warp, a *write barrier* and *read barrier* the instruction sets,
//! and a *wait mask* of barriers that must clear before it may issue.
//!
//! The BOW model keeps these out of [`Instruction`](crate::Instruction)
//! itself — Pascal kernels never carry them — and stores them as a
//! sidecar vector on [`Kernel`](crate::Kernel), one [`CtrlBits`] per
//! instruction. An empty sidecar means "unannotated": the modern core
//! then falls back to a conservative interlock, so control bits are a
//! timing optimisation, never a correctness requirement.

/// Number of dependence barriers each warp tracks (matches the six
/// scoreboard slots of real Volta-and-later hardware).
pub const NUM_BARRIERS: u8 = 6;

/// Maximum stall count the 6-bit hardware field can express.
pub const MAX_STALL: u8 = 63;

/// Compiler-emitted control bits for one instruction.
///
/// `stall` delays the *next* instruction of the same warp by that many
/// cycles after this one issues — it covers fixed-latency producers.
/// Variable-latency producers (memory) instead set `wr_bar`, which their
/// consumers name in `wait_mask`; `rd_bar` protects the producer's source
/// operands against a later overwrite (WAR) and clears at dispatch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct CtrlBits {
    /// Cycles the warp's next issue is held after this instruction issues
    /// (0 ..= [`MAX_STALL`]).
    pub stall: u8,
    /// Write barrier this instruction sets, released at write-back.
    pub wr_bar: Option<u8>,
    /// Read barrier this instruction sets, released when its operands are
    /// dispatched (source registers are safe to overwrite).
    pub rd_bar: Option<u8>,
    /// Barriers (bit *i* = barrier *i*) that must all be clear before this
    /// instruction issues.
    pub wait_mask: u8,
}

impl CtrlBits {
    /// Packs into the binary sidecar word:
    ///
    /// ```text
    ///  17..12  wait mask (6 bits)
    ///  11..9   read barrier (7 = none)
    ///   8..6   write barrier (7 = none)
    ///   5..0   stall count
    /// ```
    pub fn pack(self) -> u32 {
        let wr = u32::from(self.wr_bar.unwrap_or(7)) & 0b111;
        let rd = u32::from(self.rd_bar.unwrap_or(7)) & 0b111;
        u32::from(self.stall & 0x3f)
            | (wr << 6)
            | (rd << 9)
            | (u32::from(self.wait_mask & 0x3f) << 12)
    }

    /// Inverse of [`CtrlBits::pack`]. Out-of-range barrier indices decode
    /// to "none", matching the hardware's reserved encoding.
    pub fn unpack(word: u32) -> CtrlBits {
        let bar = |v: u32| {
            let v = (v & 0b111) as u8;
            (v < NUM_BARRIERS).then_some(v)
        };
        CtrlBits {
            stall: (word & 0x3f) as u8,
            wr_bar: bar(word >> 6),
            rd_bar: bar(word >> 9),
            wait_mask: ((word >> 12) & 0x3f) as u8,
        }
    }

    /// Checks the field ranges the packed format can represent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.stall > MAX_STALL {
            return Err(format!("stall count {} exceeds {MAX_STALL}", self.stall));
        }
        for (name, bar) in [("write", self.wr_bar), ("read", self.rd_bar)] {
            if let Some(b) = bar {
                if b >= NUM_BARRIERS {
                    return Err(format!("{name} barrier {b} out of range"));
                }
            }
        }
        if self.wait_mask >= 1 << NUM_BARRIERS {
            return Err(format!(
                "wait mask {:#x} uses unknown barriers",
                self.wait_mask
            ));
        }
        Ok(())
    }

    /// Whether the bits request nothing (the all-defaults encoding).
    pub fn is_empty(&self) -> bool {
        *self == CtrlBits::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for stall in [0u8, 1, 17, 63] {
            for wr in [None, Some(0), Some(5)] {
                for rd in [None, Some(2)] {
                    for wait_mask in [0u8, 0b1, 0b101010, 0b111111] {
                        let c = CtrlBits {
                            stall,
                            wr_bar: wr,
                            rd_bar: rd,
                            wait_mask,
                        };
                        assert_eq!(CtrlBits::unpack(c.pack()), c, "{c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn default_packs_to_none_barriers() {
        let d = CtrlBits::default();
        assert!(d.is_empty());
        // stall 0, both barriers 7 (none), empty wait mask.
        assert_eq!(d.pack(), (0b111 << 6) | (0b111 << 9));
    }

    #[test]
    fn validate_catches_ranges() {
        assert!(CtrlBits::default().validate().is_ok());
        let bad = CtrlBits {
            stall: 64,
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("stall"));
        let bad = CtrlBits {
            wr_bar: Some(6),
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("barrier"));
        let bad = CtrlBits {
            wait_mask: 0b1000000,
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("wait mask"));
    }

    #[test]
    fn reserved_barrier_unpacks_to_none() {
        // Barrier field 6 is out of range and must read back as "none".
        let word = 6 << 6 | 6 << 9;
        let c = CtrlBits::unpack(word);
        assert_eq!(c.wr_bar, None);
        assert_eq!(c.rd_bar, None);
    }
}
