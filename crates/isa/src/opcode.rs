//! Opcodes, comparison operators and functional-unit classes.

use std::fmt;

/// Comparison operator used by `isetp` / `fsetp`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Assembler suffix (`eq`, `ne`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parses the assembler suffix.
    pub fn from_suffix(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }

    /// Evaluates the comparison on signed integers.
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on floats (IEEE semantics: comparisons with
    /// NaN are false except `Ne`).
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Functional-unit class an opcode executes on; determines pipeline latency
/// in the timing model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Simple integer/logic ALU operation.
    Alu,
    /// Multiply / multiply-add (integer or float) — slightly deeper pipe.
    Mul,
    /// Special-function unit (reciprocal, sqrt, transcendental).
    Sfu,
    /// Load/store unit; latency comes from the memory model.
    Mem,
    /// Control (branches, barriers, exit) — handled by the front-end.
    Ctrl,
}

/// The operation an [`Instruction`](crate::Instruction) performs.
///
/// Opcodes are grouped to mirror SASS: integer ALU, float ALU, fused
/// multiply-add forms, special-function ops, conversions, data movement,
/// predicate-setting compares, memory and control flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    // --- integer ---
    /// `d = a + b` (wrapping).
    IAdd,
    /// `d = a - b` (wrapping).
    ISub,
    /// `d = a * b` (wrapping, low 32 bits).
    IMul,
    /// `d = a * b + c` (wrapping) — the 3-source integer workhorse.
    IMad,
    /// `d = min(a, b)` signed.
    IMin,
    /// `d = max(a, b)` signed.
    IMax,
    /// `d = |a|` signed.
    IAbs,
    /// `d = |a - b| + c` — sum of absolute differences (SASS `VABSDIFF`/SAD).
    ISad,
    // --- logic & shift ---
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not of the single source.
    Not,
    /// Logical shift left by `b & 31`.
    Shl,
    /// Logical shift right by `b & 31`.
    Shr,
    /// Arithmetic shift right by `b & 31`.
    Sar,
    // --- float ---
    /// `d = a + b`.
    FAdd,
    /// `d = a - b`.
    FSub,
    /// `d = a * b`.
    FMul,
    /// `d = a * b + c` fused multiply-add.
    FFma,
    /// `d = min(a, b)`.
    FMin,
    /// `d = max(a, b)`.
    FMax,
    // --- SFU ---
    /// `d = 1 / a`.
    FRcp,
    /// `d = sqrt(a)`.
    FSqrt,
    /// `d = log2(a)`.
    FLog2,
    /// `d = 2^a`.
    FExp2,
    // --- conversion ---
    /// Signed int to float.
    I2F,
    /// Float to signed int (truncating).
    F2I,
    // --- movement / select ---
    /// `d = a` (register, immediate or predicate-as-value source).
    Mov,
    /// `d = p ? a : b` where `p` is a predicate source.
    Sel,
    /// Read a special hardware register.
    S2R,
    // --- compares (write a predicate) ---
    /// Integer compare, writes predicate destination.
    ISetp(CmpOp),
    /// Float compare, writes predicate destination.
    FSetp(CmpOp),
    // --- memory ---
    /// Global load: `d = mem[base + offset]`.
    Ldg,
    /// Global store: `mem[base + offset] = src`.
    Stg,
    /// Shared-memory load.
    Lds,
    /// Shared-memory store.
    Sts,
    /// Constant/parameter load: `d = params[offset/4]`.
    Ldc,
    // --- control ---
    /// Branch to the instruction-index target (optionally guarded).
    Bra,
    /// Push the reconvergence point for a potentially divergent region.
    Ssy,
    /// Reconverge with the stack entry pushed by the matching `ssy`.
    Sync,
    /// Block-wide barrier (`bar.sync`).
    Bar,
    /// Terminate the thread (warp exits when all threads have).
    Exit,
    /// No operation.
    Nop,
    // --- convergence barriers (post-Volta stack-less divergence) ---
    /// Arm convergence barrier `bN` with the current active mask and record
    /// the reconvergence point (the target). The barrier-model analogue of
    /// [`Ssy`](Opcode::Ssy); the barrier id is an immediate source operand.
    Bssy,
    /// Wait on convergence barrier `bN` until every participating thread
    /// arrives, then reconverge. The barrier-model analogue of
    /// [`Sync`](Opcode::Sync).
    Bsync,
}

impl Opcode {
    /// The functional-unit class this opcode executes on.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            IAdd | ISub | IMin | IMax | IAbs | And | Or | Xor | Not | Shl | Shr | Sar | FAdd
            | FSub | FMin | FMax | I2F | F2I | Mov | Sel | S2R | ISetp(_) | FSetp(_) => {
                FuClass::Alu
            }
            IMul | IMad | ISad | FMul | FFma => FuClass::Mul,
            FRcp | FSqrt | FLog2 | FExp2 => FuClass::Sfu,
            Ldg | Stg | Lds | Sts | Ldc => FuClass::Mem,
            Bra | Ssy | Sync | Bar | Exit | Nop | Bssy | Bsync => FuClass::Ctrl,
        }
    }

    /// Whether the opcode accesses a memory space (the paper's
    /// "memory instruction" class in Fig. 4).
    pub fn is_memory(self) -> bool {
        self.fu_class() == FuClass::Mem
    }

    /// Whether the opcode is a control-flow / pipeline-control instruction.
    pub fn is_control(self) -> bool {
        self.fu_class() == FuClass::Ctrl
    }

    /// Whether the opcode writes a general-purpose destination register.
    pub fn writes_reg(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Stg | Sts | Bra | Ssy | Sync | Bar | Exit | Nop | Bssy | Bsync | ISetp(_) | FSetp(_)
        )
    }

    /// Whether the opcode writes a predicate destination.
    pub fn writes_pred(self) -> bool {
        matches!(self, Opcode::ISetp(_) | Opcode::FSetp(_))
    }

    /// Number of *data* source operands the opcode expects (excluding the
    /// memory base register, which lives in the instruction's [`MemRef`]).
    ///
    /// [`MemRef`]: crate::inst::MemRef
    pub fn arity(self) -> usize {
        use Opcode::*;
        match self {
            IMad | ISad | FFma | Sel => 3,
            IAdd | ISub | IMul | IMin | IMax | And | Or | Xor | Shl | Shr | Sar | FAdd | FSub
            | FMul | FMin | FMax | ISetp(_) | FSetp(_) => 2,
            IAbs | Not | FRcp | FSqrt | FLog2 | FExp2 | I2F | F2I | Mov | S2R | Stg | Sts
            | Bssy | Bsync => 1,
            Ldg | Lds | Ldc | Bra | Ssy | Sync | Bar | Exit | Nop => 0,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> String {
        use Opcode::*;
        match self {
            IAdd => "iadd".into(),
            ISub => "isub".into(),
            IMul => "imul".into(),
            IMad => "imad".into(),
            IMin => "imin".into(),
            IMax => "imax".into(),
            IAbs => "iabs".into(),
            ISad => "isad".into(),
            And => "and".into(),
            Or => "or".into(),
            Xor => "xor".into(),
            Not => "not".into(),
            Shl => "shl".into(),
            Shr => "shr".into(),
            Sar => "sar".into(),
            FAdd => "fadd".into(),
            FSub => "fsub".into(),
            FMul => "fmul".into(),
            FFma => "ffma".into(),
            FMin => "fmin".into(),
            FMax => "fmax".into(),
            FRcp => "frcp".into(),
            FSqrt => "fsqrt".into(),
            FLog2 => "flog2".into(),
            FExp2 => "fexp2".into(),
            I2F => "i2f".into(),
            F2I => "f2i".into(),
            Mov => "mov".into(),
            Sel => "sel".into(),
            S2R => "s2r".into(),
            ISetp(c) => format!("isetp.{}", c.suffix()),
            FSetp(c) => format!("fsetp.{}", c.suffix()),
            Ldg => "ldg".into(),
            Stg => "stg".into(),
            Lds => "lds".into(),
            Sts => "sts".into(),
            Ldc => "ldc".into(),
            Bra => "bra".into(),
            Ssy => "ssy".into(),
            Sync => "sync".into(),
            Bar => "bar".into(),
            Exit => "exit".into(),
            Nop => "nop".into(),
            Bssy => "bssy".into(),
            Bsync => "bsync".into(),
        }
    }

    /// Parses an assembler mnemonic (the inverse of [`Opcode::mnemonic`]).
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        use Opcode::*;
        if let Some(rest) = s.strip_prefix("isetp.") {
            return CmpOp::from_suffix(rest).map(ISetp);
        }
        if let Some(rest) = s.strip_prefix("fsetp.") {
            return CmpOp::from_suffix(rest).map(FSetp);
        }
        Some(match s {
            "iadd" => IAdd,
            "isub" => ISub,
            "imul" => IMul,
            "imad" => IMad,
            "imin" => IMin,
            "imax" => IMax,
            "iabs" => IAbs,
            "isad" => ISad,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "not" => Not,
            "shl" => Shl,
            "shr" => Shr,
            "sar" => Sar,
            "fadd" => FAdd,
            "fsub" => FSub,
            "fmul" => FMul,
            "ffma" => FFma,
            "fmin" => FMin,
            "fmax" => FMax,
            "frcp" => FRcp,
            "fsqrt" => FSqrt,
            "flog2" => FLog2,
            "fexp2" => FExp2,
            "i2f" => I2F,
            "f2i" => F2I,
            "mov" => Mov,
            "sel" => Sel,
            "s2r" => S2R,
            "ldg" => Ldg,
            "stg" => Stg,
            "lds" => Lds,
            "sts" => Sts,
            "ldc" => Ldc,
            "bra" => Bra,
            "ssy" => Ssy,
            "sync" => Sync,
            "bar" => Bar,
            "exit" => Exit,
            "nop" => Nop,
            "bssy" => Bssy,
            "bsync" => Bsync,
            _ => return None,
        })
    }

    /// Every opcode, for exhaustive tests.
    pub fn all() -> Vec<Opcode> {
        use Opcode::*;
        let mut v = vec![
            IAdd, ISub, IMul, IMad, IMin, IMax, IAbs, ISad, And, Or, Xor, Not, Shl, Shr, Sar, FAdd,
            FSub, FMul, FFma, FMin, FMax, FRcp, FSqrt, FLog2, FExp2, I2F, F2I, Mov, Sel, S2R, Ldg,
            Stg, Lds, Sts, Ldc, Bra, Ssy, Sync, Bar, Exit, Nop,
        ];
        for c in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            v.push(ISetp(c));
            v.push(FSetp(c));
        }
        // Appended after the setp block so the binary opcode ids of every
        // pre-existing opcode (id = position in this list) stay stable.
        v.push(Bssy);
        v.push(Bsync);
        v
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip_for_all_opcodes() {
        for op in Opcode::all() {
            assert_eq!(
                Opcode::from_mnemonic(&op.mnemonic()),
                Some(op),
                "roundtrip failed for {op}"
            );
        }
    }

    #[test]
    fn arity_is_bounded_by_max_operands() {
        for op in Opcode::all() {
            assert!(op.arity() <= crate::MAX_SRC_OPERANDS);
        }
    }

    #[test]
    fn classes_are_consistent() {
        assert!(Opcode::Ldg.is_memory());
        assert!(Opcode::Stg.is_memory());
        assert!(!Opcode::IAdd.is_memory());
        assert!(Opcode::Bra.is_control());
        assert!(Opcode::ISetp(CmpOp::Ne).writes_pred());
        assert!(!Opcode::ISetp(CmpOp::Ne).writes_reg());
        assert!(Opcode::Ldg.writes_reg());
        assert!(!Opcode::Stg.writes_reg());
    }

    #[test]
    fn cmp_eval_matches_rust_semantics() {
        assert!(CmpOp::Lt.eval_i32(-1, 0));
        assert!(!CmpOp::Lt.eval_i32(0, -1));
        assert!(CmpOp::Ne.eval_f32(f32::NAN, 1.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
        assert!(CmpOp::Ge.eval_i32(3, 3));
    }

    #[test]
    fn fu_classes_cover_latency_model() {
        assert_eq!(Opcode::IAdd.fu_class(), FuClass::Alu);
        assert_eq!(Opcode::FFma.fu_class(), FuClass::Mul);
        assert_eq!(Opcode::FSqrt.fu_class(), FuClass::Sfu);
        assert_eq!(Opcode::Lds.fu_class(), FuClass::Mem);
        assert_eq!(Opcode::Exit.fu_class(), FuClass::Ctrl);
    }
}
