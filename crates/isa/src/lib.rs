//! # bow-isa — the instruction set of the BOW GPU model
//!
//! This crate defines a small SASS-like GPU instruction set used throughout
//! the BOW reproduction: typed registers and predicates, an opcode set with
//! up to three register sources and one destination per instruction (the
//! constraint the paper's operand collectors are sized for), kernels, a
//! fluent [`KernelBuilder`], and a text [assembler](crate::asm) /
//! disassembler pair.
//!
//! The ISA is *functional*: every opcode has well-defined semantics over
//! 32-bit register values, so kernels written in it can be executed for real
//! by `bow-sim` and their outputs checked against host references.
//!
//! ## Example
//!
//! ```
//! use bow_isa::{KernelBuilder, Reg, Operand};
//!
//! // d[i] = a + b  for one warp's worth of threads
//! let r = Reg::r;
//! let k = KernelBuilder::new("add_const")
//!     .s2r(r(0), bow_isa::Special::TidX)
//!     .mov_imm(r(1), 7)
//!     .iadd(r(2), Operand::Reg(r(0)), Operand::Reg(r(1)))
//!     .exit()
//!     .build()
//!     .unwrap();
//! assert_eq!(k.insts.len(), 4);
//! ```

pub mod asm;
pub mod builder;
pub mod ctrl;
pub mod encode;
pub mod error;
pub mod fuzz;
pub mod inst;
pub mod kernel;
pub mod opcode;
pub mod operand;
pub mod reg;

pub use builder::KernelBuilder;
pub use ctrl::CtrlBits;
pub use encode::{decode_kernel, encode_kernel, DecodeError};
pub use error::{AsmError, KernelError};
pub use fuzz::FuzzKernel;
pub use inst::{Dst, Instruction, MemRef, PredGuard, WritebackHint};
pub use kernel::{Kernel, KernelDims};
pub use opcode::{CmpOp, FuClass, Opcode};
pub use operand::{Operand, Special};
pub use reg::{Pred, Reg};

/// Maximum number of register source operands a single instruction may carry.
///
/// NVIDIA SASS instructions read at most three register sources (e.g. FFMA);
/// the paper's operand collectors provide exactly three source entries and
/// BOW's bypassing operand collectors reserve `3 + 1` entries per windowed
/// instruction. The whole pipeline model relies on this bound.
pub const MAX_SRC_OPERANDS: usize = 3;

/// Number of threads in a warp (NVIDIA lock-step SIMT width).
pub const WARP_SIZE: usize = 32;

/// Number of per-warp convergence-barrier registers (`b0..b7`) available to
/// the stack-less divergence model's `bssy`/`bsync` instructions. Volta
/// exposes 16; 8 covers every nesting depth the compiler's barrier-placement
/// pass can produce for kernels within this ISA's branch-structure limits
/// and keeps the id inside a 3-bit immediate.
pub const NUM_CBARS: usize = 8;
