//! Architectural register and predicate-register newtypes.

use std::fmt;

/// An architectural 32-bit general-purpose register, `R0`..`R254`.
///
/// Index 255 is the hardwired zero register [`Reg::RZ`]: it reads as zero and
/// writes to it are discarded, mirroring SASS's `RZ`. The register file model
/// never allocates storage for it and the bypass window never tracks it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const RZ: Reg = Reg(255);

    /// Highest index usable as a real (allocatable) register.
    pub const MAX_INDEX: u8 = 254;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 255, which is reserved for [`Reg::RZ`]; construct
    /// that one through the constant so the intent is visible at the call
    /// site.
    pub fn r(index: u8) -> Reg {
        assert!(
            index <= Self::MAX_INDEX,
            "register index 255 is reserved for RZ"
        );
        Reg(index)
    }

    /// Creates a register from its index, returning `None` for the reserved
    /// RZ encoding.
    pub fn try_new(index: u8) -> Option<Reg> {
        (index <= Self::MAX_INDEX).then_some(Reg(index))
    }

    /// The register's index within the architectural register space.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self == Self::RZ
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "rz")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

/// A 1-bit predicate register, `P0`..`P6`.
///
/// Index 7 is the hardwired true predicate [`Pred::PT`] (SASS `PT`): it reads
/// as `true` and writes to it are discarded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(u8);

impl Pred {
    /// The hardwired always-true predicate.
    pub const PT: Pred = Pred(7);

    /// Highest index usable as a real predicate register.
    pub const MAX_INDEX: u8 = 6;

    /// Creates a predicate register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 7 or larger; 7 is reserved for [`Pred::PT`].
    pub fn p(index: u8) -> Pred {
        assert!(
            index <= Self::MAX_INDEX,
            "predicate index 7 is reserved for PT"
        );
        Pred(index)
    }

    /// Creates a predicate register, returning `None` for the PT encoding.
    pub fn try_new(index: u8) -> Option<Pred> {
        (index <= Self::MAX_INDEX).then_some(Pred(index))
    }

    /// The predicate's index.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired true predicate.
    pub fn is_true_reg(self) -> bool {
        self == Self::PT
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true_reg() {
            write!(f, "pt")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pred({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        let r = Reg::r(13);
        assert_eq!(r.index(), 13);
        assert_eq!(r.to_string(), "r13");
        assert!(!r.is_zero());
        assert_eq!(Reg::RZ.to_string(), "rz");
        assert!(Reg::RZ.is_zero());
    }

    #[test]
    fn reg_try_new_rejects_rz_encoding() {
        assert_eq!(Reg::try_new(255), None);
        assert_eq!(Reg::try_new(254), Some(Reg::r(254)));
    }

    #[test]
    #[should_panic(expected = "reserved for RZ")]
    fn reg_new_panics_on_reserved_index() {
        let _ = Reg::r(255);
    }

    #[test]
    fn pred_roundtrip_and_display() {
        let p = Pred::p(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "p3");
        assert_eq!(Pred::PT.to_string(), "pt");
        assert!(Pred::PT.is_true_reg());
    }

    #[test]
    fn pred_try_new_rejects_pt_encoding() {
        assert_eq!(Pred::try_new(7), None);
        assert!(Pred::try_new(6).is_some());
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(Reg::r(2) < Reg::r(10));
        assert!(Reg::r(200) < Reg::RZ);
        assert!(Pred::p(0) < Pred::PT);
    }
}
