//! Kernels: a validated list of instructions plus resource requirements.

use crate::ctrl::CtrlBits;
use crate::error::KernelError;
use crate::inst::Instruction;
use crate::opcode::Opcode;
use std::fmt;

/// Launch geometry for a kernel: grid and block dimensions (x, y).
///
/// The model supports 2-D grids and blocks, which covers every workload in
/// the suite; a z dimension would be a mechanical extension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KernelDims {
    /// Blocks in the grid (x, y).
    pub grid: (u32, u32),
    /// Threads per block (x, y). The product must be a multiple of the warp
    /// size for full warps; partial warps are padded with inactive lanes.
    pub block: (u32, u32),
}

impl KernelDims {
    /// A 1-D launch with `grid_x` blocks of `block_x` threads.
    pub fn linear(grid_x: u32, block_x: u32) -> KernelDims {
        KernelDims {
            grid: (grid_x, 1),
            block: (block_x, 1),
        }
    }

    /// Total number of threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }

    /// Total number of blocks.
    pub fn total_blocks(&self) -> u32 {
        self.grid.0 * self.grid.1
    }

    /// Warps per block (rounding partial warps up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(crate::WARP_SIZE as u32)
    }
}

impl Default for KernelDims {
    fn default() -> Self {
        KernelDims::linear(1, crate::WARP_SIZE as u32)
    }
}

/// A GPU kernel: instructions plus the resources a block needs.
#[derive(Clone, PartialEq, Debug)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// The instruction stream; branch targets index into this vector.
    pub insts: Vec<Instruction>,
    /// Number of architectural registers each thread uses (`r0..r{n-1}`).
    pub num_regs: u16,
    /// Shared memory bytes each block allocates.
    pub shared_bytes: u32,
    /// Number of 32-bit kernel parameters (`c[0]`, `c[4]`, ... by byte
    /// offset).
    pub param_words: u16,
    /// Per-instruction control bits for the modern (post-Volta) core:
    /// either empty (unannotated — the modern core falls back to a
    /// conservative interlock) or exactly one entry per instruction.
    /// Pascal cores ignore this entirely.
    pub ctrl: Vec<CtrlBits>,
}

impl Kernel {
    /// Validates every instruction and the kernel-level invariants:
    /// branch targets in range, register indices below `num_regs`, `ldc`
    /// offsets inside the parameter block, and termination reachability
    /// (at least one `exit`).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant with its instruction index.
    pub fn validate(&self) -> Result<(), KernelError> {
        if self.insts.is_empty() {
            return Err(KernelError::Empty {
                kernel: self.name.clone(),
            });
        }
        let mut has_exit = false;
        for (pc, inst) in self.insts.iter().enumerate() {
            inst.validate().map_err(|msg| KernelError::Instruction {
                kernel: self.name.clone(),
                pc,
                msg,
            })?;
            if let Some(t) = inst.target {
                if t >= self.insts.len() {
                    return Err(KernelError::Instruction {
                        kernel: self.name.clone(),
                        pc,
                        msg: format!("branch target #{t} out of range"),
                    });
                }
            }
            for r in inst.src_regs().into_iter().chain(inst.dst_reg()) {
                if u16::from(r.index()) >= self.num_regs {
                    return Err(KernelError::Instruction {
                        kernel: self.name.clone(),
                        pc,
                        msg: format!("{r} exceeds declared register count {}", self.num_regs),
                    });
                }
            }
            if inst.op == Opcode::Ldc {
                let off = inst.mem.map(|m| m.offset).unwrap_or(0);
                if off < 0 || off % 4 != 0 || (off / 4) as u16 >= self.param_words {
                    return Err(KernelError::Instruction {
                        kernel: self.name.clone(),
                        pc,
                        msg: format!("ldc offset {off} outside the parameter block"),
                    });
                }
            }
            has_exit |= inst.op == Opcode::Exit;
        }
        if !has_exit {
            return Err(KernelError::NoExit {
                kernel: self.name.clone(),
            });
        }
        if !self.ctrl.is_empty() {
            if self.ctrl.len() != self.insts.len() {
                return Err(KernelError::Instruction {
                    kernel: self.name.clone(),
                    pc: self.ctrl.len().min(self.insts.len()),
                    msg: format!(
                        "control-bit sidecar has {} entries for {} instructions",
                        self.ctrl.len(),
                        self.insts.len()
                    ),
                });
            }
            for (pc, c) in self.ctrl.iter().enumerate() {
                c.validate().map_err(|msg| KernelError::Instruction {
                    kernel: self.name.clone(),
                    pc,
                    msg,
                })?;
            }
        }
        Ok(())
    }

    /// Whether the kernel reconverges through convergence barriers
    /// (`bssy`/`bsync`) rather than the SIMT stack — i.e. it was compiled
    /// for the stack-less divergence model. The simulator switches each
    /// warp's divergence bookkeeping on this.
    pub fn uses_convergence_barriers(&self) -> bool {
        self.insts
            .iter()
            .any(|i| matches!(i.op, Opcode::Bssy | Opcode::Bsync))
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the kernel has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterator over `(pc, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Instruction)> {
        self.insts.iter().enumerate()
    }

    /// Disassembles the kernel to its textual form (re-parsable by the
    /// [assembler](crate::asm)).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        writeln!(out, ".kernel {}", self.name).unwrap();
        writeln!(out, ".regs {}", self.num_regs).unwrap();
        if self.shared_bytes > 0 {
            writeln!(out, ".shared {}", self.shared_bytes).unwrap();
        }
        if self.param_words > 0 {
            writeln!(out, ".params {}", self.param_words).unwrap();
        }
        // Emit labels for every branch target.
        let mut is_target = vec![false; self.insts.len()];
        for inst in &self.insts {
            if let Some(t) = inst.target {
                is_target[t] = true;
            }
        }
        for (pc, inst) in self.iter() {
            if is_target[pc] {
                writeln!(out, "L{pc}:").unwrap();
            }
            let mut line = inst.to_string();
            if let Some(t) = inst.target {
                line = line.replace(&format!("#{t}"), &format!("L{t}"));
            }
            writeln!(out, "    {line}").unwrap();
        }
        out
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::inst::{Dst, MemRef};
    use crate::operand::Operand;
    use crate::reg::Reg;

    fn tiny() -> Kernel {
        KernelBuilder::new("tiny")
            .mov_imm(Reg::r(0), 1)
            .iadd(Reg::r(1), Reg::r(0).into(), Operand::Imm(2))
            .exit()
            .build()
            .unwrap()
    }

    #[test]
    fn valid_kernel_passes() {
        assert!(tiny().validate().is_ok());
        assert_eq!(tiny().len(), 3);
    }

    #[test]
    fn missing_exit_is_rejected() {
        let mut k = tiny();
        k.insts.pop();
        assert!(matches!(k.validate(), Err(KernelError::NoExit { .. })));
    }

    #[test]
    fn out_of_range_register_is_rejected() {
        let mut k = tiny();
        k.num_regs = 1;
        let err = k.validate().unwrap_err();
        assert!(err.to_string().contains("exceeds declared register count"));
    }

    #[test]
    fn out_of_range_branch_target_is_rejected() {
        let mut k = tiny();
        let mut bra = Instruction::new(Opcode::Bra, Dst::None, vec![]);
        bra.target = Some(99);
        k.insts.insert(0, bra);
        let err = k.validate().unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn bad_ldc_offset_is_rejected() {
        let mut k = tiny();
        let mut ldc = Instruction::new(Opcode::Ldc, Dst::Reg(Reg::r(0)), vec![]);
        ldc.mem = Some(MemRef {
            base: Reg::RZ,
            offset: 4,
        });
        k.insts.insert(0, ldc);
        // param_words is 0, so offset 4 is outside the block.
        let err = k.validate().unwrap_err();
        assert!(err.to_string().contains("parameter block"));
    }

    #[test]
    fn dims_arithmetic() {
        let d = KernelDims {
            grid: (4, 2),
            block: (48, 1),
        };
        assert_eq!(d.total_blocks(), 8);
        assert_eq!(d.threads_per_block(), 48);
        assert_eq!(d.warps_per_block(), 2); // 48 threads -> 1.5 warps -> 2
    }

    #[test]
    fn disassemble_contains_all_instructions() {
        let text = tiny().disassemble();
        assert!(text.contains(".kernel tiny"));
        assert!(text.contains("mov r0, 1"));
        assert!(text.contains("exit"));
    }
}
