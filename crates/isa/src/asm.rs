//! A small text assembler for the BOW ISA.
//!
//! The accepted syntax mirrors the disassembler's output so that
//! `parse_kernel(kernel.disassemble())` round-trips:
//!
//! ```text
//! .kernel saxpy
//! .regs 8            // optional, inferred when omitted
//! .shared 1024       // optional
//! .params 4          // optional
//!     s2r   r0, %tid.x
//!     ldc   r1, c[0]
//!     shl   r2, r0, 2
//!     iadd  r1, r1, r2
//!     ldg   r3, [r1]
//!     ffma  r3, r3, 2.0, 1.0
//!     stg   [r1], r3 .wb.rf
//! L7:
//!     exit
//! ```
//!
//! Comments start with `//` or `#` and run to end of line. Labels are
//! `name:` on their own line or before an instruction. Guards are `@p0` /
//! `@!p0` prefixes. A trailing `.wb.rf` / `.wb.boc` / `.wb.both` sets the
//! write-back hint.

use crate::error::AsmError;
use crate::inst::{Dst, Instruction, MemRef, PredGuard, WritebackHint};
use crate::kernel::Kernel;
use crate::opcode::Opcode;
use crate::operand::{Operand, Special};
use crate::reg::{Pred, Reg};
use std::collections::HashMap;

/// Parses the textual form of a kernel.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based line number of the first
/// syntax problem, or a wrapped validation failure for structurally invalid
/// kernels.
pub fn parse_kernel(text: &str) -> Result<Kernel, AsmError> {
    parse_kernel_lines(text).map(|(k, _)| k)
}

/// Like [`parse_kernel`] but also returns, per instruction, the 1-based
/// source line it came from — the span table diagnostics render with
/// (`bow-cli lint` points at your `.s` line, not a raw pc).
///
/// # Errors
///
/// Same failure modes as [`parse_kernel`].
pub fn parse_kernel_lines(text: &str) -> Result<(Kernel, Vec<usize>), AsmError> {
    let mut name = String::from("anonymous");
    let mut num_regs: Option<u16> = None;
    let mut param_words: Option<u16> = None;
    let mut shared_bytes = 0u32;
    let mut insts: Vec<Instruction> = Vec::new();
    let mut lines: Vec<usize> = Vec::new(); // 1-based source line per pc
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (pc, label, line)

    for (lineno0, raw_line) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let mut line = raw_line;
        if let Some(i) = line.find("//") {
            line = &line[..i];
        }
        if let Some(i) = line.find('#') {
            // `#` only starts a comment when not part of a `#N` raw target.
            if !line[i..].starts_with("#")
                || !line[i + 1..].starts_with(|c: char| c.is_ascii_digit())
            {
                line = &line[..i];
            }
        }
        let mut line = line.trim();
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let dir = it.next().unwrap_or("");
            let arg = it.next();
            match dir {
                "kernel" => {
                    name = arg
                        .ok_or_else(|| AsmError::new(lineno, ".kernel needs a name"))?
                        .to_string();
                }
                "regs" => {
                    num_regs = Some(parse_num(arg, lineno, ".regs")? as u16);
                }
                "params" => {
                    param_words = Some(parse_num(arg, lineno, ".params")? as u16);
                }
                "shared" => {
                    shared_bytes = parse_num(arg, lineno, ".shared")? as u32;
                }
                _ => return Err(AsmError::new(lineno, format!("unknown directive .{dir}"))),
            }
            continue;
        }

        // Leading labels (possibly several) before an instruction.
        while let Some(colon) = line.find(':') {
            let (lbl, rest) = line.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty() || lbl.contains(char::is_whitespace) {
                break;
            }
            labels.insert(lbl.to_string(), insts.len());
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }

        let inst = parse_instruction(line, lineno, insts.len(), &mut fixups)?;
        insts.push(inst);
        lines.push(lineno);
    }

    for (pc, label, lineno) in fixups {
        let Some(&t) = labels.get(&label) else {
            return Err(AsmError::new(lineno, format!("undefined label `{label}`")));
        };
        insts[pc].target = Some(t);
    }

    let inferred_regs = insts
        .iter()
        .flat_map(|i| i.src_regs().into_iter().chain(i.dst_reg()))
        .map(|r| u16::from(r.index()) + 1)
        .max()
        .unwrap_or(0);
    let inferred_params = insts
        .iter()
        .filter(|i| i.op == Opcode::Ldc)
        .filter_map(|i| i.mem.map(|m| (m.offset / 4 + 1) as u16))
        .max()
        .unwrap_or(0);

    let kernel = Kernel {
        name,
        insts,
        num_regs: num_regs.unwrap_or(inferred_regs),
        shared_bytes,
        param_words: param_words.unwrap_or(inferred_params),
        // Control bits are a binary-only sidecar; the text format never
        // carries them.
        ctrl: Vec::new(),
    };
    kernel
        .validate()
        .map_err(|e| AsmError::new(0, e.to_string()))?;
    Ok((kernel, lines))
}

fn parse_num(arg: Option<&str>, lineno: usize, what: &str) -> Result<u64, AsmError> {
    let a = arg.ok_or_else(|| AsmError::new(lineno, format!("{what} needs a number")))?;
    a.parse()
        .map_err(|_| AsmError::new(lineno, format!("{what}: `{a}` is not a number")))
}

fn parse_instruction(
    line: &str,
    lineno: usize,
    pc: usize,
    fixups: &mut Vec<(usize, String, usize)>,
) -> Result<Instruction, AsmError> {
    let mut rest = line;

    // Guard.
    let mut guard = None;
    if let Some(g) = rest.strip_prefix('@') {
        let negated = g.starts_with('!');
        let g = g.strip_prefix('!').unwrap_or(g);
        let end = g
            .find(char::is_whitespace)
            .ok_or_else(|| AsmError::new(lineno, "guard with no instruction"))?;
        let pred = parse_pred(&g[..end], lineno)?;
        guard = Some(PredGuard { pred, negated });
        rest = g[end..].trim_start();
    }

    // Write-back hint suffix.
    let mut hint = WritebackHint::Both;
    for (suffix, h) in [
        (".wb.boc", WritebackHint::BocOnly),
        (".wb.rf", WritebackHint::RfOnly),
        (".wb.both", WritebackHint::Both),
    ] {
        if let Some(stripped) = rest.strip_suffix(suffix) {
            hint = h;
            rest = stripped.trim_end();
            break;
        }
    }

    let (mn, ops_str) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    let op = Opcode::from_mnemonic(mn)
        .ok_or_else(|| AsmError::new(lineno, format!("unknown opcode `{mn}`")))?;

    let tokens = split_operands(ops_str);
    let mut inst = Instruction::new(op, Dst::None, vec![]);
    inst.guard = guard;
    inst.hint = hint;

    use Opcode::*;
    let expect = |n: usize| -> Result<(), AsmError> {
        if tokens.len() != n {
            Err(AsmError::new(
                lineno,
                format!("{mn}: expected {n} operand(s), got {}", tokens.len()),
            ))
        } else {
            Ok(())
        }
    };

    match op {
        Bra | Ssy => {
            expect(1)?;
            if let Some(t) = tokens[0].strip_prefix('#') {
                inst.target = Some(
                    t.parse()
                        .map_err(|_| AsmError::new(lineno, format!("bad raw target `{t}`")))?,
                );
            } else {
                fixups.push((pc, tokens[0].clone(), lineno));
                inst.target = Some(usize::MAX); // placeholder until fixup
            }
        }
        Bssy => {
            expect(2)?;
            inst.srcs.push(parse_cbar(&tokens[0], lineno)?);
            if let Some(t) = tokens[1].strip_prefix('#') {
                inst.target = Some(
                    t.parse()
                        .map_err(|_| AsmError::new(lineno, format!("bad raw target `{t}`")))?,
                );
            } else {
                fixups.push((pc, tokens[1].clone(), lineno));
                inst.target = Some(usize::MAX); // placeholder until fixup
            }
        }
        Bsync => {
            expect(1)?;
            inst.srcs.push(parse_cbar(&tokens[0], lineno)?);
        }
        Sync | Bar | Exit | Nop => expect(0)?,
        Ldg | Lds => {
            expect(2)?;
            inst.dst = Dst::Reg(parse_reg(&tokens[0], lineno)?);
            inst.mem = Some(parse_memref(&tokens[1], lineno)?);
        }
        Stg | Sts => {
            expect(2)?;
            inst.mem = Some(parse_memref(&tokens[0], lineno)?);
            inst.srcs.push(parse_operand(&tokens[1], lineno)?);
        }
        Ldc => {
            expect(2)?;
            inst.dst = Dst::Reg(parse_reg(&tokens[0], lineno)?);
            let t = &tokens[1];
            let off = t
                .strip_prefix("c[")
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| AsmError::new(lineno, format!("ldc: bad constant ref `{t}`")))?;
            inst.mem = Some(MemRef {
                base: Reg::RZ,
                offset: off
                    .parse()
                    .map_err(|_| AsmError::new(lineno, format!("ldc: bad offset `{off}`")))?,
            });
        }
        ISetp(_) | FSetp(_) => {
            expect(3)?;
            inst.dst = Dst::Pred(parse_pred(&tokens[0], lineno)?);
            inst.srcs.push(parse_operand(&tokens[1], lineno)?);
            inst.srcs.push(parse_operand(&tokens[2], lineno)?);
        }
        _ => {
            // Register-destination data instruction: dst then `arity` sources.
            expect(1 + op.arity())?;
            inst.dst = Dst::Reg(parse_reg(&tokens[0], lineno)?);
            for t in &tokens[1..] {
                inst.srcs.push(parse_operand(t, lineno)?);
            }
        }
    }

    // Branches were given a placeholder target; let per-instruction
    // validation run after fixups (kernel validation covers it).
    if inst.target != Some(usize::MAX) {
        inst.validate().map_err(|msg| AsmError::new(lineno, msg))?;
    }
    Ok(inst)
}

fn split_operands(s: &str) -> Vec<String> {
    // Commas inside `[...]` don't occur in this ISA, so a plain split works.
    s.split(',')
        .map(|t| t.trim().to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

fn parse_cbar(t: &str, lineno: usize) -> Result<Operand, AsmError> {
    // Accepts the SASS-style `b1` the disassembler emits and a bare number.
    let digits = t.strip_prefix(['b', 'B']).unwrap_or(t);
    digits
        .parse::<u32>()
        .ok()
        .filter(|&b| (b as usize) < crate::NUM_CBARS)
        .map(Operand::Imm)
        .ok_or_else(|| AsmError::new(lineno, format!("bad convergence barrier `{t}`")))
}

fn parse_reg(t: &str, lineno: usize) -> Result<Reg, AsmError> {
    if t.eq_ignore_ascii_case("rz") {
        return Ok(Reg::RZ);
    }
    t.strip_prefix(['r', 'R'])
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Reg::try_new)
        .ok_or_else(|| AsmError::new(lineno, format!("bad register `{t}`")))
}

fn parse_pred(t: &str, lineno: usize) -> Result<Pred, AsmError> {
    if t.eq_ignore_ascii_case("pt") {
        return Ok(Pred::PT);
    }
    t.strip_prefix(['p', 'P'])
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(Pred::try_new)
        .ok_or_else(|| AsmError::new(lineno, format!("bad predicate `{t}`")))
}

fn parse_memref(t: &str, lineno: usize) -> Result<MemRef, AsmError> {
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(lineno, format!("bad memory reference `{t}`")))?;
    let (base_s, off) = if let Some(i) = inner.find('+') {
        let off: i32 = inner[i + 1..]
            .trim()
            .parse()
            .map_err(|_| AsmError::new(lineno, format!("bad offset in `{t}`")))?;
        (&inner[..i], off)
    } else if let Some(i) = inner.rfind('-') {
        if i == 0 {
            (inner, 0)
        } else {
            let off: i32 = inner[i + 1..]
                .trim()
                .parse()
                .map_err(|_| AsmError::new(lineno, format!("bad offset in `{t}`")))?;
            (&inner[..i], -off)
        }
    } else {
        (inner, 0)
    };
    Ok(MemRef {
        base: parse_reg(base_s.trim(), lineno)?,
        offset: off,
    })
}

fn parse_operand(t: &str, lineno: usize) -> Result<Operand, AsmError> {
    if let Some(sp) = t.strip_prefix('%') {
        return Special::from_mnemonic(sp)
            .map(Operand::Special)
            .ok_or_else(|| AsmError::new(lineno, format!("unknown special register `{t}`")));
    }
    if t.eq_ignore_ascii_case("rz") || t.starts_with(['r', 'R']) && t[1..].parse::<u8>().is_ok() {
        return parse_reg(t, lineno).map(Operand::Reg);
    }
    if t.eq_ignore_ascii_case("pt") || t.starts_with(['p', 'P']) && t[1..].parse::<u8>().is_ok() {
        return parse_pred(t, lineno).map(Operand::Pred);
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16)
            .map(Operand::Imm)
            .map_err(|_| AsmError::new(lineno, format!("bad hex immediate `{t}`")));
    }
    if t.contains('.') || t.contains("e-") || t.contains("e+") {
        if let Ok(f) = t.parse::<f32>() {
            return Ok(Operand::fimm(f));
        }
    }
    if let Ok(v) = t.parse::<i64>() {
        if (i32::MIN as i64..=u32::MAX as i64).contains(&v) {
            return Ok(Operand::Imm(v as u32));
        }
    }
    Err(AsmError::new(lineno, format!("cannot parse operand `{t}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::CmpOp;

    const SAXPY: &str = r#"
        .kernel saxpy
        // y[i] = a*x[i] + y[i]
        .params 4
            s2r   r0, %tid.x
            s2r   r1, %ctaid.x
            s2r   r2, %ntid.x
            imad  r0, r1, r2, r0
            shl   r3, r0, 2
            ldc   r4, c[0]
            iadd  r4, r4, r3
            ldg   r5, [r4]
            ldc   r6, c[4]
            iadd  r6, r6, r3
            ldg   r7, [r6]
            ldc   r8, c[8]
            ffma  r5, r5, r8, r7
            stg   [r6], r5
            exit
    "#;

    #[test]
    fn parses_a_full_kernel() {
        let k = parse_kernel(SAXPY).unwrap();
        assert_eq!(k.name, "saxpy");
        assert_eq!(k.len(), 15);
        assert_eq!(k.num_regs, 9);
        assert_eq!(k.param_words, 4);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn disassembly_roundtrips() {
        let k = parse_kernel(SAXPY).unwrap();
        let again = parse_kernel(&k.disassemble()).unwrap();
        assert_eq!(k, again);
    }

    #[test]
    fn labels_and_guards() {
        let text = r#"
            .kernel loopy
                mov r0, 0
            top:
                iadd r0, r0, 1
                isetp.lt p0, r0, 10
                @p0 bra top
                @!p0 mov r1, r0
                exit
        "#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.insts[3].target, Some(1));
        assert!(!k.insts[3].guard.unwrap().negated);
        assert!(k.insts[4].guard.unwrap().negated);
        assert_eq!(k.insts[2].op, Opcode::ISetp(CmpOp::Lt));
    }

    #[test]
    fn writeback_hints_parse() {
        let text = r#"
            .kernel hints
                mov r0, 1 .wb.boc
                mov r1, 2 .wb.rf
                mov r2, 3
                exit
        "#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.insts[0].hint, WritebackHint::BocOnly);
        assert_eq!(k.insts[1].hint, WritebackHint::RfOnly);
        assert_eq!(k.insts[2].hint, WritebackHint::Both);
    }

    #[test]
    fn memref_offsets() {
        let text = r#"
            .kernel mems
                ldg r1, [r0+64]
                ldg r2, [r0-4]
                stg [r0], r1
                exit
        "#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.insts[0].mem.unwrap().offset, 64);
        assert_eq!(k.insts[1].mem.unwrap().offset, -4);
        assert_eq!(k.insts[2].mem.unwrap().offset, 0);
    }

    #[test]
    fn float_and_hex_immediates() {
        let text = r#"
            .kernel imms
                mov r0, 0xff
                fmul r1, r0, 1.5
                exit
        "#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.insts[0].srcs[0], Operand::Imm(255));
        assert_eq!(k.insts[1].srcs[1], Operand::Imm(1.5f32.to_bits()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_kernel(".kernel x\n    bogus r0, r1\n    exit").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unknown opcode"));

        let err = parse_kernel(".kernel x\n    bra nowhere\n    exit").unwrap_err();
        assert!(err.msg.contains("undefined label"));
    }

    #[test]
    fn line_table_tracks_instruction_sources() {
        let (k, lines) = parse_kernel_lines(SAXPY).unwrap();
        assert_eq!(lines.len(), k.len());
        // SAXPY's first instruction (s2r) sits on line 5 of the raw string.
        assert_eq!(lines[0], 5);
        // Lines are strictly increasing: one instruction per source line.
        assert!(lines.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(lines[14], 19, "exit is the last instruction");
    }

    #[test]
    fn rz_and_pt_parse() {
        let text = r#"
            .kernel zeros
                iadd r0, rz, 1
                sel r1, r0, rz, pt
                exit
        "#;
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.insts[0].srcs[0], Operand::Reg(Reg::RZ));
        assert_eq!(k.insts[1].srcs[2], Operand::Pred(Pred::PT));
    }
}
