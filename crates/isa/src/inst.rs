//! Instructions: destination kinds, memory references, predicate guards and
//! the compiler-facing write-back hint.

use crate::opcode::Opcode;
use crate::operand::Operand;
use crate::reg::{Pred, Reg};
use std::fmt;

/// Compiler-assigned write-back destination for a computed value (§IV-B).
///
/// BOW-WR encodes this with two bits in every instruction that has a
/// destination register: one enables the write to the bypassing operand
/// collector (BOC), the other enables the write-back to the register file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WritebackHint {
    /// Write to the BOC; write back to the RF on window eviction if still
    /// dirty. The default (un-annotated) behaviour of BOW-WR.
    #[default]
    Both,
    /// The value is not reused inside the instruction window: write it
    /// straight to the register file and skip the BOC entry.
    RfOnly,
    /// The value is *transient* — consumed entirely within the window — so
    /// it never needs a register-file write (or even an RF allocation).
    BocOnly,
}

impl WritebackHint {
    /// Whether the value should be placed in the bypass buffer.
    pub fn to_boc(self) -> bool {
        matches!(self, WritebackHint::Both | WritebackHint::BocOnly)
    }

    /// Whether the value must (eventually) reach the register file.
    pub fn to_rf(self) -> bool {
        matches!(self, WritebackHint::Both | WritebackHint::RfOnly)
    }

    /// The two-bit hardware encoding `(boc_enable, rf_enable)`.
    pub fn encode(self) -> (bool, bool) {
        (self.to_boc(), self.to_rf())
    }

    /// Decodes the two-bit encoding; `(false, false)` is not a meaningful
    /// hint (a value that goes nowhere) and decodes to `None`.
    pub fn decode(boc: bool, rf: bool) -> Option<WritebackHint> {
        match (boc, rf) {
            (true, true) => Some(WritebackHint::Both),
            (false, true) => Some(WritebackHint::RfOnly),
            (true, false) => Some(WritebackHint::BocOnly),
            (false, false) => None,
        }
    }
}

impl fmt::Display for WritebackHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WritebackHint::Both => "both",
            WritebackHint::RfOnly => "rf",
            WritebackHint::BocOnly => "boc",
        })
    }
}

/// The destination of an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Dst {
    /// No destination (stores, control flow).
    #[default]
    None,
    /// A general-purpose register.
    Reg(Reg),
    /// A predicate register (`isetp`/`fsetp`).
    Pred(Pred),
}

impl Dst {
    /// The destination register, if any (RZ writes are discarded and
    /// reported as `None`).
    pub fn reg(self) -> Option<Reg> {
        match self {
            Dst::Reg(r) if !r.is_zero() => Some(r),
            _ => None,
        }
    }

    /// The destination predicate, if any (PT writes are discarded).
    pub fn pred(self) -> Option<Pred> {
        match self {
            Dst::Pred(p) if !p.is_true_reg() => Some(p),
            _ => None,
        }
    }
}

/// A `[base + offset]` memory reference used by loads and stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Register holding the per-thread base address.
    pub base: Reg,
    /// Signed byte offset added to the base.
    pub offset: i32,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else if self.offset < 0 {
            write!(f, "[{}-{}]", self.base, -(self.offset as i64))
        } else {
            write!(f, "[{}+{}]", self.base, self.offset)
        }
    }
}

/// An `@p` / `@!p` guard that predicates an instruction per thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredGuard {
    /// The predicate register consulted.
    pub pred: Pred,
    /// If true the guard is `@!p` (execute where the predicate is false).
    pub negated: bool,
}

impl fmt::Display for PredGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// One machine instruction.
///
/// Construct instructions through [`KernelBuilder`](crate::KernelBuilder) or
/// the [assembler](crate::asm); direct construction is possible but
/// [`Instruction::validate`] should then be called (the kernel-level
/// validator does so for every instruction).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instruction {
    /// The operation.
    pub op: Opcode,
    /// Optional per-thread predicate guard.
    pub guard: Option<PredGuard>,
    /// Destination register or predicate.
    pub dst: Dst,
    /// Data source operands (at most [`MAX_SRC_OPERANDS`]).
    ///
    /// [`MAX_SRC_OPERANDS`]: crate::MAX_SRC_OPERANDS
    pub srcs: Vec<Operand>,
    /// Memory reference for loads/stores (`None` otherwise). For `ldc` the
    /// base is ignored and `offset` indexes the kernel parameter block.
    pub mem: Option<MemRef>,
    /// Branch / SSY target as an instruction index within the kernel.
    pub target: Option<usize>,
    /// Compiler-assigned write-back destination (meaningful only for
    /// instructions with a register destination; BOW-WR consumes it).
    pub hint: WritebackHint,
}

impl Instruction {
    /// Creates an instruction with no guard, no memory reference, no target
    /// and the default write-back hint.
    pub fn new(op: Opcode, dst: Dst, srcs: Vec<Operand>) -> Instruction {
        Instruction {
            op,
            guard: None,
            dst,
            srcs,
            mem: None,
            target: None,
            hint: WritebackHint::default(),
        }
    }

    /// All general-purpose registers this instruction *reads*: data sources,
    /// the memory base register, and nothing else. RZ never appears.
    ///
    /// This is the set the operand collectors must fetch and therefore the
    /// set the bypass statistics count.
    pub fn src_regs(&self) -> Vec<Reg> {
        let mut v: Vec<Reg> = self.srcs.iter().filter_map(|o| o.reg()).collect();
        if let Some(m) = self.mem {
            if self.op != Opcode::Ldc && !m.base.is_zero() {
                v.push(m.base);
            }
        }
        v
    }

    /// Like [`src_regs`](Self::src_regs) but with duplicates removed,
    /// preserving first-occurrence order. An instruction reading `r2 * r2`
    /// occupies one collector entry and performs one RF read, not two.
    pub fn unique_src_regs(&self) -> Vec<Reg> {
        let mut v = self.src_regs();
        let mut seen = [false; 256];
        v.retain(|r| {
            let s = seen[r.index() as usize];
            seen[r.index() as usize] = true;
            !s
        });
        v
    }

    /// The general-purpose register this instruction writes, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        self.dst.reg()
    }

    /// Predicate registers read: the guard plus any predicate data source.
    pub fn src_preds(&self) -> Vec<Pred> {
        let mut v = Vec::new();
        if let Some(g) = self.guard {
            if !g.pred.is_true_reg() {
                v.push(g.pred);
            }
        }
        for o in &self.srcs {
            if let Operand::Pred(p) = o {
                if !p.is_true_reg() {
                    v.push(*p);
                }
            }
        }
        v
    }

    /// Checks the structural invariants: operand count matches the opcode's
    /// arity, memory ops carry a [`MemRef`], branches carry a target, and
    /// destination kind matches what the opcode produces.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        use Opcode::*;
        if self.srcs.len() != self.op.arity() {
            return Err(format!(
                "{}: expected {} source operands, got {}",
                self.op,
                self.op.arity(),
                self.srcs.len()
            ));
        }
        if self.srcs.len() > crate::MAX_SRC_OPERANDS {
            return Err(format!("{}: more than 3 source operands", self.op));
        }
        let needs_mem = matches!(self.op, Ldg | Stg | Lds | Sts | Ldc);
        if needs_mem != self.mem.is_some() {
            return Err(format!(
                "{}: memory reference {}",
                self.op,
                if needs_mem { "missing" } else { "unexpected" }
            ));
        }
        let needs_target = matches!(self.op, Bra | Ssy | Bssy);
        if needs_target && self.target.is_none() {
            return Err(format!("{}: missing branch target", self.op));
        }
        if !needs_target && self.target.is_some() {
            return Err(format!("{}: unexpected branch target", self.op));
        }
        match self.dst {
            Dst::Reg(_) if !self.op.writes_reg() => {
                return Err(format!("{}: cannot write a register", self.op))
            }
            Dst::Pred(_) if !self.op.writes_pred() => {
                return Err(format!("{}: cannot write a predicate", self.op))
            }
            Dst::None if self.op.writes_reg() || self.op.writes_pred() => {
                return Err(format!("{}: missing destination", self.op))
            }
            _ => {}
        }
        if self.op == S2R && !matches!(self.srcs[0], Operand::Special(_)) {
            return Err("s2r: source must be a special register".into());
        }
        if matches!(self.op, Bssy | Bsync) {
            match self.srcs[0] {
                Operand::Imm(b) if (b as usize) < crate::NUM_CBARS => {}
                Operand::Imm(b) => {
                    return Err(format!(
                        "{}: barrier id {b} exceeds b{}",
                        self.op,
                        crate::NUM_CBARS - 1
                    ))
                }
                _ => return Err(format!("{}: barrier id must be an immediate", self.op)),
            }
        }
        if self.op == Sel && !matches!(self.srcs[2], Operand::Pred(_)) {
            return Err("sel: third source must be a predicate".into());
        }
        Ok(())
    }

    /// Number of collector entries the instruction's sources occupy
    /// (unique register sources only) — the quantity Fig. 8 histograms.
    pub fn rf_read_count(&self) -> usize {
        self.unique_src_regs().len()
    }

    /// The convergence-barrier id a `bssy`/`bsync` names, `None` for every
    /// other opcode (the id rides in the immediate source operand).
    pub fn cbar(&self) -> Option<u8> {
        if !matches!(self.op, Opcode::Bssy | Opcode::Bsync) {
            return None;
        }
        match self.srcs.first() {
            Some(&Operand::Imm(b)) => Some(b as u8),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.op)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if std::mem::take(&mut first) {
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        match self.dst {
            Dst::None => {}
            Dst::Reg(r) => {
                sep(f)?;
                write!(f, "{r}")?;
            }
            Dst::Pred(p) => {
                sep(f)?;
                write!(f, "{p}")?;
            }
        }
        // Stores print the memory reference before the value, loads after
        // the destination, matching conventional assembly order.
        if matches!(self.op, Opcode::Ldg | Opcode::Lds) {
            if let Some(m) = self.mem {
                sep(f)?;
                write!(f, "{m}")?;
            }
        }
        if self.op == Opcode::Ldc {
            if let Some(m) = self.mem {
                sep(f)?;
                write!(f, "c[{}]", m.offset)?;
            }
        }
        if matches!(self.op, Opcode::Stg | Opcode::Sts) {
            if let Some(m) = self.mem {
                sep(f)?;
                write!(f, "{m}")?;
            }
        }
        for s in &self.srcs {
            sep(f)?;
            // Convergence-barrier ids print SASS-style (`b0..b7`) rather
            // than as bare immediates.
            if matches!(self.op, Opcode::Bssy | Opcode::Bsync) {
                if let Operand::Imm(b) = s {
                    write!(f, "b{b}")?;
                    continue;
                }
            }
            write!(f, "{s}")?;
        }
        if let Some(t) = self.target {
            sep(f)?;
            write!(f, "#{t}")?;
        }
        if self.hint != WritebackHint::Both && self.dst_reg().is_some() {
            write!(f, " .wb.{}", self.hint)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Special;

    fn iadd(d: u8, a: u8, b: u8) -> Instruction {
        Instruction::new(
            Opcode::IAdd,
            Dst::Reg(Reg::r(d)),
            vec![Operand::Reg(Reg::r(a)), Operand::Reg(Reg::r(b))],
        )
    }

    #[test]
    fn hint_encoding_roundtrip() {
        for h in [
            WritebackHint::Both,
            WritebackHint::RfOnly,
            WritebackHint::BocOnly,
        ] {
            let (b, r) = h.encode();
            assert_eq!(WritebackHint::decode(b, r), Some(h));
        }
        assert_eq!(WritebackHint::decode(false, false), None);
    }

    #[test]
    fn src_regs_includes_mem_base() {
        let mut ld = Instruction::new(Opcode::Ldg, Dst::Reg(Reg::r(5)), vec![]);
        ld.mem = Some(MemRef {
            base: Reg::r(4),
            offset: 8,
        });
        assert_eq!(ld.src_regs(), vec![Reg::r(4)]);
        assert_eq!(ld.dst_reg(), Some(Reg::r(5)));
    }

    #[test]
    fn ldc_base_is_not_an_rf_read() {
        let mut ldc = Instruction::new(Opcode::Ldc, Dst::Reg(Reg::r(5)), vec![]);
        ldc.mem = Some(MemRef {
            base: Reg::RZ,
            offset: 0,
        });
        assert!(ldc.src_regs().is_empty());
    }

    #[test]
    fn unique_src_regs_dedups() {
        let i = iadd(0, 1, 1);
        assert_eq!(i.src_regs().len(), 2);
        assert_eq!(i.unique_src_regs(), vec![Reg::r(1)]);
        assert_eq!(i.rf_read_count(), 1);
    }

    #[test]
    fn validate_checks_arity() {
        let mut i = iadd(0, 1, 2);
        assert!(i.validate().is_ok());
        i.srcs.pop();
        assert!(i.validate().unwrap_err().contains("source operands"));
    }

    #[test]
    fn validate_checks_memref_and_target() {
        let ld = Instruction::new(Opcode::Ldg, Dst::Reg(Reg::r(1)), vec![]);
        assert!(ld.validate().unwrap_err().contains("memory reference"));

        let bra = Instruction::new(Opcode::Bra, Dst::None, vec![]);
        assert!(bra.validate().unwrap_err().contains("branch target"));

        let mut ok = Instruction::new(Opcode::Bra, Dst::None, vec![]);
        ok.target = Some(3);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_checks_dst_kind() {
        let bad = Instruction::new(
            Opcode::ISetp(crate::CmpOp::Ne),
            Dst::Reg(Reg::r(0)),
            vec![Operand::Reg(Reg::r(1)), Operand::Reg(Reg::r(2))],
        );
        assert!(bad.validate().unwrap_err().contains("register"));
    }

    #[test]
    fn rz_writes_are_discarded() {
        let i = iadd(0, 1, 2);
        assert!(i.dst_reg().is_some());
        let mut z = i.clone();
        z.dst = Dst::Reg(Reg::RZ);
        assert_eq!(z.dst_reg(), None);
    }

    #[test]
    fn display_is_readable() {
        let mut i = iadd(3, 1, 2);
        i.guard = Some(PredGuard {
            pred: Pred::p(0),
            negated: true,
        });
        assert_eq!(i.to_string(), "@!p0 iadd r3, r1, r2");

        let mut s2r = Instruction::new(
            Opcode::S2R,
            Dst::Reg(Reg::r(0)),
            vec![Operand::Special(Special::TidX)],
        );
        s2r.hint = WritebackHint::BocOnly;
        assert_eq!(s2r.to_string(), "s2r r0, %tid.x .wb.boc");
    }

    #[test]
    fn src_preds_collects_guard_and_sel() {
        let mut sel = Instruction::new(
            Opcode::Sel,
            Dst::Reg(Reg::r(0)),
            vec![
                Operand::Reg(Reg::r(1)),
                Operand::Reg(Reg::r(2)),
                Operand::Pred(Pred::p(2)),
            ],
        );
        sel.guard = Some(PredGuard {
            pred: Pred::p(1),
            negated: false,
        });
        assert_eq!(sel.src_preds(), vec![Pred::p(1), Pred::p(2)]);
    }
}
