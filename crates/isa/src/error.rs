//! Error types for kernel validation and assembly.

use std::error::Error;
use std::fmt;

/// A kernel failed structural validation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KernelError {
    /// The kernel has no instructions.
    Empty {
        /// Kernel name.
        kernel: String,
    },
    /// The kernel never executes `exit`.
    NoExit {
        /// Kernel name.
        kernel: String,
    },
    /// An instruction violated a structural invariant.
    Instruction {
        /// Kernel name.
        kernel: String,
        /// Index of the offending instruction.
        pc: usize,
        /// Description of the violation.
        msg: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Empty { kernel } => write!(f, "kernel `{kernel}` is empty"),
            KernelError::NoExit { kernel } => {
                write!(f, "kernel `{kernel}` has no exit instruction")
            }
            KernelError::Instruction { kernel, pc, msg } => {
                write!(f, "kernel `{kernel}`, instruction #{pc}: {msg}")
            }
        }
    }
}

impl Error for KernelError {}

/// The text assembler rejected its input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KernelError::Instruction {
            kernel: "k".into(),
            pc: 3,
            msg: "bad operand".into(),
        };
        assert_eq!(e.to_string(), "kernel `k`, instruction #3: bad operand");
        let a = AsmError::new(7, "unknown opcode");
        assert_eq!(a.to_string(), "line 7: unknown opcode");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KernelError>();
        assert_err::<AsmError>();
    }
}
