//! Source operands and special (hardware) registers.

use crate::reg::{Pred, Reg};
use std::fmt;

/// A special hardware register readable through `s2r`.
///
/// These mirror the PTX/SASS special registers the workloads need to locate
/// themselves within the launch grid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Special {
    /// Thread index within the block, x dimension (`%tid.x`).
    TidX,
    /// Thread index within the block, y dimension.
    TidY,
    /// Block index within the grid, x dimension (`%ctaid.x`).
    CtaidX,
    /// Block index within the grid, y dimension.
    CtaidY,
    /// Threads per block, x dimension (`%ntid.x`).
    NtidX,
    /// Threads per block, y dimension.
    NtidY,
    /// Blocks per grid, x dimension (`%nctaid.x`).
    NctaidX,
    /// Blocks per grid, y dimension.
    NctaidY,
    /// Lane index within the warp (0..31).
    LaneId,
    /// Warp index within the block.
    WarpId,
}

impl Special {
    /// All special registers, in parse order.
    pub const ALL: [Special; 10] = [
        Special::TidX,
        Special::TidY,
        Special::CtaidX,
        Special::CtaidY,
        Special::NtidX,
        Special::NtidY,
        Special::NctaidX,
        Special::NctaidY,
        Special::LaneId,
        Special::WarpId,
    ];

    /// The assembler mnemonic for this special register.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Special::TidX => "tid.x",
            Special::TidY => "tid.y",
            Special::CtaidX => "ctaid.x",
            Special::CtaidY => "ctaid.y",
            Special::NtidX => "ntid.x",
            Special::NtidY => "ntid.y",
            Special::NctaidX => "nctaid.x",
            Special::NctaidY => "nctaid.y",
            Special::LaneId => "laneid",
            Special::WarpId => "warpid",
        }
    }

    /// Parses an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Special> {
        Special::ALL.into_iter().find(|sp| sp.mnemonic() == s)
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A source operand of an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A general-purpose register. The only operand kind that touches the
    /// register file (and hence the only kind the bypass window tracks).
    Reg(Reg),
    /// A 32-bit immediate. Float immediates are stored as their IEEE-754 bit
    /// pattern.
    Imm(u32),
    /// A predicate register read as a data value (0 or 1), used by `sel`.
    Pred(Pred),
    /// A special hardware register (thread/block coordinates).
    Special(Special),
}

impl Operand {
    /// Convenience constructor for a float immediate.
    pub fn fimm(v: f32) -> Operand {
        Operand::Imm(v.to_bits())
    }

    /// Convenience constructor for a signed integer immediate.
    pub fn simm(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }

    /// The register this operand reads, if it is a register operand.
    ///
    /// [`Reg::RZ`] is *not* reported: it costs no register-file access, so
    /// neither the collector model nor the bypass statistics should see it.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) if !r.is_zero() => Some(r),
            _ => None,
        }
    }

    /// Whether this operand requires a register-file read.
    pub fn reads_rf(self) -> bool {
        self.reg().is_some()
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v > 0xffff && (*v as i32) > 0 {
                    write!(f, "0x{v:x}")
                } else {
                    write!(f, "{}", *v as i32)
                }
            }
            Operand::Pred(p) => write!(f, "{p}"),
            Operand::Special(s) => write!(f, "%{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_mnemonic_roundtrip() {
        for sp in Special::ALL {
            assert_eq!(Special::from_mnemonic(sp.mnemonic()), Some(sp));
        }
        assert_eq!(Special::from_mnemonic("tid.w"), None);
    }

    #[test]
    fn operand_reg_extraction_skips_rz() {
        assert_eq!(Operand::Reg(Reg::r(4)).reg(), Some(Reg::r(4)));
        assert_eq!(Operand::Reg(Reg::RZ).reg(), None);
        assert!(!Operand::Reg(Reg::RZ).reads_rf());
        assert_eq!(Operand::Imm(3).reg(), None);
        assert_eq!(Operand::Special(Special::TidX).reg(), None);
    }

    #[test]
    fn float_imm_is_bitcast() {
        assert_eq!(Operand::fimm(1.0), Operand::Imm(0x3f80_0000));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::Reg(Reg::r(7)).to_string(), "r7");
        assert_eq!(Operand::simm(-4).to_string(), "-4");
        assert_eq!(Operand::Special(Special::CtaidX).to_string(), "%ctaid.x");
        assert_eq!(Operand::Pred(Pred::p(1)).to_string(), "p1");
    }
}
