//! Binary instruction encoding.
//!
//! Instructions encode to a fixed 96-bit format (two `u64` words would
//! waste 32 bits; we use a `[u32; 3]` triple), mirroring how SASS packs
//! opcode, guard, destinations, sources and the 2-bit write-back hint the
//! paper adds. The encoding exists so kernels can be stored, hashed and
//! shipped like real binaries; [`decode`] is the exact inverse of
//! [`encode`] for every valid instruction (property-tested).
//!
//! Layout (word 0):
//! ```text
//!  31..24  opcode id
//!  23..21  cmp-op (for setp opcodes)
//!  20..13  dst register / predicate
//!  12..11  dst kind (0 none, 1 reg, 2 pred)
//!  10..7   guard predicate (0b1111 = none; bit 3 of field unused by PT)
//!   6      guard negated
//!   5..4   write-back hint (BOC enable, RF enable)
//!   3..2   number of sources
//!   1      has memory reference
//!   0      has branch target
//! ```
//! Word 1 packs the source descriptors (kind + payload index); word 2
//! carries the first immediate/offset/target payload. Instructions with
//! more than one 32-bit payload spill into extension words, so an encoded
//! kernel is a `Vec<u32>` stream with self-describing lengths.

use crate::ctrl::CtrlBits;
use crate::inst::{Dst, Instruction, MemRef, PredGuard, WritebackHint};
use crate::kernel::Kernel;
use crate::opcode::{CmpOp, Opcode};
use crate::operand::{Operand, Special};
use crate::reg::{Pred, Reg};

/// Errors produced by [`decode`] / [`decode_kernel`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The stream ended in the middle of an instruction.
    Truncated,
    /// An opcode id that no opcode maps to.
    BadOpcode(u8),
    /// A field combination that no valid instruction produces.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
            DecodeError::BadOpcode(id) => write!(f, "unknown opcode id {id}"),
            DecodeError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn opcode_id(op: Opcode) -> u8 {
    Opcode::all()
        .iter()
        .position(|&o| o == op)
        .expect("all opcodes enumerated") as u8
}

fn opcode_from_id(id: u8) -> Option<Opcode> {
    Opcode::all().get(id as usize).copied()
}

fn cmp_id(op: Opcode) -> u32 {
    match op {
        Opcode::ISetp(c) | Opcode::FSetp(c) => match c {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        },
        _ => 0,
    }
}

/// Encodes one instruction, appending to `out`. Returns the number of
/// words written.
pub fn encode(inst: &Instruction, out: &mut Vec<u32>) -> usize {
    let start = out.len();
    let mut w0 = u32::from(opcode_id(inst.op)) << 24;
    w0 |= cmp_id(inst.op) << 21;
    let (dst_kind, dst_idx) = match inst.dst {
        Dst::None => (0u32, 0u32),
        Dst::Reg(r) => (1, u32::from(r.index())),
        Dst::Pred(p) => (2, u32::from(p.index())),
    };
    w0 |= dst_idx << 13;
    w0 |= dst_kind << 11;
    match inst.guard {
        Some(g) => {
            w0 |= u32::from(g.pred.index()) << 7;
            if g.negated {
                w0 |= 1 << 6;
            }
        }
        None => w0 |= 0b1111 << 7,
    }
    let (boc, rf) = inst.hint.encode();
    w0 |= u32::from(boc) << 5;
    w0 |= u32::from(rf) << 4;
    w0 |= (inst.srcs.len() as u32) << 2;
    if inst.mem.is_some() {
        w0 |= 1 << 1;
    }
    if inst.target.is_some() {
        w0 |= 1;
    }
    out.push(w0);

    // Word 1: source descriptors, 8 bits each: kind(2) + small payload(6)
    // for regs/preds/specials; immediates take a payload slot.
    let mut w1 = 0u32;
    let mut payloads: Vec<u32> = Vec::new();
    for (i, s) in inst.srcs.iter().enumerate() {
        let desc = match *s {
            Operand::Reg(r) => {
                payloads.push(u32::from(r.index()));
                0u32
            }
            Operand::Imm(v) => {
                payloads.push(v);
                1
            }
            Operand::Pred(p) => {
                payloads.push(u32::from(p.index()));
                2
            }
            Operand::Special(sp) => {
                payloads.push(Special::ALL.iter().position(|&x| x == sp).unwrap() as u32);
                3
            }
        };
        w1 |= desc << (i * 2);
    }
    out.push(w1);
    out.extend(payloads);
    if let Some(m) = inst.mem {
        out.push(u32::from(m.base.index()));
        out.push(m.offset as u32);
    }
    if let Some(t) = inst.target {
        out.push(t as u32);
    }
    out.len() - start
}

/// Decodes one instruction starting at `words[pos]`, returning it and the
/// new position.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or field values no valid
/// instruction produces.
pub fn decode(words: &[u32], pos: usize) -> Result<(Instruction, usize), DecodeError> {
    let take = |i: usize| words.get(i).copied().ok_or(DecodeError::Truncated);
    let w0 = take(pos)?;
    let w1 = take(pos + 1)?;
    let mut cursor = pos + 2;

    let op_id = (w0 >> 24) as u8;
    let mut op = opcode_from_id(op_id).ok_or(DecodeError::BadOpcode(op_id))?;
    // Restore the comparison operator for setp opcodes.
    let cmp = match (w0 >> 21) & 0b111 {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(DecodeError::Malformed("cmp op")),
    };
    op = match op {
        Opcode::ISetp(_) => Opcode::ISetp(cmp),
        Opcode::FSetp(_) => Opcode::FSetp(cmp),
        other => other,
    };

    let dst_idx = ((w0 >> 13) & 0xff) as u8;
    let dst = match (w0 >> 11) & 0b11 {
        0 => Dst::None,
        1 => Dst::Reg(Reg::try_new(dst_idx).unwrap_or(Reg::RZ)),
        2 => Dst::Pred(Pred::try_new(dst_idx).unwrap_or(Pred::PT)),
        _ => return Err(DecodeError::Malformed("dst kind")),
    };
    let guard_bits = (w0 >> 7) & 0b1111;
    let guard = if guard_bits == 0b1111 {
        None
    } else {
        Some(PredGuard {
            pred: Pred::try_new(guard_bits as u8).unwrap_or(Pred::PT),
            negated: (w0 >> 6) & 1 == 1,
        })
    };
    let hint = WritebackHint::decode((w0 >> 5) & 1 == 1, (w0 >> 4) & 1 == 1)
        .ok_or(DecodeError::Malformed("writeback hint"))?;
    let n_srcs = ((w0 >> 2) & 0b11) as usize;
    let has_mem = (w0 >> 1) & 1 == 1;
    let has_target = w0 & 1 == 1;

    let mut srcs = Vec::with_capacity(n_srcs);
    for i in 0..n_srcs {
        let payload = take(cursor)?;
        cursor += 1;
        let src = match (w1 >> (i * 2)) & 0b11 {
            0 => Operand::Reg(if payload == 255 {
                Reg::RZ
            } else {
                Reg::try_new(payload as u8).ok_or(DecodeError::Malformed("reg"))?
            }),
            1 => Operand::Imm(payload),
            2 => Operand::Pred(if payload == 7 {
                Pred::PT
            } else {
                Pred::try_new(payload as u8).ok_or(DecodeError::Malformed("pred"))?
            }),
            3 => Operand::Special(
                *Special::ALL
                    .get(payload as usize)
                    .ok_or(DecodeError::Malformed("special"))?,
            ),
            _ => unreachable!("two-bit field"),
        };
        srcs.push(src);
    }
    let mem = if has_mem {
        let base = take(cursor)?;
        let offset = take(cursor + 1)? as i32;
        cursor += 2;
        let base = if base == 255 {
            Reg::RZ
        } else {
            Reg::try_new(base as u8).ok_or(DecodeError::Malformed("mem base"))?
        };
        Some(MemRef { base, offset })
    } else {
        None
    };
    let target = if has_target {
        let t = take(cursor)? as usize;
        cursor += 1;
        Some(t)
    } else {
        None
    };

    let mut inst = Instruction::new(op, dst, srcs);
    inst.guard = guard;
    inst.hint = hint;
    inst.mem = mem;
    inst.target = target;
    Ok((inst, cursor))
}

/// Marker word introducing the control-bits sidecar section ("CTRL").
///
/// Annotated kernels append it after the instruction stream, followed by
/// one packed [`CtrlBits`] word per instruction. Decoders that predate the
/// sidecar treated trailing words as padding, so the section is backward
/// and forward compatible: old binaries decode with an empty sidecar, and
/// unannotated kernels encode byte-identically to the legacy format.
pub const CTRL_MAGIC: u32 = 0x4354_524c;

/// Encodes a whole kernel: header (register count, shared bytes, parameter
/// words, instruction count) followed by the instruction stream and, for
/// annotated kernels, the [`CTRL_MAGIC`] control-bits sidecar.
pub fn encode_kernel(kernel: &Kernel) -> Vec<u32> {
    let mut out = vec![
        u32::from(kernel.num_regs),
        kernel.shared_bytes,
        u32::from(kernel.param_words),
        kernel.insts.len() as u32,
    ];
    for inst in &kernel.insts {
        encode(inst, &mut out);
    }
    if !kernel.ctrl.is_empty() {
        out.push(CTRL_MAGIC);
        out.extend(kernel.ctrl.iter().map(|c| c.pack()));
    }
    out
}

/// Decodes a kernel produced by [`encode_kernel`]. The name is not part of
/// the binary format and must be supplied.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation or malformed fields; the decoded
/// kernel is additionally validated.
pub fn decode_kernel(name: &str, words: &[u32]) -> Result<Kernel, DecodeError> {
    if words.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let count = words[3] as usize;
    let mut insts = Vec::with_capacity(count);
    let mut pos = 4;
    for _ in 0..count {
        let (inst, next) = decode(words, pos)?;
        insts.push(inst);
        pos = next;
    }
    let ctrl = if words.get(pos) == Some(&CTRL_MAGIC) {
        let tail = &words[pos + 1..];
        if tail.len() < count {
            return Err(DecodeError::Truncated);
        }
        tail[..count].iter().map(|&w| CtrlBits::unpack(w)).collect()
    } else {
        Vec::new()
    };
    let kernel = Kernel {
        name: name.to_string(),
        insts,
        num_regs: words[0] as u16,
        shared_bytes: words[1],
        param_words: words[2] as u16,
        ctrl,
    };
    kernel
        .validate()
        .map_err(|_| DecodeError::Malformed("kernel validation"))?;
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    fn sample() -> Kernel {
        let r = Reg::r;
        KernelBuilder::new("sample")
            .s2r(r(0), Special::TidX)
            .ldc(r(1), 4)
            .guard(Pred::p(2), true)
            .imad(r(2), r(0).into(), Operand::Imm(0xdead_beef), r(1).into())
            .ldg(r(3), r(2), -64)
            .isetp(CmpOp::Ge, Pred::p(0), r(3).into(), Operand::Reg(Reg::RZ))
            .bra_if(Pred::p(0), false, "end")
            .stg(r(2), 8, r(3).into())
            .hint(WritebackHint::BocOnly)
            .label("end")
            .exit()
            .build()
            .unwrap()
    }

    #[test]
    fn instruction_roundtrip() {
        let k = sample();
        for inst in &k.insts {
            let mut words = Vec::new();
            encode(inst, &mut words);
            let (back, used) = decode(&words, 0).expect("decodes");
            assert_eq!(&back, inst, "mismatch for {inst}");
            assert_eq!(used, words.len());
        }
    }

    #[test]
    fn kernel_roundtrip() {
        let k = sample();
        let words = encode_kernel(&k);
        let back = decode_kernel("sample", &words).expect("kernel decodes");
        assert_eq!(back, k);
    }

    #[test]
    fn ctrl_sidecar_roundtrips() {
        let mut k = sample();
        let legacy = encode_kernel(&k);
        k.ctrl = (0..k.insts.len())
            .map(|i| CtrlBits {
                stall: (i as u8) % 7,
                wr_bar: (i % 2 == 0).then_some((i % 6) as u8),
                rd_bar: None,
                wait_mask: (1 << (i % 6)) as u8,
            })
            .collect();
        let words = encode_kernel(&k);
        assert_eq!(&words[..legacy.len()], &legacy[..], "stream is a prefix");
        assert_eq!(words.len(), legacy.len() + 1 + k.insts.len());
        let back = decode_kernel("sample", &words).expect("decodes");
        assert_eq!(back, k);
        // Legacy binaries (no sidecar) decode with an empty sidecar.
        let old = decode_kernel("sample", &legacy).expect("decodes");
        assert!(old.ctrl.is_empty());
        // A truncated sidecar is an error, not silently dropped.
        assert_eq!(
            decode_kernel("sample", &words[..words.len() - 1]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn truncated_stream_errors() {
        let k = sample();
        let words = encode_kernel(&k);
        assert_eq!(decode_kernel("x", &words[..3]), Err(DecodeError::Truncated));
        assert!(matches!(
            decode_kernel("x", &words[..words.len() - 1]),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn bad_opcode_errors() {
        let mut words = Vec::new();
        encode(
            &Instruction::new(Opcode::Nop, Dst::None, vec![]),
            &mut words,
        );
        words[0] |= 0xff << 24;
        assert!(matches!(decode(&words, 0), Err(DecodeError::BadOpcode(_))));
    }

    #[test]
    fn encoding_is_compact() {
        // A nop is exactly two words; a three-source fma with immediates is
        // at most five.
        let mut words = Vec::new();
        let n = encode(
            &Instruction::new(Opcode::Nop, Dst::None, vec![]),
            &mut words,
        );
        assert_eq!(n, 2);
        let fma = Instruction::new(
            Opcode::FFma,
            Dst::Reg(Reg::r(1)),
            vec![
                Operand::fimm(1.0),
                Operand::fimm(2.0),
                Operand::Reg(Reg::r(2)),
            ],
        );
        let mut words = Vec::new();
        assert_eq!(encode(&fma, &mut words), 5);
    }
}
