//! Property test: every structurally valid instruction round-trips through
//! the binary encoding, and every valid kernel's stream decodes back to an
//! equal kernel.
//!
//! Cases come from a seeded in-tree xorshift stream ([`bow_util::XorShift`];
//! the workspace builds offline and carries no proptest), so every run
//! checks the same cases and a failure reproduces from the printed case
//! number alone.

use bow_isa::{
    decode_kernel, encode_kernel, CmpOp, Dst, Instruction, KernelBuilder, MemRef, Opcode, Operand,
    Pred, PredGuard, Reg, WritebackHint,
};
use bow_util::XorShift;

fn case_rng(seed: u64, case: u64) -> XorShift {
    XorShift::new(seed ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

fn gen_cmp(rng: &mut XorShift) -> CmpOp {
    *rng.choose(&[
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

fn gen_operand(rng: &mut XorShift) -> Operand {
    match rng.below(5) {
        0 => Operand::Reg(Reg::r(rng.below_u8(255))),
        1 => Operand::Reg(Reg::RZ),
        2 => Operand::Imm(rng.next_u32()),
        3 => Operand::Pred(Pred::p(rng.below_u8(7))),
        _ => Operand::Special(bow_isa::Special::ALL[rng.below(10) as usize]),
    }
}

fn gen_hint(rng: &mut XorShift) -> WritebackHint {
    *rng.choose(&[
        WritebackHint::Both,
        WritebackHint::RfOnly,
        WritebackHint::BocOnly,
    ])
}

fn gen_guard(rng: &mut XorShift) -> Option<PredGuard> {
    if rng.next_bool() {
        Some(PredGuard {
            pred: Pred::p(rng.below_u8(7)),
            negated: rng.next_bool(),
        })
    } else {
        None
    }
}

/// Builds a structurally valid instruction for a random opcode, redrawing
/// until validation passes (most draws are already valid; the bound only
/// guards against a generator bug spinning forever).
fn gen_inst(rng: &mut XorShift) -> Instruction {
    let ops = Opcode::all();
    for _ in 0..1000 {
        let mut op = ops[rng.below(ops.len() as u64) as usize];
        let cmp = gen_cmp(rng);
        op = match op {
            Opcode::ISetp(_) => Opcode::ISetp(cmp),
            Opcode::FSetp(_) => Opcode::FSetp(cmp),
            o => o,
        };
        let (dreg, dpred) = (rng.below_u8(255), rng.below_u8(7));
        let dst = if op.writes_reg() {
            Dst::Reg(Reg::r(dreg))
        } else if op.writes_pred() {
            Dst::Pred(Pred::p(dpred))
        } else {
            Dst::None
        };
        let mut srcs: Vec<Operand> = (0..op.arity()).map(|_| gen_operand(rng)).collect();
        // Structural fixes: s2r needs a special source, sel a predicate
        // third source; register-only slots keep whatever came.
        if op == Opcode::S2R {
            srcs[0] = Operand::Special(bow_isa::Special::TidX);
        }
        if op == Opcode::Sel {
            srcs[2] = Operand::Pred(Pred::p(dpred));
        }
        let mut inst = Instruction::new(op, dst, srcs);
        inst.guard = gen_guard(rng);
        inst.hint = gen_hint(rng);
        let offset = rng.next_u32() as i32;
        if matches!(op, Opcode::Ldg | Opcode::Stg | Opcode::Lds | Opcode::Sts) {
            inst.mem = Some(MemRef {
                base: Reg::r(dreg),
                offset,
            });
        }
        if op == Opcode::Ldc {
            inst.mem = Some(MemRef {
                base: Reg::RZ,
                offset: (offset & 0x3f) * 4,
            });
        }
        if matches!(op, Opcode::Bra | Opcode::Ssy | Opcode::Bssy) {
            inst.target = Some(rng.below(1000) as usize);
        }
        if matches!(op, Opcode::Bssy | Opcode::Bsync) {
            inst.srcs[0] = Operand::Imm(rng.below(bow_isa::NUM_CBARS as u64) as u32);
        }
        if inst.validate().is_ok() {
            return inst;
        }
    }
    panic!("no valid instruction in 1000 draws");
}

#[test]
fn every_valid_instruction_roundtrips() {
    for case in 0..512u64 {
        let mut rng = case_rng(0xe7c0_de00, case);
        let inst = gen_inst(&mut rng);
        let mut words = Vec::new();
        bow_isa::encode::encode(&inst, &mut words);
        let (back, used) = bow_isa::encode::decode(&words, 0).expect("decodes");
        assert_eq!(back, inst, "case {case}: decode mismatch");
        assert_eq!(used, words.len(), "case {case}: trailing words");
    }
}

#[test]
fn disassembly_reparses_to_the_same_kernel() {
    for case in 0..128u64 {
        let mut rng = case_rng(0xd15a_55e0, case);
        let n = rng.range(1, 20) as usize;
        let mut b = KernelBuilder::new("roundtrip");
        for _ in 0..n {
            let s = rng.next_u32();
            let d = Reg::r((s % 12) as u8);
            let a = Operand::Reg(Reg::r(((s >> 8) % 12) as u8));
            b = match s % 4 {
                0 => b.iadd(d, a, Operand::Imm(s & 0xffff)),
                1 => b.shl(d, a, Operand::Imm(s % 31)),
                2 => b.ldg(d, Reg::r(((s >> 16) % 12) as u8), (s % 256) as i32),
                _ => b.fmax(d, a, Operand::fimm((s % 100) as f32)),
            };
        }
        let k = b.exit().build().expect("builds");
        let text = k.disassemble();
        let back = bow_isa::asm::parse_kernel(&text).expect("reparses");
        assert_eq!(back, k, "case {case}: reparse mismatch");
    }
}

#[test]
fn random_straightline_kernels_roundtrip() {
    for case in 0..128u64 {
        let mut rng = case_rng(0x5745_a171, case);
        let n = rng.range(1, 30) as usize;
        let mut b = KernelBuilder::new("prop");
        for _ in 0..n {
            let s = rng.next_u32();
            let d = Reg::r((s % 16) as u8);
            let a = Operand::Reg(Reg::r(((s >> 8) % 16) as u8));
            let c = Operand::Imm(s);
            b = match s % 5 {
                0 => b.iadd(d, a, c),
                1 => b.imul(d, a, c),
                2 => b.xor(d, a, c),
                3 => b.fadd(d, a, c),
                _ => b.mov(d, a),
            };
        }
        let k = b.exit().build().expect("builds");
        let words = encode_kernel(&k);
        let back = decode_kernel("prop", &words).expect("decodes");
        assert_eq!(back, k, "case {case}: decode mismatch");
    }
}
