//! Property test: every structurally valid instruction round-trips through
//! the binary encoding, and every valid kernel's stream decodes back to an
//! equal kernel.

use bow_isa::{
    encode_kernel, decode_kernel, CmpOp, Dst, Instruction, KernelBuilder, MemRef, Opcode,
    Operand, Pred, PredGuard, Reg, WritebackHint,
};
use proptest::prelude::*;

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..=254).prop_map(|i| Operand::Reg(Reg::r(i))),
        Just(Operand::Reg(Reg::RZ)),
        any::<u32>().prop_map(Operand::Imm),
        (0u8..=6).prop_map(|i| Operand::Pred(Pred::p(i))),
        (0usize..10).prop_map(|i| Operand::Special(bow_isa::Special::ALL[i])),
    ]
}

fn hint_strategy() -> impl Strategy<Value = WritebackHint> {
    prop_oneof![
        Just(WritebackHint::Both),
        Just(WritebackHint::RfOnly),
        Just(WritebackHint::BocOnly),
    ]
}

fn guard_strategy() -> impl Strategy<Value = Option<PredGuard>> {
    prop_oneof![
        Just(None),
        ((0u8..=6), any::<bool>())
            .prop_map(|(p, n)| Some(PredGuard { pred: Pred::p(p), negated: n })),
    ]
}

/// Builds a structurally valid instruction for a random opcode.
fn inst_strategy() -> impl Strategy<Value = Instruction> {
    let ops = Opcode::all();
    (
        0..ops.len(),
        proptest::collection::vec(operand_strategy(), 3),
        (0u8..=254, 0u8..=6),
        guard_strategy(),
        hint_strategy(),
        any::<i32>(),
        0usize..1000,
        cmp_strategy(),
    )
        .prop_map(move |(oi, raw_srcs, (dreg, dpred), guard, hint, offset, target, cmp)| {
            let mut op = ops[oi];
            op = match op {
                Opcode::ISetp(_) => Opcode::ISetp(cmp),
                Opcode::FSetp(_) => Opcode::FSetp(cmp),
                o => o,
            };
            let dst = if op.writes_reg() {
                Dst::Reg(Reg::r(dreg))
            } else if op.writes_pred() {
                Dst::Pred(Pred::p(dpred))
            } else {
                Dst::None
            };
            let mut srcs: Vec<Operand> = raw_srcs.into_iter().take(op.arity()).collect();
            // Structural fixes: s2r needs a special source, sel a predicate
            // third source; register-only slots keep whatever came.
            if op == Opcode::S2R {
                srcs[0] = Operand::Special(bow_isa::Special::TidX);
            }
            if op == Opcode::Sel {
                srcs[2] = Operand::Pred(Pred::p(dpred));
            }
            let mut inst = Instruction::new(op, dst, srcs);
            inst.guard = guard;
            inst.hint = hint;
            if matches!(op, Opcode::Ldg | Opcode::Stg | Opcode::Lds | Opcode::Sts) {
                inst.mem = Some(MemRef { base: Reg::r(dreg), offset });
            }
            if op == Opcode::Ldc {
                inst.mem = Some(MemRef { base: Reg::RZ, offset: (offset & 0x3f) * 4 });
            }
            if matches!(op, Opcode::Bra | Opcode::Ssy) {
                inst.target = Some(target);
            }
            inst
        })
        .prop_filter("valid instructions only", |i| i.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_valid_instruction_roundtrips(inst in inst_strategy()) {
        let mut words = Vec::new();
        bow_isa::encode::encode(&inst, &mut words);
        let (back, used) = bow_isa::encode::decode(&words, 0).expect("decodes");
        prop_assert_eq!(&back, &inst);
        prop_assert_eq!(used, words.len());
    }

    #[test]
    fn disassembly_reparses_to_the_same_kernel(
        n in 1usize..20,
        seeds in proptest::collection::vec(any::<u32>(), 20),
    ) {
        let mut b = KernelBuilder::new("roundtrip");
        for i in 0..n {
            let s = seeds[i];
            let d = Reg::r((s % 12) as u8);
            let a = Operand::Reg(Reg::r(((s >> 8) % 12) as u8));
            b = match s % 4 {
                0 => b.iadd(d, a, Operand::Imm(s & 0xffff)),
                1 => b.shl(d, a, Operand::Imm(s % 31)),
                2 => b.ldg(d, Reg::r(((s >> 16) % 12) as u8), (s % 256) as i32),
                _ => b.fmax(d, a, Operand::fimm((s % 100) as f32)),
            };
        }
        let k = b.exit().build().expect("builds");
        let text = k.disassemble();
        let back = bow_isa::asm::parse_kernel(&text).expect("reparses");
        prop_assert_eq!(back, k);
    }

    #[test]
    fn random_straightline_kernels_roundtrip(
        n in 1usize..30,
        seeds in proptest::collection::vec(any::<u32>(), 30),
    ) {
        let mut b = KernelBuilder::new("prop");
        for i in 0..n {
            let s = seeds[i];
            let d = Reg::r((s % 16) as u8);
            let a = Operand::Reg(Reg::r(((s >> 8) % 16) as u8));
            let c = Operand::Imm(s);
            b = match s % 5 {
                0 => b.iadd(d, a, c),
                1 => b.imul(d, a, c),
                2 => b.xor(d, a, c),
                3 => b.fadd(d, a, c),
                _ => b.mov(d, a),
            };
        }
        let k = b.exit().build().expect("builds");
        let words = encode_kernel(&k);
        let back = decode_kernel("prop", &words).expect("decodes");
        prop_assert_eq!(back, k);
    }
}
