//! The differential kernel fuzzer: generated kernels × collector configs,
//! checked three independent ways.
//!
//! Each case draws a structured program from [`bow_isa::fuzz`], lowers it
//! to a kernel, and runs it under every collector configuration
//! (baseline, BOW, BOW-WR with hints on and off, RFC). Every run must
//! satisfy, in order:
//!
//! 1. **Lockstep**: every executed instruction's destination values match
//!    the warp-serial architectural oracle ([`bow_sim::oracle`]) — a
//!    pipeline/collector bug is pinned to the first diverging
//!    instruction.
//! 2. **Final memory**: the pipeline's global memory fingerprint equals
//!    the oracle's.
//! 3. **Host model**: every word the program writes matches
//!    [`FuzzKernel::expected`], an independent reimplementation of the
//!    ISA semantics that shares no code with the simulator — a semantics
//!    bug in `exec.rs` itself (invisible to the oracle, which reuses
//!    `exec.rs`) fails here.
//!
//! Cases fan out over the same work-stealing pool as the experiment
//! sweeps ([`crate::suite`]); failures shrink to a minimal statement
//! tree and are written as runnable `.asm` repro files.
//!
//! Everything is deterministic: case `i` of seed `s` derives its RNG from
//! `s ^ (i * GOLDEN)`, so any failure reproduces from the printed seed
//! and case number alone, at any `--jobs`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::experiment::{Config, ConfigBuilder};
use crate::suite::{effective_jobs, map_parallel};
use bow_compiler::{annotate, emit_ctrl, lower_to_barriers, verify_hints, CtrlLatencies};
use bow_isa::fuzz::{self, FuzzKernel};
use bow_isa::Kernel;
use bow_sim::oracle::{run_oracle, LockstepChecker};
use bow_sim::Gpu;
use bow_sim::{CoreModelKind, DivergenceModel};
use bow_util::XorShift;

/// Per-case seed derivation constant (splitmix golden ratio).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Cycle watchdog for fuzzed launches: generated kernels are small and
/// always terminate, so hitting this means the *pipeline* hung.
pub(crate) const FUZZ_MAX_CYCLES: u64 = 5_000_000;

/// Options for a fuzzing session.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Number of generated cases.
    pub cases: u64,
    /// Master seed; case `i` derives its own stream from it.
    pub seed: u64,
    /// Worker threads (`0` = all cores).
    pub jobs: usize,
    /// Statement budget per generated program.
    pub size: usize,
    /// Directory minimized `.asm` repro files are written to.
    pub out_dir: PathBuf,
    /// Print per-case progress to stderr.
    pub progress: bool,
    /// Intra-run engine threads per launch. Results are byte-identical
    /// at any value; > 1 makes every case exercise the windowed parallel
    /// engine under the lockstep oracle.
    pub sim_threads: u32,
    /// SM core model every case runs on. `Modern` drops the shadow-RF
    /// variant (the two cannot combine) and routes each kernel through
    /// the control-bits emitter, so the fixed-latency interlock runs
    /// under the same lockstep oracle.
    pub core_model: CoreModelKind,
    /// Reconvergence machinery every case runs under. `Barrier` lowers
    /// each case's SSY/SYNC to convergence barriers, so the stack-less
    /// split/join model faces the same lockstep oracle and host model.
    pub divergence: DivergenceModel,
    /// Adds a fourth check per cell: a sanitized re-launch
    /// ([`bow_sim::GpuConfig::sanitize`]) whose every dynamic finding
    /// must be vouched for by a static lint code
    /// ([`crate::sanitize_campaign::static_codes_for`]) — generated
    /// kernels keep barriers and exchanges convergent by construction,
    /// so any finding here is a checker false negative or a generator
    /// regression, and fails the cell.
    pub sanitize: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            cases: 256,
            seed: 0xb0f_f00d,
            jobs: 0,
            size: 24,
            out_dir: PathBuf::from("results/fuzz"),
            progress: false,
            sim_threads: 1,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            sanitize: false,
        }
    }
}

impl FuzzOptions {
    /// The fixed 64-case smoke configuration CI runs.
    pub fn smoke() -> FuzzOptions {
        FuzzOptions {
            cases: 64,
            seed: 0x5330_c0de,
            ..FuzzOptions::default()
        }
    }
}

/// One confirmed differential failure, shrunk to a minimal program.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Case index within the session.
    pub case: u64,
    /// The derived per-case seed (reproduces the case alone).
    pub case_seed: u64,
    /// Configuration label the failure occurred under.
    pub config: String,
    /// What diverged (first failing check).
    pub detail: String,
    /// Statement count of the original failing program.
    pub original_stmts: usize,
    /// Statement count after shrinking.
    pub minimized_stmts: usize,
    /// The minimized kernel as runnable `.asm` text (with a comment
    /// header carrying the metadata needed to reproduce).
    pub repro_asm: String,
    /// Where the repro was written, when `out_dir` was writable.
    pub repro_path: Option<PathBuf>,
}

/// The outcome of a fuzzing session.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Configuration labels each case ran under.
    pub configs: Vec<String>,
    /// Confirmed failures (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
    /// Total dynamic instructions lockstep-checked across all runs.
    pub checked_instructions: u64,
    /// Wall-clock time of the session.
    pub wall: Duration,
}

impl FuzzReport {
    /// A one-paragraph human summary.
    pub fn summary(&self) -> String {
        if self.failures.is_empty() {
            format!(
                "fuzz: {} cases x {} configs OK ({} instructions lockstep-checked, {:.1}s)",
                self.cases,
                self.configs.len(),
                self.checked_instructions,
                self.wall.as_secs_f64()
            )
        } else {
            let mut s = format!(
                "fuzz: {} FAILURE(S) in {} cases x {} configs:\n",
                self.failures.len(),
                self.cases,
                self.configs.len()
            );
            for f in &self.failures {
                s.push_str(&format!(
                    "  case {} (seed {:#x}) under {}: {} [{} -> {} stmts{}]\n",
                    f.case,
                    f.case_seed,
                    f.config,
                    f.detail,
                    f.original_stmts,
                    f.minimized_stmts,
                    match &f.repro_path {
                        Some(p) => format!(", repro: {}", p.display()),
                        None => String::new(),
                    }
                ));
            }
            s
        }
    }
}

/// The collector configurations every case runs under: the full design
/// space of the paper's Table I plus the RFC baseline, hints on and off.
pub fn fuzz_configs() -> Vec<Config> {
    fuzz_configs_for(CoreModelKind::Pascal, DivergenceModel::Stack)
}

/// [`fuzz_configs`] on a chosen core and divergence model. The shadow-RF
/// variant only exists on Pascal — it models Pascal's staged write-back
/// and is a [`ConfigError::Conflict`](crate::error::ConfigError) with
/// the modern core — so the modern matrix has one fewer column.
pub fn fuzz_configs_for(core: CoreModelKind, divergence: DivergenceModel) -> Vec<Config> {
    let with = |b: ConfigBuilder| b.core_model(core).divergence(divergence).build();
    let mut configs = vec![
        with(ConfigBuilder::baseline()),
        with(ConfigBuilder::bow(3)),
        with(ConfigBuilder::bow_wr(3)),
        with(ConfigBuilder::bow_wr(3).hints(false)),
    ];
    if core == CoreModelKind::Pascal {
        // Same design with the architectural shadow RF: a hint the static
        // verifier accepted but that drops a live value dynamically would
        // fail lockstep here instead of being absorbed by the value-less
        // timing model.
        configs.push(
            ConfigBuilder::bow_wr(3)
                .shadow_rf(true)
                .divergence(divergence)
                .build(),
        );
    }
    configs.push(with(ConfigBuilder::rfc()));
    configs
}

/// Derives the per-case RNG seed from the session seed and case index.
pub fn case_seed(seed: u64, case: u64) -> u64 {
    seed ^ case.wrapping_mul(GOLDEN)
}

/// Runs a fuzzing session and returns the report. Deterministic for a
/// given `(seed, cases, size)` at any worker count.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let start = Instant::now();
    let mut configs = fuzz_configs_for(opts.core_model, opts.divergence);
    for c in &mut configs {
        c.gpu.sim_threads = opts.sim_threads;
    }
    let ncfg = configs.len();
    let total = (opts.cases as usize) * ncfg;
    let workers = effective_jobs(opts.jobs).min(total.max(1));

    // One pool task per (case, config) cell, case-major.
    let run_cell = |cell: usize| -> CellResult {
        let case = (cell / ncfg) as u64;
        let config = &configs[cell % ncfg];
        let cseed = case_seed(opts.seed, case);
        let mut rng = XorShift::new(cseed);
        let program = FuzzKernel::generate_sized(&mut rng, opts.size);
        let input = FuzzKernel::gen_input(&mut rng);
        let sanitize = opts.sanitize;
        match check_case(&program, &input, config, case, sanitize) {
            None => CellResult {
                case,
                config: config.label.clone(),
                checked: count_checked(&program, &input, config, case, sanitize),
                failure: None,
            },
            Some(detail) => {
                // Shrink: keep any simplification that still fails this
                // config (any failure detail counts, not just the same).
                let minimized = program
                    .shrink(|cand| check_case(cand, &input, config, case, sanitize).is_some());
                let final_detail = check_case(&minimized, &input, config, case, sanitize)
                    .unwrap_or_else(|| detail.clone());
                CellResult {
                    case,
                    config: config.label.clone(),
                    checked: 0,
                    failure: Some(FuzzFailure {
                        case,
                        case_seed: cseed,
                        config: config.label.clone(),
                        detail: final_detail.clone(),
                        original_stmts: program.count_stmts(),
                        minimized_stmts: minimized.count_stmts(),
                        repro_asm: render_repro(
                            &minimized,
                            &input,
                            opts.seed,
                            case,
                            cseed,
                            config,
                            &final_detail,
                        ),
                        repro_path: None,
                    }),
                }
            }
        }
    };

    let progress = opts.progress;
    let results = map_parallel(total, workers, &run_cell, |done, r: &CellResult| {
        if progress {
            let status = if r.failure.is_some() { "FAIL" } else { "ok" };
            eprintln!(
                "[{done:>4}/{total}] case {:>4} {:<12} {status}",
                r.case, r.config
            );
        }
    });

    let mut failures = Vec::new();
    let mut checked_instructions = 0u64;
    for r in results {
        checked_instructions += r.checked;
        if let Some(mut f) = r.failure {
            f.repro_path = write_repro(&opts.out_dir, &f);
            failures.push(f);
        }
    }
    FuzzReport {
        cases: opts.cases,
        configs: configs.into_iter().map(|c| c.label).collect(),
        failures,
        checked_instructions,
        wall: start.elapsed(),
    }
}

struct CellResult {
    case: u64,
    config: String,
    checked: u64,
    failure: Option<FuzzFailure>,
}

/// Builds the launchable kernel for a case under a config (hint pass
/// applied when the config asks for it).
fn build_kernel(program: &FuzzKernel, config: &Config, case: u64) -> Kernel {
    let kernel = program.build(&format!("fuzz_case_{case}"));
    let kernel = if config.hints {
        let window = config.gpu.collector.window().unwrap_or(3);
        annotate(&kernel, window).0
    } else {
        kernel
    };
    // Generated control flow is structured by construction, so barrier
    // lowering refusing a case is itself a generator/compiler bug.
    let kernel = if config.gpu.divergence == DivergenceModel::Barrier {
        match lower_to_barriers(&kernel) {
            Ok(k) => k,
            Err(e) => panic!("fuzz case {case}: barrier lowering rejected the kernel: {e}"),
        }
    } else {
        kernel
    };
    if config.gpu.core_model == CoreModelKind::Modern {
        emit_ctrl(&kernel, &CtrlLatencies::default())
    } else {
        kernel
    }
}

/// Runs one (program, input, config) cell through the checks.
/// Returns `None` on agreement, or a description of the first failure.
fn check_case(
    program: &FuzzKernel,
    input: &[u32],
    config: &Config,
    case: u64,
    sanitize: bool,
) -> Option<String> {
    run_checks(program, input, config, case, sanitize).err()
}

/// Re-runs a clean cell just to count lockstep-checked instructions.
fn count_checked(
    program: &FuzzKernel,
    input: &[u32],
    config: &Config,
    case: u64,
    sanitize: bool,
) -> u64 {
    run_checks(program, input, config, case, sanitize).unwrap_or(0)
}

fn run_checks(
    program: &FuzzKernel,
    input: &[u32],
    config: &Config,
    case: u64,
    sanitize: bool,
) -> Result<u64, String> {
    let kernel = build_kernel(program, config, case);
    let dims = FuzzKernel::dims();

    // Check 0: the static residency verifier must accept the annotated
    // kernel before it is allowed anywhere near the pipeline. A rejection
    // is a hint-producer bug, pinned here rather than surfacing as a
    // mysterious lockstep divergence under the shadow-RF config.
    if config.hints {
        let window = config.gpu.collector.window().unwrap_or(3) as usize;
        let audit = verify_hints(&kernel, window);
        if !audit.is_sound() {
            let pcs: Vec<String> = audit.unsound().map(|f| f.pc.to_string()).collect();
            return Err(format!(
                "static verifier: unsound hint(s) at pc [{}]",
                pcs.join(", ")
            ));
        }
    }

    // Launch-time memory image: the input region.
    let mut gpu_cfg = config.gpu.clone();
    gpu_cfg.max_cycles = FUZZ_MAX_CYCLES;
    let mut gpu = Gpu::new(gpu_cfg);
    gpu.global_mut()
        .write_slice_u32(u64::from(fuzz::INPUT_BASE), input);

    let oracle = run_oracle(&kernel, dims, &fuzz::PARAMS, gpu.global().clone(), true);
    if !oracle.completed {
        return Err("oracle did not complete (runaway generated kernel?)".into());
    }

    let mut checker = LockstepChecker::new(&oracle.log);
    let result = gpu.launch_with_probe(&kernel, dims, &fuzz::PARAMS, &mut checker);

    // Check 1: lockstep against the oracle.
    if let Some(d) = &checker.divergence {
        return Err(format!("lockstep: {d}"));
    }
    if !result.completed {
        return Err(format!("pipeline hit the {FUZZ_MAX_CYCLES}-cycle watchdog"));
    }
    if checker.checked != oracle.log.len() as u64 {
        return Err(format!(
            "instruction count: pipeline executed {}, oracle {}",
            checker.checked,
            oracle.log.len()
        ));
    }

    // Check 2: final global memory, pipeline vs oracle.
    if gpu.global().fingerprint() != oracle.global.fingerprint() {
        return Err("final memory: pipeline and oracle fingerprints differ".into());
    }

    // Check 3: every written word vs the independent host model. This is
    // the check a shared `exec.rs` semantics bug fails.
    for (addr, want) in program.expected(input) {
        let got = gpu.global().read_u32(addr);
        if got != want {
            return Err(format!(
                "host model: mem[{addr:#x}] = {got:#x}, expected {want:#x}"
            ));
        }
    }

    // Check 4 (opt-in): a sanitized re-launch cross-validated against the
    // static race suite — every dynamic finding needs a static voucher.
    if sanitize {
        let mut san_cfg = config.gpu.clone();
        san_cfg.max_cycles = FUZZ_MAX_CYCLES;
        san_cfg.sanitize = true;
        san_cfg.oracle_check = bow_sim::OracleCheck::Off;
        let mut sgpu = Gpu::new(san_cfg);
        sgpu.global_mut()
            .write_slice_u32(u64::from(fuzz::INPUT_BASE), input);
        let sres = sgpu.launch(&kernel, dims, &fuzz::PARAMS);
        let srep = sres.sanitizer.expect("sanitize flag attaches the probe");
        if !srep.is_clean() {
            let window = config.gpu.collector.window().unwrap_or(3);
            let report = bow_compiler::lint_kernel(
                &kernel,
                &bow_compiler::LintOptions {
                    window,
                    check_hints: true,
                    latencies: CtrlLatencies::default(),
                },
            );
            for finding in &srep.findings {
                let vouchers = crate::sanitize_campaign::static_codes_for(finding.kind());
                if !vouchers
                    .iter()
                    .any(|c| report.diagnostics.iter().any(|d| d.code == *c))
                {
                    return Err(format!(
                        "sanitizer: dynamic finding without static flag — {finding}"
                    ));
                }
            }
        }
    }
    Ok(checker.checked)
}

/// Renders a minimized failing case as runnable `.asm` text with a
/// comment header carrying everything needed to reproduce it.
///
/// The kernel goes through the same preparation as the failing run —
/// including the hint pass — so the `.wb.*` suffixes that may have
/// *caused* the failure survive into the repro and round-trip through
/// `bow_isa::asm`.
fn render_repro(
    minimized: &FuzzKernel,
    input: &[u32],
    seed: u64,
    case: u64,
    case_seed: u64,
    config: &Config,
    detail: &str,
) -> String {
    let kernel = build_kernel(minimized, config, case);
    let mut s = String::new();
    s.push_str("// bow fuzz repro (minimized)\n");
    s.push_str(&format!(
        "// session seed {seed:#x}, case {case}, case seed {case_seed:#x}\n"
    ));
    s.push_str(&format!("// config: {}\n", config.label));
    s.push_str(&format!("// failure: {detail}\n"));
    let params: Vec<String> = fuzz::PARAMS.iter().map(|p| format!("{p:#x}")).collect();
    s.push_str(&format!(
        "// launch: grid ({},{}) block ({},{}), params [{}]\n",
        fuzz::GRID.0,
        fuzz::GRID.1,
        fuzz::BLOCK.0,
        fuzz::BLOCK.1,
        params.join(", ")
    ));
    s.push_str(&format!(
        "// input: {} words at {:#x}, listed below\n",
        input.len(),
        fuzz::INPUT_BASE
    ));
    for chunk in input.chunks(8) {
        let words: Vec<String> = chunk.iter().map(|w| format!("{w:#010x}")).collect();
        s.push_str(&format!("//   {}\n", words.join(" ")));
    }
    s.push('\n');
    s.push_str(&kernel.disassemble());
    s
}

/// Writes a failure's repro file; returns its path (best effort — an
/// unwritable directory degrades to `None`, the text stays in the report).
fn write_repro(dir: &Path, f: &FuzzFailure) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let slug: String = f
        .config
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("case{}_{}.asm", f.case, slug));
    std::fs::write(&path, &f.repro_asm).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_session_over_a_few_cases() {
        let report = run_fuzz(&FuzzOptions {
            cases: 4,
            seed: 0xfeed_beef,
            jobs: 2,
            size: 16,
            out_dir: std::env::temp_dir().join("bow_fuzz_test"),
            progress: false,
            sim_threads: 2,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            // Exercise check 4: clean generated kernels must sanitize
            // clean (or carry a static flag for anything found).
            sanitize: true,
        });
        assert!(report.failures.is_empty(), "{}", report.summary());
        assert_eq!(report.configs.len(), 6);
        assert!(report.checked_instructions > 0);
    }

    #[test]
    fn barrier_divergence_fuzzes_clean_under_the_lockstep_oracle() {
        // Every case lowers to BSSY/BSYNC convergence barriers; the
        // stack-less split/join machinery must still satisfy lockstep,
        // final memory and the independent host model, on both cores.
        for core in [CoreModelKind::Pascal, CoreModelKind::Modern] {
            let report = run_fuzz(&FuzzOptions {
                cases: 4,
                seed: 0xfeed_beef,
                jobs: 2,
                size: 16,
                out_dir: std::env::temp_dir().join("bow_fuzz_barrier_test"),
                progress: false,
                sim_threads: 2,
                core_model: core,
                divergence: DivergenceModel::Barrier,
                sanitize: core == CoreModelKind::Pascal,
            });
            assert!(report.failures.is_empty(), "{}", report.summary());
            assert!(
                report.configs.iter().all(|l| l.contains("+barrier")),
                "{:?}",
                report.configs
            );
            assert!(report.checked_instructions > 0);
        }
    }

    #[test]
    fn modern_core_fuzzes_clean_under_the_lockstep_oracle() {
        let report = run_fuzz(&FuzzOptions {
            cases: 4,
            seed: 0xfeed_beef,
            jobs: 2,
            size: 16,
            out_dir: std::env::temp_dir().join("bow_fuzz_modern_test"),
            progress: false,
            sim_threads: 2,
            core_model: CoreModelKind::Modern,
            divergence: DivergenceModel::Stack,
            sanitize: false,
        });
        assert!(report.failures.is_empty(), "{}", report.summary());
        // Shadow RF conflicts with the modern core, so its column drops.
        assert_eq!(report.configs.len(), 5);
        assert!(
            report.configs.iter().all(|l| l.contains("+modern")),
            "{:?}",
            report.configs
        );
        assert!(report.checked_instructions > 0);
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        assert_eq!(case_seed(7, 0), 7);
        assert_ne!(case_seed(7, 1), case_seed(7, 2));
        assert_eq!(case_seed(7, 3), case_seed(7, 3));
    }

    #[test]
    fn repro_text_reparses_as_a_kernel() {
        let mut rng = XorShift::new(123);
        let program = FuzzKernel::generate_sized(&mut rng, 8);
        let input = FuzzKernel::gen_input(&mut rng);
        let config = ConfigBuilder::baseline().build();
        let text = render_repro(&program, &input, 1, 2, 3, &config, "test");
        let k = bow_isa::asm::parse_kernel(&text).expect("repro is runnable asm");
        assert!(!k.insts.is_empty());
    }

    #[test]
    fn repro_round_trips_writeback_hints() {
        // Under a hinted config the repro must carry the same hints as the
        // kernel that actually failed — reparsing it reproduces the case.
        let mut rng = XorShift::new(123);
        let program = FuzzKernel::generate_sized(&mut rng, 16);
        let input = FuzzKernel::gen_input(&mut rng);
        let config = ConfigBuilder::bow_wr(3).build();
        let text = render_repro(&program, &input, 1, 2, 3, &config, "test");
        let reparsed = bow_isa::asm::parse_kernel(&text).expect("repro is runnable asm");
        let annotated = build_kernel(&program, &config, 2);
        let hints: Vec<_> = annotated.insts.iter().map(|i| i.hint).collect();
        let back: Vec<_> = reparsed.insts.iter().map(|i| i.hint).collect();
        assert_eq!(hints, back, "hints lost in the .asm round trip");
        assert!(
            text.contains(".wb."),
            "an annotated fuzz kernel should carry at least one non-default hint:\n{text}"
        );
    }
}
