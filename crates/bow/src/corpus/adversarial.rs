//! Hand-written SIMT-hazard kernels: the adversarial corpus stratum.
//!
//! Each kernel here is the GPU analogue of a *verifier gap*: a program a
//! CPU-style checker — linear scan, every read textually preceded by a
//! write, no model of divergence, barrier phases or write-back hints —
//! would wave through, but that the SIMT-aware `B001..B014` suite must
//! flag. The stratum exists to pin the lint suite's classification as a
//! regression surface: if a future refactor stops catching one of these,
//! the corpus tier fails before any distribution number shifts.
//!
//! Unlike generated strata, these kernels are linted **as authored**
//! ([`super::lint_as_authored`]): the hint pass is not re-run over them,
//! because one of them ships a deliberately unsound `.wb.boc` hint that
//! re-annotation would silently repair.
//!
//! Each row also carries the dynamic sanitizer finding kinds a sanitized
//! launch must report, so the cross-validation campaign can confirm every
//! planted hazard from the execution side as well as the static side.
//!
//! They are a lint population, not a performance population — the sweep
//! machinery never launches them (two would deadlock the barrier model
//! by construction).

use bow_isa::{CmpOp, Kernel, KernelBuilder, Operand, Pred, Reg, Special, WritebackHint};

/// The manifest stratum name.
pub const STRATUM: &str = "adversarial";

/// Result base the kernels store to (same region the fuzz corpus uses).
const OUT: u32 = 0x10_0000;

/// One adversarial case: a builder plus the machine-readable expectation
/// row — the static lint codes the verifier must raise on the as-authored
/// kernel and the finding kinds a sanitized launch must report. The
/// negative tests in this module and the cross-validation campaign
/// (`crate::sanitize_campaign`) consume the same rows, so the two halves
/// of the race-checking arsenal cannot drift apart silently.
#[derive(Clone, Copy)]
pub struct Adversarial {
    /// Kernel / manifest entry name.
    pub name: &'static str,
    /// The hazard, and why a CPU-style check misses it.
    pub description: &'static str,
    /// Every static code the as-authored lint report must contain. The
    /// corpus gate rejects the kernel with the first of these whose
    /// documented severity is deny-level and that is not a race code
    /// (B003/B015/B016 are the campaign's subject matter, not rejects).
    pub expect_static: &'static [&'static str],
    /// Sanitizer finding kinds ([`SanitizerFinding::kind`] tags) a
    /// sanitized launch must report — the dynamic confirmation of the
    /// static row.
    ///
    /// [`SanitizerFinding::kind`]: bow_sim::SanitizerFinding::kind
    pub expect_dynamic: &'static [&'static str],
    /// Builds the kernel.
    pub build: fn() -> Kernel,
}

fn r(i: u8) -> Reg {
    Reg::r(i)
}

fn p(i: u8) -> Pred {
    Pred::p(i)
}

/// `B001`: `r2` is written only on the taken arm of a diamond but read
/// after the join. A linear scan sees the write textually before the
/// read and accepts; must-init over the CFG does not.
fn b001_uninit_read() -> Kernel {
    KernelBuilder::new("adv_b001_uninit_read")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, p(0), r(1).into(), Operand::Imm(0))
        .ssy("join")
        .bra_if(p(0), false, "then")
        .bra("join")
        .label("then")
        .mov_imm(r(2), 7)
        .label("join")
        .sync()
        .iadd(r(3), r(2).into(), r(0).into())
        .mov_imm(r(4), OUT)
        .stg(r(4), 0, r(3).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B002`: a block-wide barrier on one arm of an open SSY region. Only
/// the odd threads arrive — a guaranteed deadlock a divergence-blind
/// checker cannot see.
fn b002_divergent_barrier() -> Kernel {
    KernelBuilder::new("adv_b002_divergent_barrier")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, p(0), r(1).into(), Operand::Imm(0))
        .ssy("join")
        .bra_if(p(0), false, "then")
        .bra("join")
        .label("then")
        .bar()
        .label("join")
        .sync()
        .mov_imm(r(2), OUT)
        .stg(r(2), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B002`: the same deadlock without any branch — a predicated `bar`
/// executes for half the warp only. Structurally a straight line, so
/// every CFG-shape check passes.
fn b002_predicated_barrier() -> Kernel {
    KernelBuilder::new("adv_b002_predicated_barrier")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, p(0), r(1).into(), Operand::Imm(0))
        .guard(p(0), false)
        .bar()
        .mov_imm(r(2), OUT)
        .stg(r(2), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B003`: thread `t` stores to its shared slot, then loads partner
/// `t^1`'s slot with no barrier in between — the classic missing-fence
/// exchange. Single-threaded replay (what a CPU checker models) returns
/// the right answer every time.
fn b003_shared_race() -> Kernel {
    KernelBuilder::new("adv_b003_shared_race")
        .shared_bytes(1024)
        .s2r(r(0), Special::TidX)
        .shl(r(1), r(0).into(), Operand::Imm(2))
        .sts(r(1), 0, r(0).into())
        .xor(r(2), r(0).into(), Operand::Imm(1))
        .shl(r(2), r(2).into(), Operand::Imm(2))
        .lds(r(3), r(2), 0)
        .bar()
        .mov_imm(r(4), OUT)
        .iadd(r(4), r(4).into(), r(1).into())
        .stg(r(4), 0, r(3).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B010`: a `.wb.boc` hint on a value read four slots later — beyond
/// the window-3 residency guarantee, so the register-file copy the hint
/// suppressed is the one the read needs. Hints are metadata a CPU-style
/// checker does not even parse.
fn b010_unsound_hint() -> Kernel {
    KernelBuilder::new("adv_b010_unsound_hint")
        .mov_imm(r(0), 5)
        .hint(WritebackHint::BocOnly)
        .nop()
        .nop()
        .nop()
        .nop()
        .mov_imm(r(1), OUT)
        .stg(r(1), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B011`: a `SYNC` with no enclosing `SSY` — popping an empty
/// reconvergence stack. No data-flow fact is wrong, only the divergence
/// structure, which is exactly what CPU-style checks do not track.
fn b011_broken_sync() -> Kernel {
    KernelBuilder::new("adv_b011_broken_sync")
        .s2r(r(0), Special::TidX)
        .sync()
        .mov_imm(r(1), OUT)
        .stg(r(1), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B015`: every thread stores its own tid to shared word 0 and reads it
/// straight back — the addresses provably coincide and the values
/// provably differ, so the race is definite, not a candidate. A
/// single-threaded replay (store, then load, same address) returns the
/// "right" answer every time.
fn b015_definite_race() -> Kernel {
    KernelBuilder::new("adv_b015_definite_race")
        .shared_bytes(64)
        .s2r(r(0), Special::TidX)
        .mov_imm(r(1), 0)
        .sts(r(1), 0, r(0).into())
        .lds(r(2), r(1), 0)
        .shl(r(3), r(0).into(), Operand::Imm(2))
        .mov_imm(r(4), OUT)
        .iadd(r(4), r(4).into(), r(3).into())
        .stg(r(4), 0, r(2).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B016`: a per-thread shared load with no store anywhere in the kernel
/// — every lane observes spawn-state zeros. A CPU-style scan does not
/// model shared memory at all, and every *register* read is preceded by
/// a write, so it accepts.
fn b016_uninit_shared() -> Kernel {
    KernelBuilder::new("adv_b016_uninit_shared")
        .shared_bytes(256)
        .s2r(r(0), Special::TidX)
        .shl(r(1), r(0).into(), Operand::Imm(2))
        .lds(r(2), r(1), 0)
        .mov_imm(r(3), OUT)
        .iadd(r(3), r(3).into(), r(1).into())
        .stg(r(3), 0, r(2).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// The full adversarial stratum, in manifest order.
pub fn all() -> Vec<Adversarial> {
    vec![
        Adversarial {
            name: "adv_b001_uninit_read",
            description: "maybe-uninitialized read after a divergent join",
            expect_static: &["B001"],
            expect_dynamic: &["uninit-reg"],
            build: b001_uninit_read,
        },
        Adversarial {
            name: "adv_b002_divergent_barrier",
            description: "block barrier on one arm of an open SSY region",
            expect_static: &["B002"],
            expect_dynamic: &["divergent-bar"],
            build: b002_divergent_barrier,
        },
        Adversarial {
            name: "adv_b002_predicated_barrier",
            description: "predicated block barrier in straight-line code",
            expect_static: &["B002"],
            expect_dynamic: &["divergent-bar"],
            build: b002_predicated_barrier,
        },
        Adversarial {
            name: "adv_b003_shared_race",
            description: "shared store → partner load with no separating barrier",
            expect_static: &["B003"],
            expect_dynamic: &["race"],
            build: b003_shared_race,
        },
        Adversarial {
            name: "adv_b010_unsound_hint",
            description: ".wb.boc hint on a value read beyond the window",
            expect_static: &["B010"],
            expect_dynamic: &["hint-violation"],
            build: b010_unsound_hint,
        },
        Adversarial {
            name: "adv_b011_broken_sync",
            description: "SYNC with no enclosing SSY",
            expect_static: &["B011"],
            expect_dynamic: &["broken-sync"],
            build: b011_broken_sync,
        },
        Adversarial {
            name: "adv_b015_definite_race",
            description: "shared store/load on one provably-coinciding word",
            expect_static: &["B015"],
            expect_dynamic: &["race"],
            build: b015_definite_race,
        },
        Adversarial {
            name: "adv_b016_uninit_shared",
            description: "shared load with no store anywhere in the kernel",
            expect_static: &["B016"],
            expect_dynamic: &["uninit-shared"],
            build: b016_uninit_shared,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::lint_as_authored;
    use bow_compiler::{lint_kernel, CtrlLatencies, LintOptions, Severity, LINT_DOCS};

    /// The CPU-style check the stratum is designed to slip past: linear
    /// scan, a read is fine if *any* earlier instruction wrote the
    /// register, no divergence / barrier-phase / hint model at all.
    fn naive_linear_check(k: &Kernel) -> bool {
        let mut written = [false; 256];
        for inst in &k.insts {
            for s in inst.unique_src_regs() {
                if !written[s.index() as usize] {
                    return false;
                }
            }
            if let Some(d) = inst.dst_reg() {
                written[d.index() as usize] = true;
            }
        }
        true
    }

    #[test]
    fn every_hazard_slips_past_the_naive_cpu_check() {
        for adv in all() {
            let k = (adv.build)();
            assert!(
                naive_linear_check(&k),
                "{}: must look clean to a linear CPU-style scan",
                adv.name
            );
        }
    }

    fn as_authored_opts() -> LintOptions {
        LintOptions {
            window: 3,
            check_hints: true,
            latencies: CtrlLatencies::default(),
        }
    }

    /// The documented severity of a code, from the `--explain` doc table.
    fn doc_severity(code: &str) -> Severity {
        let doc = LINT_DOCS
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{code} missing from LINT_DOCS"));
        match doc.severity {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "info" => Severity::Info,
            other => panic!("unknown documented severity {other:?}"),
        }
    }

    #[test]
    fn the_simt_suite_classifies_every_hazard() {
        for adv in all() {
            let k = (adv.build)();
            let report = lint_kernel(&k, &as_authored_opts());
            for code in adv.expect_static {
                assert!(
                    report
                        .diagnostics
                        .iter()
                        .any(|d| d.code == *code && d.severity == doc_severity(code)),
                    "{}: expected {code} at its documented severity, got:\n{:?}",
                    adv.name,
                    report.diagnostics
                );
            }
        }
    }

    #[test]
    fn the_corpus_gate_rejects_exactly_the_non_race_deny_hazards() {
        // The gate's verdict is derivable from the expectation table: the
        // first expected code that is deny-severity and not a race code.
        // Race rows (B003/B015/B016) stay retained — they are the
        // sanitizer campaign's subject matter.
        for adv in all() {
            let k = (adv.build)();
            let want = adv.expect_static.iter().copied().find(|c| {
                doc_severity(c) != Severity::Info && *c != "B003" && *c != "B015" && *c != "B016"
            });
            assert_eq!(
                lint_as_authored(&k),
                want,
                "{}: gate verdict disagrees with the expectation table",
                adv.name
            );
        }
    }

    #[test]
    fn reannotation_would_hide_the_unsound_hint() {
        // Negative path: the gate for generated kernels (annotate, then
        // lint) must NOT be used for this stratum — re-running the hint
        // pass repairs the planted B010 and the hazard vanishes.
        let k = b010_unsound_hint();
        assert_eq!(lint_as_authored(&k), Some("B010"));
        assert_eq!(crate::corpus::lint_gate(&k), None);
    }

    #[test]
    fn diagnostics_land_on_the_hazard_instruction() {
        let k = b002_predicated_barrier();
        let report = lint_kernel(
            &k,
            &LintOptions {
                window: 3,
                check_hints: true,
                latencies: CtrlLatencies::default(),
            },
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "B002")
            .expect("B002 raised");
        assert_eq!(
            d.pc,
            Some(3),
            "the guarded bar (pc 3) is the flagged instruction"
        );
    }
}
