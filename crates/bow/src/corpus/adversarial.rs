//! Hand-written SIMT-hazard kernels: the adversarial corpus stratum.
//!
//! Each kernel here is the GPU analogue of a *verifier gap*: a program a
//! CPU-style checker — linear scan, every read textually preceded by a
//! write, no model of divergence, barrier phases or write-back hints —
//! would wave through, but that the SIMT-aware `B001..B014` suite must
//! flag. The stratum exists to pin the lint suite's classification as a
//! regression surface: if a future refactor stops catching one of these,
//! the corpus tier fails before any distribution number shifts.
//!
//! Unlike generated strata, these kernels are linted **as authored**
//! ([`super::lint_as_authored`]): the hint pass is not re-run over them,
//! because one of them ships a deliberately unsound `.wb.boc` hint that
//! re-annotation would silently repair.
//!
//! They are a lint population, not a performance population — the sweep
//! machinery never launches them (two would deadlock the barrier model
//! by construction).

use bow_isa::{CmpOp, Kernel, KernelBuilder, Operand, Pred, Reg, Special, WritebackHint};

/// The manifest stratum name.
pub const STRATUM: &str = "adversarial";

/// Result base the kernels store to (same region the fuzz corpus uses).
const OUT: u32 = 0x10_0000;

/// One adversarial case: a builder plus the classification the verifier
/// must produce.
#[derive(Clone, Copy)]
pub struct Adversarial {
    /// Kernel / manifest entry name.
    pub name: &'static str,
    /// The hazard, and why a CPU-style check misses it.
    pub description: &'static str,
    /// Primary non-info diagnostic the suite must raise; `None` means
    /// the hazard is advisory-only and the kernel stays retained.
    pub expect: Option<&'static str>,
    /// Advisory code that must still appear when `expect` is `None`.
    pub expect_info: Option<&'static str>,
    /// Builds the kernel.
    pub build: fn() -> Kernel,
}

fn r(i: u8) -> Reg {
    Reg::r(i)
}

fn p(i: u8) -> Pred {
    Pred::p(i)
}

/// `B001`: `r2` is written only on the taken arm of a diamond but read
/// after the join. A linear scan sees the write textually before the
/// read and accepts; must-init over the CFG does not.
fn b001_uninit_read() -> Kernel {
    KernelBuilder::new("adv_b001_uninit_read")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, p(0), r(1).into(), Operand::Imm(0))
        .ssy("join")
        .bra_if(p(0), false, "then")
        .bra("join")
        .label("then")
        .mov_imm(r(2), 7)
        .label("join")
        .sync()
        .iadd(r(3), r(2).into(), r(0).into())
        .mov_imm(r(4), OUT)
        .stg(r(4), 0, r(3).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B002`: a block-wide barrier on one arm of an open SSY region. Only
/// the odd threads arrive — a guaranteed deadlock a divergence-blind
/// checker cannot see.
fn b002_divergent_barrier() -> Kernel {
    KernelBuilder::new("adv_b002_divergent_barrier")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, p(0), r(1).into(), Operand::Imm(0))
        .ssy("join")
        .bra_if(p(0), false, "then")
        .bra("join")
        .label("then")
        .bar()
        .label("join")
        .sync()
        .mov_imm(r(2), OUT)
        .stg(r(2), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B002`: the same deadlock without any branch — a predicated `bar`
/// executes for half the warp only. Structurally a straight line, so
/// every CFG-shape check passes.
fn b002_predicated_barrier() -> Kernel {
    KernelBuilder::new("adv_b002_predicated_barrier")
        .s2r(r(0), Special::TidX)
        .and(r(1), r(0).into(), Operand::Imm(1))
        .isetp(CmpOp::Ne, p(0), r(1).into(), Operand::Imm(0))
        .guard(p(0), false)
        .bar()
        .mov_imm(r(2), OUT)
        .stg(r(2), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B003`: thread `t` stores to its shared slot, then loads partner
/// `t^1`'s slot with no barrier in between — the classic missing-fence
/// exchange. Single-threaded replay (what a CPU checker models) returns
/// the right answer every time.
fn b003_shared_race() -> Kernel {
    KernelBuilder::new("adv_b003_shared_race")
        .shared_bytes(1024)
        .s2r(r(0), Special::TidX)
        .shl(r(1), r(0).into(), Operand::Imm(2))
        .sts(r(1), 0, r(0).into())
        .xor(r(2), r(0).into(), Operand::Imm(1))
        .shl(r(2), r(2).into(), Operand::Imm(2))
        .lds(r(3), r(2), 0)
        .bar()
        .mov_imm(r(4), OUT)
        .iadd(r(4), r(4).into(), r(1).into())
        .stg(r(4), 0, r(3).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B010`: a `.wb.boc` hint on a value read four slots later — beyond
/// the window-3 residency guarantee, so the register-file copy the hint
/// suppressed is the one the read needs. Hints are metadata a CPU-style
/// checker does not even parse.
fn b010_unsound_hint() -> Kernel {
    KernelBuilder::new("adv_b010_unsound_hint")
        .mov_imm(r(0), 5)
        .hint(WritebackHint::BocOnly)
        .nop()
        .nop()
        .nop()
        .nop()
        .mov_imm(r(1), OUT)
        .stg(r(1), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// `B011`: a `SYNC` with no enclosing `SSY` — popping an empty
/// reconvergence stack. No data-flow fact is wrong, only the divergence
/// structure, which is exactly what CPU-style checks do not track.
fn b011_broken_sync() -> Kernel {
    KernelBuilder::new("adv_b011_broken_sync")
        .s2r(r(0), Special::TidX)
        .sync()
        .mov_imm(r(1), OUT)
        .stg(r(1), 0, r(0).into())
        .exit()
        .build()
        .expect("adversarial kernel builds")
}

/// The full adversarial stratum, in manifest order.
pub fn all() -> Vec<Adversarial> {
    vec![
        Adversarial {
            name: "adv_b001_uninit_read",
            description: "maybe-uninitialized read after a divergent join",
            expect: Some("B001"),
            expect_info: None,
            build: b001_uninit_read,
        },
        Adversarial {
            name: "adv_b002_divergent_barrier",
            description: "block barrier on one arm of an open SSY region",
            expect: Some("B002"),
            expect_info: None,
            build: b002_divergent_barrier,
        },
        Adversarial {
            name: "adv_b002_predicated_barrier",
            description: "predicated block barrier in straight-line code",
            expect: Some("B002"),
            expect_info: None,
            build: b002_predicated_barrier,
        },
        Adversarial {
            name: "adv_b003_shared_race",
            description: "shared store → partner load with no separating barrier",
            expect: None,
            expect_info: Some("B003"),
            build: b003_shared_race,
        },
        Adversarial {
            name: "adv_b010_unsound_hint",
            description: ".wb.boc hint on a value read beyond the window",
            expect: Some("B010"),
            expect_info: None,
            build: b010_unsound_hint,
        },
        Adversarial {
            name: "adv_b011_broken_sync",
            description: "SYNC with no enclosing SSY",
            expect: Some("B011"),
            expect_info: None,
            build: b011_broken_sync,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::lint_as_authored;
    use bow_compiler::{lint_kernel, CtrlLatencies, LintOptions, Severity};

    /// The CPU-style check the stratum is designed to slip past: linear
    /// scan, a read is fine if *any* earlier instruction wrote the
    /// register, no divergence / barrier-phase / hint model at all.
    fn naive_linear_check(k: &Kernel) -> bool {
        let mut written = [false; 256];
        for inst in &k.insts {
            for s in inst.unique_src_regs() {
                if !written[s.index() as usize] {
                    return false;
                }
            }
            if let Some(d) = inst.dst_reg() {
                written[d.index() as usize] = true;
            }
        }
        true
    }

    #[test]
    fn every_hazard_slips_past_the_naive_cpu_check() {
        for adv in all() {
            let k = (adv.build)();
            assert!(
                naive_linear_check(&k),
                "{}: must look clean to a linear CPU-style scan",
                adv.name
            );
        }
    }

    #[test]
    fn the_simt_suite_classifies_every_hazard() {
        for adv in all() {
            let k = (adv.build)();
            let primary = lint_as_authored(&k);
            assert_eq!(
                primary, adv.expect,
                "{}: expected primary diagnostic {:?}, got {:?}",
                adv.name, adv.expect, primary
            );
            if let Some(info) = adv.expect_info {
                let report = lint_kernel(
                    &k,
                    &LintOptions {
                        window: 3,
                        check_hints: true,
                        latencies: CtrlLatencies::default(),
                    },
                );
                assert!(
                    report
                        .diagnostics
                        .iter()
                        .any(|d| d.code == info && d.severity == Severity::Info),
                    "{}: advisory {info} must still be reported",
                    adv.name
                );
            }
        }
    }

    #[test]
    fn reannotation_would_hide_the_unsound_hint() {
        // Negative path: the gate for generated kernels (annotate, then
        // lint) must NOT be used for this stratum — re-running the hint
        // pass repairs the planted B010 and the hazard vanishes.
        let k = b010_unsound_hint();
        assert_eq!(lint_as_authored(&k), Some("B010"));
        assert_eq!(crate::corpus::lint_gate(&k), None);
    }

    #[test]
    fn diagnostics_land_on_the_hazard_instruction() {
        let k = b002_predicated_barrier();
        let report = lint_kernel(
            &k,
            &LintOptions {
                window: 3,
                check_hints: true,
                latencies: CtrlLatencies::default(),
            },
        );
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "B002")
            .expect("B002 raised");
        assert_eq!(
            d.pc,
            Some(3),
            "the guarded bar (pc 3) is the flagged instruction"
        );
    }
}
