//! The parallel experiment sweep engine.
//!
//! Every figure and table in the paper is a (benchmark × configuration)
//! matrix: 15 workloads each simulated under a handful of GPU configs.
//! The cells are completely independent timing simulations, so this
//! module runs them concurrently on a std-only work-stealing thread pool
//! while keeping the *results* in deterministic matrix order — a sweep at
//! `--jobs 8` produces cell-for-cell identical [`RunRecord`]s (and
//! byte-identical rendered tables) to `--jobs 1`.
//!
//! ```no_run
//! use bow::experiment::ConfigBuilder;
//! use bow::suite::Suite;
//! use bow::workloads::Scale;
//!
//! let result = Suite::new(Scale::Test)
//!     .config(ConfigBuilder::baseline().build())
//!     .config(ConfigBuilder::bow_wr(3).build())
//!     .jobs(0) // 0 = all cores
//!     .run();
//! let speedup = bow::suite::SweepResult::geomean_ratio(
//!     result.row(1).records(),
//!     result.row(0).records(),
//! );
//! println!("BOW-WR speedup: {speedup:.3}x in {:.1}s", result.wall.as_secs_f64());
//! ```
//!
//! Compiler-pass output is memoized per (benchmark, scheduler, hints,
//! window): a BOW-WR window sweep annotates each kernel once per window,
//! and every non-hinted configuration of a benchmark shares one prepared
//! kernel, instead of re-running the passes for every cell.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::IsTerminal;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::experiment::{prepare_kernel, run_prepared, Config, RunRecord};
use bow_compiler::CompilerReport;
use bow_isa::Kernel;
use bow_util::json::{DecodeError, Json};
use bow_workloads::{by_name, suite as paper_suite, Benchmark, Scale};

/// Memoization key for prepared kernels: benchmark index plus the
/// compiler-relevant part of the configuration. The window only matters
/// when the hint pass runs (it parameterizes `annotate`), so non-hinted
/// configs collapse onto window 0 and share one entry. The core model
/// (control-bits sidecar) and divergence model (barrier lowering) both
/// change `prepare_kernel`'s output, so mixed-model sweeps keep separate
/// entries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PrepKey {
    bench: usize,
    reorder: bool,
    hints: bool,
    window: u32,
    core_model: bow_sim::CoreModelKind,
    divergence: bow_sim::DivergenceModel,
}

impl PrepKey {
    fn of(bench: usize, config: &Config) -> PrepKey {
        PrepKey {
            bench,
            reorder: config.reorder,
            hints: config.hints,
            window: if config.hints {
                config.gpu.collector.window().unwrap_or(3)
            } else {
                0
            },
            core_model: config.gpu.core_model,
            divergence: config.gpu.divergence,
        }
    }
}

type Prepared = Arc<(Kernel, Option<CompilerReport>)>;

/// A (benchmark × configuration) sweep, built up fluently and executed
/// with [`run`](Suite::run).
pub struct Suite {
    benches: Vec<Box<dyn Benchmark>>,
    configs: Vec<Config>,
    jobs: usize,
    sim_threads: Option<u32>,
    progress: Option<bool>,
}

impl Suite {
    /// A sweep over the paper's full Table III suite at `scale`.
    pub fn new(scale: Scale) -> Suite {
        Suite::over(paper_suite(scale))
    }

    /// A sweep over an explicit benchmark list.
    pub fn over(benches: Vec<Box<dyn Benchmark>>) -> Suite {
        Suite {
            benches,
            configs: Vec::new(),
            jobs: 0,
            sim_threads: None,
            progress: None,
        }
    }

    /// A sweep over a single named benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the Table III suite.
    pub fn benchmark(name: &str, scale: Scale) -> Suite {
        let b = by_name(name, scale)
            .unwrap_or_else(|| panic!("no benchmark named {name:?} in the suite"));
        Suite::over(vec![b])
    }

    /// Adds one configuration column.
    pub fn config(mut self, config: Config) -> Suite {
        self.configs.push(config);
        self
    }

    /// Adds several configuration columns.
    pub fn configs(mut self, configs: impl IntoIterator<Item = Config>) -> Suite {
        self.configs.extend(configs);
        self
    }

    /// Sets the sweep's global thread budget. `0` (the default) means one
    /// thread per available core; `1` runs the sweep serially on the
    /// calling thread. Without [`sim_threads`](Suite::sim_threads) the
    /// whole budget goes to sweep-level workers (one cell each).
    pub fn jobs(mut self, jobs: usize) -> Suite {
        self.jobs = jobs;
        self
    }

    /// Threads each *launch* shards its SM pipelines across (the
    /// intra-run parallel engine, [`bow_sim::parallel`]), overriding
    /// every configuration's own `sim_threads`. The global budget set by
    /// [`jobs`](Suite::jobs) is split between the two layers: with
    /// per-launch threads `T` the pool runs `max(1, budget / T)` sweep
    /// workers, so `workers × T` never exceeds the budget. `0` gives each
    /// launch the whole budget (sweep cells then run one at a time).
    /// Results are byte-identical for every split — both layers are
    /// deterministic — so this is purely a throughput trade-off: many
    /// small cells favour sweep-level workers, few huge full-chip cells
    /// favour intra-run threads.
    pub fn sim_threads(mut self, threads: u32) -> Suite {
        self.sim_threads = Some(threads);
        self
    }

    /// Forces per-cell progress lines (written to stderr) on or off. The
    /// default prints them only when stderr is a terminal, so redirected
    /// table output stays byte-identical with or without a TTY.
    pub fn progress(mut self, on: bool) -> Suite {
        self.progress = Some(on);
        self
    }

    /// Executes every cell and returns the results in matrix order —
    /// one [`ConfigRow`] per configuration, records within a row in
    /// benchmark order — regardless of worker count or completion order.
    pub fn run(self) -> SweepResult {
        let start = Instant::now();
        let Suite {
            benches,
            mut configs,
            jobs,
            sim_threads,
            progress,
        } = self;
        let progress = progress.unwrap_or_else(|| std::io::stderr().is_terminal());
        let n_benches = benches.len();
        let total = n_benches * configs.len();

        // Split the global thread budget between sweep workers and each
        // launch's intra-run engine (see `Suite::sim_threads`).
        let budget = effective_jobs(jobs);
        let sweep_workers = match sim_threads {
            None => budget,
            Some(t) => {
                let per_launch = if t == 0 { budget } else { t as usize }.max(1);
                for c in &mut configs {
                    c.gpu.sim_threads = per_launch as u32;
                }
                (budget / per_launch).max(1)
            }
        };

        // Cell c = (config index, benchmark index), row-major.
        let cells: Vec<(usize, usize)> = (0..configs.len())
            .flat_map(|ci| (0..n_benches).map(move |bi| (ci, bi)))
            .collect();

        // Memoize the compiler passes per distinct (benchmark, reorder,
        // hints, window) before fanning out: the passes are pure and
        // cheap next to a timing simulation, and precomputing keeps every
        // worker's view of the prepared kernels identical.
        let mut prepared: HashMap<PrepKey, Prepared> = HashMap::new();
        for &(ci, bi) in &cells {
            prepared
                .entry(PrepKey::of(bi, &configs[ci]))
                .or_insert_with(|| Arc::new(prepare_kernel(benches[bi].as_ref(), &configs[ci])));
        }

        let workers = sweep_workers.min(total.max(1));
        let mut slots: Vec<Option<(RunRecord, Duration)>> = Vec::new();
        slots.resize_with(total, || None);

        let run_cell = |cell: usize| -> (RunRecord, Duration) {
            let (ci, bi) = cells[cell];
            let prep = &prepared[&PrepKey::of(bi, &configs[ci])];
            let t0 = Instant::now();
            let rec = run_prepared(benches[bi].as_ref(), &configs[ci], &prep.0, prep.1.clone());
            (rec, t0.elapsed())
        };
        let report = |done: usize, rec: &RunRecord, wall: Duration| {
            if progress {
                eprintln!(
                    "[{done:>3}/{total}] {:<12} {:<18} ipc {:<6.3} {:>7.2?}",
                    rec.benchmark,
                    rec.label,
                    rec.ipc(),
                    wall
                );
            }
        };

        for (cell, result) in map_parallel(total, workers, &run_cell, |done, (rec, wall)| {
            report(done, rec, *wall);
        })
        .into_iter()
        .enumerate()
        {
            slots[cell] = Some(result);
        }

        let mut rows: Vec<ConfigRow> = configs
            .iter()
            .map(|c| ConfigRow {
                label: c.label.clone(),
                records: Vec::with_capacity(n_benches),
                wall: Vec::with_capacity(n_benches),
            })
            .collect();
        for (cell, slot) in slots.into_iter().enumerate() {
            let (rec, wall) = slot.expect("every sweep cell completes");
            let row = &mut rows[cells[cell].0];
            row.records.push(rec);
            row.wall.push(wall);
        }
        SweepResult {
            rows,
            jobs: workers,
            wall: start.elapsed(),
        }
    }
}

/// Runs `run(0..total)` across `workers` threads on the work-stealing
/// pool and returns the results in index order, regardless of worker
/// count or completion order. `report` fires once per completed task (in
/// completion order, 1-based) — the progress hook.
///
/// Each worker owns a deque seeded round-robin; it pops its own work from
/// the front and steals from the back of the busiest neighbour when
/// empty. The task set is fixed up-front, so a worker that finds every
/// deque empty can retire. Results flow back over a channel tagged with
/// their task index and are reassembled positionally.
pub(crate) fn map_parallel<T, F, R>(total: usize, workers: usize, run: &F, mut report: R) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(usize, &T),
{
    if workers <= 1 {
        return (0..total)
            .map(|i| {
                let r = run(i);
                report(i + 1, &r);
                r
            })
            .collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(total, || None);
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for task in 0..total {
        queues[task % workers].lock().unwrap().push_back(task);
    }
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            scope.spawn(move || {
                while let Some(task) = next_task(queues, me) {
                    let r = run(task);
                    // The receiver outlives the scope; a send only fails
                    // if the main thread already panicked.
                    if tx.send((task, r)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (done, (task, r)) in rx.iter().enumerate() {
            report(done + 1, &r);
            slots[task] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every pool task completes"))
        .collect()
}

/// Resolves a jobs request: `0` means all available cores.
pub(crate) fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Pops the next task: own queue front first, then the longest other
/// queue's back. Returns `None` when every queue is empty — tasks are
/// only enqueued before the pool starts, so empty-everywhere is final.
fn next_task(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(cell) = queues[me].lock().unwrap().pop_front() {
        return Some(cell);
    }
    let victim = (0..queues.len())
        .filter(|&v| v != me)
        .max_by_key(|&v| queues[v].lock().unwrap().len())?;
    queues[victim].lock().unwrap().pop_back()
}

/// One configuration's row of a completed sweep: records (and per-cell
/// wall-clock times) in benchmark order.
#[derive(Clone, Debug)]
pub struct ConfigRow {
    /// The configuration label.
    pub label: String,
    /// One record per benchmark, in suite order.
    pub records: Vec<RunRecord>,
    /// Wall-clock time of each cell's simulation, parallel to `records`.
    pub wall: Vec<Duration>,
}

impl ConfigRow {
    /// The row's records as a slice (for the table/geomean helpers).
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// The row as a schema-v1 JSON object: the config label plus one cell
    /// per benchmark. Each cell is the full [`RunRecord`] document with
    /// its wall time appended (`wall_nanos` is authoritative;
    /// `wall_seconds` is a derived convenience field).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::from(self.label.as_str())),
            (
                "cells",
                Json::Arr(
                    self.records
                        .iter()
                        .zip(&self.wall)
                        .map(|(rec, wall)| {
                            let mut cell = rec.to_json();
                            if let Json::Obj(fields) = &mut cell {
                                fields.push((
                                    "wall_nanos".to_string(),
                                    Json::from(wall.as_nanos() as u64),
                                ));
                                fields.push((
                                    "wall_seconds".to_string(),
                                    Json::from(wall.as_secs_f64()),
                                ));
                            }
                            cell
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a row from the object [`ConfigRow::to_json`] writes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for a missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<ConfigRow, DecodeError> {
        let mut records = Vec::new();
        let mut wall = Vec::new();
        for cell in v.req_arr("cells")? {
            records.push(RunRecord::from_json(cell).map_err(|e| e.context("cells"))?);
            wall.push(Duration::from_nanos(cell.req_u64("wall_nanos")?));
        }
        Ok(ConfigRow {
            label: v.req_str("config")?.to_string(),
            records,
            wall,
        })
    }
}

/// A completed sweep: one [`ConfigRow`] per configuration, in the order
/// the configurations were added.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Rows in configuration order.
    pub rows: Vec<ConfigRow>,
    /// Worker count the sweep actually ran with.
    pub jobs: usize,
    /// Total wall-clock time of the sweep.
    pub wall: Duration,
}

impl SweepResult {
    /// The row at `index` (configuration order).
    pub fn row(&self, index: usize) -> &ConfigRow {
        &self.rows[index]
    }

    /// Looks a row up by configuration label.
    pub fn records(&self, label: &str) -> Option<&[RunRecord]> {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.records())
    }

    /// All records in matrix order (row by row).
    pub fn all_records(&self) -> impl Iterator<Item = &RunRecord> {
        self.rows.iter().flat_map(|r| r.records.iter())
    }

    /// Panics if any cell failed its functional reference check.
    pub fn assert_checked(&self) -> &SweepResult {
        for rec in self.all_records() {
            rec.assert_checked();
        }
        self
    }

    /// Sum of per-cell simulation times — the serial-equivalent cost the
    /// pool amortized over its workers.
    pub fn cell_time(&self) -> Duration {
        self.rows.iter().flat_map(|r| r.wall.iter()).sum()
    }

    /// Geometric-mean ratio of per-benchmark IPC between two rows
    /// (e.g. a design row over the baseline row).
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths or are empty.
    pub fn geomean_ratio(num: &[RunRecord], den: &[RunRecord]) -> f64 {
        assert!(!num.is_empty() && num.len() == den.len(), "rows must align");
        let log_sum: f64 = num
            .iter()
            .zip(den)
            .map(|(n, d)| (n.ipc() / d.ipc()).ln())
            .sum();
        (log_sum / num.len() as f64).exp()
    }

    /// The sweep as one schema-v1 JSON document: version tag, sweep-level
    /// metadata and per-row cell records (each with its wall time). Field
    /// names and order are part of the versioned contract (pinned by the
    /// `schema_v1` golden snapshot); any change must bump
    /// [`SCHEMA_VERSION`](crate::experiment::SCHEMA_VERSION).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "schema_version",
                Json::from(crate::experiment::SCHEMA_VERSION),
            ),
            ("jobs", Json::from(self.jobs)),
            ("wall_nanos", Json::from(self.wall.as_nanos() as u64)),
            ("wall_seconds", Json::from(self.wall.as_secs_f64())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(ConfigRow::to_json).collect()),
            ),
        ])
    }

    /// Decodes a sweep from the document [`SweepResult::to_json`] writes.
    /// Strict on every stored field (`wall_seconds` is derived from
    /// `wall_nanos`, not read), so a decoded sweep re-serializes
    /// byte-identically.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for a missing/mistyped field or an
    /// unsupported `schema_version`.
    pub fn from_json(v: &Json) -> Result<SweepResult, DecodeError> {
        let version = v.req_u64("schema_version")?;
        if version != crate::experiment::SCHEMA_VERSION {
            return Err(DecodeError::new(format!(
                "unsupported schema_version {version} (expected {})",
                crate::experiment::SCHEMA_VERSION
            )));
        }
        Ok(SweepResult {
            rows: v
                .req_arr("rows")?
                .iter()
                .map(|row| ConfigRow::from_json(row).map_err(|e| e.context("rows")))
                .collect::<Result<Vec<_>, _>>()?,
            jobs: v.req_u64("jobs")? as usize,
            wall: Duration::from_nanos(v.req_u64("wall_nanos")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ConfigBuilder;

    fn small() -> Vec<Box<dyn Benchmark>> {
        ["vectoradd", "lps", "sto"]
            .iter()
            .map(|n| by_name(n, Scale::Test).expect("suite benchmark"))
            .collect()
    }

    fn three_configs() -> Vec<Config> {
        vec![
            ConfigBuilder::baseline().build(),
            ConfigBuilder::bow(3).build(),
            ConfigBuilder::bow_wr(3).build(),
        ]
    }

    #[test]
    fn sweep_preserves_matrix_order() {
        let result = Suite::over(small())
            .configs(three_configs())
            .jobs(4)
            .progress(false)
            .run();
        assert_eq!(result.rows.len(), 3);
        let labels: Vec<&str> = result.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["baseline", "bow iw3", "bow-wr iw3"]);
        for row in &result.rows {
            let names: Vec<&str> = row.records.iter().map(|r| r.benchmark.as_str()).collect();
            assert_eq!(names, ["vectoradd", "lps", "sto"]);
            assert_eq!(row.wall.len(), row.records.len());
        }
        result.assert_checked();
    }

    #[test]
    fn parallel_sweep_matches_serial_cell_for_cell() {
        let serial = Suite::over(small())
            .configs(three_configs())
            .jobs(1)
            .progress(false)
            .run();
        let parallel = Suite::over(small())
            .configs(three_configs())
            .jobs(8)
            .progress(false)
            .run();
        assert_eq!(parallel.rows.len(), serial.rows.len());
        for (p, s) in parallel.rows.iter().zip(&serial.rows) {
            assert_eq!(p.label, s.label);
            for (pr, sr) in p.records.iter().zip(&s.records) {
                assert_eq!(pr.benchmark, sr.benchmark);
                assert_eq!(pr.label, sr.label);
                assert_eq!(pr.outcome.result.cycles, sr.outcome.result.cycles);
                assert_eq!(pr.outcome.result.stats, sr.outcome.result.stats);
                assert_eq!(pr.outcome.result.windows, sr.outcome.result.windows);
                assert_eq!(pr.compiler, sr.compiler);
            }
        }
    }

    #[test]
    fn intra_run_threads_leave_results_byte_identical() {
        let plain = Suite::over(small())
            .configs(three_configs())
            .jobs(1)
            .progress(false)
            .run();
        // Budget 4 split as 2 launch threads × 2 sweep workers: every
        // cell now runs the threaded windowed engine.
        let split = Suite::over(small())
            .configs(three_configs())
            .jobs(4)
            .sim_threads(2)
            .progress(false)
            .run();
        assert_eq!(split.jobs, 2, "budget 4 / 2 per launch = 2 workers");
        for (p, s) in split.rows.iter().zip(&plain.rows) {
            for (pr, sr) in p.records.iter().zip(&s.records) {
                assert_eq!(pr.outcome.result.cycles, sr.outcome.result.cycles);
                assert_eq!(pr.outcome.result.stats, sr.outcome.result.stats);
                assert_eq!(pr.outcome.result.per_sm, sr.outcome.result.per_sm);
            }
        }
        // `0` hands each launch the whole budget: cells run one at a time.
        let solo = Suite::benchmark("vectoradd", Scale::Test)
            .config(ConfigBuilder::baseline().build())
            .jobs(4)
            .sim_threads(0)
            .progress(false)
            .run();
        assert_eq!(solo.jobs, 1);
    }

    #[test]
    fn single_benchmark_sweep() {
        let result = Suite::benchmark("vectoradd", Scale::Test)
            .config(ConfigBuilder::baseline().build())
            .jobs(1)
            .progress(false)
            .run();
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].records.len(), 1);
        assert_eq!(result.records("baseline").map(<[RunRecord]>::len), Some(1));
        assert!(result.records("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "no benchmark named")]
    fn unknown_benchmark_panics() {
        let _ = Suite::benchmark("nope", Scale::Test);
    }

    #[test]
    fn geomean_ratio_of_identical_rows_is_one() {
        let result = Suite::over(small())
            .config(ConfigBuilder::baseline().build())
            .jobs(2)
            .progress(false)
            .run();
        let row = result.row(0).records();
        let g = SweepResult::geomean_ratio(row, row);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_json_has_one_cell_per_record() {
        let result = Suite::over(small())
            .configs(three_configs())
            .jobs(2)
            .progress(false)
            .run();
        let doc = result.to_json();
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 3);
        for row in rows {
            let cells = row.get("cells").and_then(Json::as_arr).expect("cells");
            assert_eq!(cells.len(), 3);
            for cell in cells {
                assert!(cell.get("wall_seconds").and_then(Json::as_f64).is_some());
            }
        }
        assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn memoization_key_collapses_unhinted_windows() {
        let base = ConfigBuilder::baseline().build();
        let bow2 = ConfigBuilder::bow(2).build();
        let bow7 = ConfigBuilder::bow(7).build();
        // No hint pass runs for plain BOW, so all windows share a key.
        assert_eq!(PrepKey::of(0, &base), PrepKey::of(0, &bow2));
        assert_eq!(PrepKey::of(0, &bow2), PrepKey::of(0, &bow7));
        // With hints the window parameterizes the pass and must split.
        let wr2 = ConfigBuilder::bow_wr(2).build();
        let wr7 = ConfigBuilder::bow_wr(7).build();
        assert_ne!(PrepKey::of(0, &wr2), PrepKey::of(0, &wr7));
        assert_ne!(PrepKey::of(0, &wr2), PrepKey::of(1, &wr2));
    }
}
