//! The stratified thousand-kernel corpus.
//!
//! Every headline number in the reproduction used to rest on 15
//! hand-written workloads. This module scales the workload axis: it
//! drives the steerable fuzz generator ([`bow_isa::fuzz::GenParams`])
//! across stratified buckets of the paper's own analysis axes — register
//! pressure, operand reuse distance, branch divergence, memory-op
//! density — characterizes every candidate statically
//! ([`bow_compiler::characterize`]), rejects anything the `B001..B014`
//! lint suite is not clean on, and persists a deterministic manifest so
//! the whole population is reproducible from seeds alone (no kernel
//! binaries are ever checked in).
//!
//! The corpus then feeds the standard sweep machinery: [`sweep`] runs
//! collectors × kernels through the same [`Suite`] pool the Table III
//! benchmarks use, with every retained kernel checked against the
//! independent host evaluator, and [`distribution_json`] reduces the
//! records to per-stratum bypass-opportunity and IPC-gain distributions
//! (median/p10/p90) — the population view of Figs. 3 and 10.
//!
//! Determinism contract: [`generate`] is a pure function of
//! `(seed, count)`. The manifest JSON is byte-identical across runs and
//! machines — every field is an integer, string or bool, and per-kernel
//! seeds are derived by position, never by wall clock or thread timing.

use crate::experiment::{Config, ConfigBuilder, GpuModel};
use crate::suite::{Suite, SweepResult};
use bow_compiler::{
    characterize, emit_ctrl, lint_kernel, CtrlLatencies, KernelTraits, LintOptions,
};
use bow_isa::fuzz::{FuzzKernel, GenParams, INPUT_BASE, PARAMS};
use bow_isa::{encode_kernel, Kernel};
use bow_sim::{CoreModelKind, DivergenceModel, Gpu, OracleCheck};
use bow_util::hash::sha256_hex;
use bow_util::json::{DecodeError, Json};
use bow_util::XorShift;
use bow_workloads::{Benchmark, RunOutcome};

pub mod adversarial;

/// Manifest schema version; bumped on any layout change.
pub const MANIFEST_VERSION: u64 = 1;

/// Default master seed of the corpus (`bow-cli corpus gen --seed`).
pub const DEFAULT_SEED: u64 = 0x0c09_95ee_d000_0001;

/// Default corpus size (`bow-cli corpus gen --count`).
pub const DEFAULT_COUNT: usize = 1000;

/// Per-kernel seed mixer (same spirit as the fuzzer's golden ratio).
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Hint window every corpus kernel is annotated and linted at.
pub(crate) const WINDOW: u32 = 3;

/// One generation stratum: a named point in the generator's parameter
/// space plus the statement budget drawn at.
#[derive(Clone, Copy, Debug)]
pub struct StratumDef {
    /// Stable stratum name (a manifest key).
    pub name: &'static str,
    /// What the stratum stresses.
    pub description: &'static str,
    /// Generator knobs.
    pub params: GenParams,
    /// Statement budget per kernel.
    pub budget: usize,
}

/// The generated strata, one or two per paper axis plus a mixed control.
/// The adversarial stratum (hand-written SIMT hazards) is separate — see
/// [`adversarial`].
pub fn strata() -> Vec<StratumDef> {
    let d = GenParams::default();
    vec![
        StratumDef {
            name: "mixed",
            description: "the classic fuzzer distribution (control group)",
            params: d,
            budget: 24,
        },
        StratumDef {
            name: "regs-low",
            description: "register pressure low: two data registers in play",
            params: GenParams {
                active_regs: 2,
                ..d
            },
            budget: 24,
        },
        StratumDef {
            name: "regs-high",
            description: "register pressure high: full pool, larger bodies",
            params: GenParams {
                active_regs: 8,
                ..d
            },
            budget: 36,
        },
        StratumDef {
            name: "reuse-near",
            description: "short operand reuse distance (bypass-friendly)",
            params: GenParams {
                reuse_window: 2,
                ..d
            },
            budget: 24,
        },
        StratumDef {
            name: "reuse-far",
            description: "long operand reuse distance: uniform over 8 regs, ALU-dominated",
            params: GenParams {
                active_regs: 8,
                w_alu: 70,
                w_branch: 4,
                w_loop: 3,
                ..d
            },
            budget: 32,
        },
        StratumDef {
            name: "divergent",
            description: "branch-heavy: deep diamonds dominate",
            params: GenParams {
                w_branch: 25,
                w_alu: 34,
                ..d
            },
            budget: 28,
        },
        StratumDef {
            name: "straightline",
            description: "no control flow: pure in-order issue",
            params: GenParams {
                w_branch: 0,
                w_loop: 0,
                ..d
            },
            budget: 24,
        },
        StratumDef {
            name: "mem-heavy",
            description: "memory-dense: loads/stores/constants at triple weight",
            params: GenParams {
                w_load: 18,
                w_store: 18,
                w_ldconst: 10,
                w_alu: 24,
                ..d
            },
            budget: 24,
        },
        StratumDef {
            name: "compute",
            description: "no memory traffic beyond the fixed prologue/epilogue",
            params: GenParams {
                w_load: 0,
                w_store: 0,
                w_ldconst: 0,
                w_exchange: 0,
                w_barrier: 0,
                ..d
            },
            budget: 24,
        },
    ]
}

/// One manifest row: everything needed to re-materialize and reason
/// about a corpus kernel without storing its binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Position in the manifest (stable within a `(seed, count)` corpus).
    pub id: u64,
    /// Stratum name (a generated stratum or `"adversarial"`).
    pub stratum: String,
    /// Kernel name (deterministic; also the benchmark label in sweeps).
    pub name: String,
    /// Per-kernel generator seed (0 for hand-written kernels).
    pub seed: u64,
    /// Statement budget the kernel was generated at (0 if hand-written).
    pub budget: u64,
    /// Static characterization vector.
    pub traits: KernelTraits,
    /// SHA-256 over the kernel's binary encoding — the content identity.
    pub fingerprint: String,
    /// Whether the kernel is lint-clean (no errors, no warnings) and
    /// therefore part of the sweepable population.
    pub retained: bool,
    /// Primary diagnostic code when not retained (e.g. `"B002"`).
    pub reject: Option<String>,
}

/// A generated corpus: the deterministic record of `(seed, count)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Master seed.
    pub seed: u64,
    /// Requested kernel count (generated strata only).
    pub count: u64,
    /// All entries: retained generated kernels first (grouped by
    /// stratum, in draw order), then the adversarial stratum.
    pub entries: Vec<ManifestEntry>,
    /// Candidates rejected per stratum during generation.
    pub rejected: Vec<(String, u64)>,
}

fn traits_json(t: &KernelTraits) -> Json {
    Json::obj([
        ("insts", Json::from(u64::from(t.insts))),
        ("live_peak", Json::from(u64::from(t.live_peak))),
        ("regs_written", Json::from(u64::from(t.regs_written))),
        ("reuse_x100", Json::from(t.reuse_x100)),
        ("branch_depth", Json::from(u64::from(t.branch_depth))),
        ("mem_per_ki", Json::from(u64::from(t.mem_per_ki))),
        ("loads", Json::from(u64::from(t.loads))),
        ("stores", Json::from(u64::from(t.stores))),
        ("barriers", Json::from(u64::from(t.barriers))),
    ])
}

fn traits_from_json(v: &Json) -> Result<KernelTraits, DecodeError> {
    Ok(KernelTraits {
        insts: v.req_u64("insts")? as u32,
        live_peak: v.req_u64("live_peak")? as u32,
        regs_written: v.req_u64("regs_written")? as u32,
        reuse_x100: v.req_u64("reuse_x100")?,
        branch_depth: v.req_u64("branch_depth")? as u32,
        mem_per_ki: v.req_u64("mem_per_ki")? as u32,
        loads: v.req_u64("loads")? as u32,
        stores: v.req_u64("stores")? as u32,
        barriers: v.req_u64("barriers")? as u32,
    })
}

impl ManifestEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::from(self.id)),
            ("stratum".to_string(), Json::from(self.stratum.as_str())),
            ("name".to_string(), Json::from(self.name.as_str())),
            ("seed".to_string(), Json::from(format!("{:#x}", self.seed))),
            ("budget".to_string(), Json::from(self.budget)),
            ("traits".to_string(), traits_json(&self.traits)),
            (
                "fingerprint".to_string(),
                Json::from(self.fingerprint.as_str()),
            ),
            ("retained".to_string(), Json::from(self.retained)),
        ];
        if let Some(code) = &self.reject {
            fields.push(("reject".to_string(), Json::from(code.as_str())));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<ManifestEntry, DecodeError> {
        Ok(ManifestEntry {
            id: v.req_u64("id")?,
            stratum: v.req_str("stratum")?.to_string(),
            name: v.req_str("name")?.to_string(),
            seed: parse_hex_u64(v.req_str("seed")?)?,
            budget: v.req_u64("budget")?,
            traits: traits_from_json(v.req("traits")?)?,
            fingerprint: v.req_str("fingerprint")?.to_string(),
            retained: v.req_bool("retained")?,
            reject: match v.get("reject") {
                Some(j) => Some(
                    j.as_str()
                        .ok_or_else(|| DecodeError::new("`reject` must be a string"))?
                        .to_string(),
                ),
                None => None,
            },
        })
    }
}

fn parse_hex_u64(s: &str) -> Result<u64, DecodeError> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| DecodeError::new(format!("seed `{s}` is not 0x-hex")))?;
    u64::from_str_radix(digits, 16)
        .map_err(|e| DecodeError::new(format!("seed `{s}` is not 0x-hex: {e}")))
}

impl Manifest {
    /// Serializes the manifest. Byte-deterministic: integers, strings
    /// and bools only, in fixed key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(MANIFEST_VERSION)),
            ("seed", Json::from(format!("{:#x}", self.seed))),
            ("count", Json::from(self.count)),
            (
                "rejected",
                Json::Obj(
                    self.rejected
                        .iter()
                        .map(|(s, n)| (s.clone(), Json::from(*n)))
                        .collect(),
                ),
            ),
            (
                "kernels",
                Json::arr(self.entries.iter().map(ManifestEntry::to_json)),
            ),
        ])
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on any missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Manifest, DecodeError> {
        let version = v.req_u64("schema_version")?;
        if version != MANIFEST_VERSION {
            return Err(DecodeError::new(format!(
                "manifest schema {version}, expected {MANIFEST_VERSION}"
            )));
        }
        let rejected = v
            .req("rejected")?
            .as_obj()
            .ok_or_else(|| DecodeError::new("`rejected` must be an object"))?
            .iter()
            .map(|(k, n)| {
                n.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| DecodeError::new("`rejected` counts must be integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest {
            seed: parse_hex_u64(v.req_str("seed")?)?,
            count: v.req_u64("count")?,
            entries: v
                .req_arr("kernels")?
                .iter()
                .map(ManifestEntry::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            rejected,
        })
    }

    /// The retained (sweepable) entries.
    pub fn retained(&self) -> impl Iterator<Item = &ManifestEntry> {
        self.entries.iter().filter(|e| e.retained)
    }

    /// Stratum names present, in first-appearance order.
    pub fn strata(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.stratum.as_str()) {
                out.push(&e.stratum);
            }
        }
        out
    }
}

/// The per-kernel generator seed: position-derived, so the corpus is
/// independent of generation order and thread count.
fn kernel_seed(master: u64, stratum_index: usize, attempt: u64) -> u64 {
    master ^ ((stratum_index as u64 + 1) * 1_000_003 + attempt).wrapping_mul(SEED_MIX)
}

/// Content fingerprint: SHA-256 over the kernel's binary encoding.
/// Machine-independent — the encoding is a defined little-endian word
/// stream, independent of host layout.
pub fn fingerprint(kernel: &Kernel) -> String {
    let words = encode_kernel(kernel);
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    sha256_hex(&bytes)
}

/// Runs the full static gate a corpus candidate must pass: annotate at
/// the default window, emit control bits (so the `B013`/`B014` sidecar
/// lints judge real output), then the whole `B001..B014` suite with the
/// hint verifier on. Returns the primary diagnostic code if the kernel
/// has any error or warning.
pub fn lint_gate(kernel: &Kernel) -> Option<&'static str> {
    let (annotated, _) = bow_compiler::annotate(kernel, WINDOW);
    let ctrl = emit_ctrl(&annotated, &CtrlLatencies::default());
    let report = lint_kernel(
        &ctrl,
        &LintOptions {
            window: WINDOW,
            check_hints: true,
            latencies: CtrlLatencies::default(),
        },
    );
    primary_code(&report)
}

/// Lints a kernel exactly as authored — no re-annotation, no ctrl
/// emission — with the hint verifier on. The gate for the adversarial
/// stratum, whose kernels carry hand-planted hints that
/// [`bow_compiler::annotate`] would silently repair.
pub fn lint_as_authored(kernel: &Kernel) -> Option<&'static str> {
    let report = lint_kernel(
        kernel,
        &LintOptions {
            window: WINDOW,
            check_hints: true,
            latencies: CtrlLatencies::default(),
        },
    );
    primary_code(&report)
}

fn primary_code(report: &bow_compiler::LintReport) -> Option<&'static str> {
    report
        .diagnostics
        .iter()
        // Race findings (B015/B016) do not reject a candidate: racy
        // kernels are exactly what the sanitizer campaign cross-validates
        // against the static analysis, and the simulator executes them
        // deterministically regardless.
        .find(|d| {
            d.severity != bow_compiler::Severity::Info && d.code != "B015" && d.code != "B016"
        })
        .map(|d| d.code)
}

/// Generates the corpus for `(seed, count)`: `count` kernels spread
/// evenly over the generated strata (lint-dirty candidates are redrawn
/// and counted in [`Manifest::rejected`]), plus the fixed adversarial
/// stratum. Pure and deterministic.
pub fn generate(seed: u64, count: usize) -> Manifest {
    let defs = strata();
    let per = count / defs.len();
    let extra = count % defs.len();
    let mut entries = Vec::with_capacity(count + adversarial::all().len());
    let mut rejected = Vec::new();
    let mut id = 0u64;
    for (si, def) in defs.iter().enumerate() {
        let target = per + usize::from(si < extra);
        let mut kept = 0usize;
        let mut attempt = 0u64;
        let mut dirty = 0u64;
        // 8× oversampling bound: generation must terminate even if a
        // stratum turns hostile to the lint suite.
        while kept < target && attempt < (target as u64) * 8 {
            let kseed = kernel_seed(seed, si, attempt);
            attempt += 1;
            let mut rng = XorShift::new(kseed);
            let fk = FuzzKernel::generate_with(&mut rng, def.budget, &def.params).scrub();
            let name = format!("corpus_{}_{:016x}", def.name, kseed);
            let kernel = fk.build_pruned(&name);
            if let Some(code) = lint_gate(&kernel) {
                let _ = code;
                dirty += 1;
                continue;
            }
            entries.push(ManifestEntry {
                id,
                stratum: def.name.to_string(),
                name,
                seed: kseed,
                budget: def.budget as u64,
                traits: characterize(&kernel),
                fingerprint: fingerprint(&kernel),
                retained: true,
                reject: None,
            });
            id += 1;
            kept += 1;
        }
        rejected.push((def.name.to_string(), dirty));
    }
    let mut adv_dirty = 0u64;
    for adv in adversarial::all() {
        let kernel = (adv.build)();
        let code = lint_as_authored(&kernel);
        if code.is_some() {
            adv_dirty += 1;
        }
        entries.push(ManifestEntry {
            id,
            stratum: adversarial::STRATUM.to_string(),
            name: adv.name.to_string(),
            seed: 0,
            budget: 0,
            traits: characterize(&kernel),
            fingerprint: fingerprint(&kernel),
            retained: code.is_none(),
            reject: code.map(str::to_string),
        });
        id += 1;
    }
    rejected.push((adversarial::STRATUM.to_string(), adv_dirty));
    Manifest {
        seed,
        count: count as u64,
        entries,
        rejected,
    }
}

/// Re-materializes the kernel of a manifest entry. Generated kernels are
/// regrown from their seed; adversarial kernels come from their fixed
/// builders.
///
/// Returns `None` for an unknown stratum or adversarial name (a manifest
/// from a different corpus version).
pub fn kernel_for(entry: &ManifestEntry) -> Option<Kernel> {
    if entry.stratum == adversarial::STRATUM {
        return adversarial::all()
            .into_iter()
            .find(|a| a.name == entry.name)
            .map(|a| (a.build)());
    }
    let def = strata().into_iter().find(|d| d.name == entry.stratum)?;
    let mut rng = XorShift::new(entry.seed);
    let fk = FuzzKernel::generate_with(&mut rng, entry.budget as usize, &def.params).scrub();
    Some(fk.build_pruned(&entry.name))
}

/// Re-materializes the structured program of a generated entry (needed
/// for the host-evaluator check). `None` for adversarial entries.
fn program_for(entry: &ManifestEntry) -> Option<FuzzKernel> {
    if entry.stratum == adversarial::STRATUM {
        return None;
    }
    let def = strata().into_iter().find(|d| d.name == entry.stratum)?;
    let mut rng = XorShift::new(entry.seed);
    Some(FuzzKernel::generate_with(&mut rng, entry.budget as usize, &def.params).scrub())
}

/// The per-kernel launch input, derived from the entry seed.
pub(crate) fn input_for(entry: &ManifestEntry) -> Vec<u32> {
    let mut rng = XorShift::new(entry.seed ^ SEED_MIX);
    FuzzKernel::gen_input(&mut rng)
}

/// A corpus kernel as a [`Benchmark`], so the standard suite pool,
/// prepared-kernel cache and progress machinery drive the sweep.
///
/// `name()` returns `&'static str` by contract, so the deterministic
/// kernel name is leaked once per materialization — bounded by corpus
/// size and only in sweep-running processes.
struct CorpusBench {
    name: &'static str,
    program: FuzzKernel,
    input: Vec<u32>,
}

impl Benchmark for CorpusBench {
    fn name(&self) -> &'static str {
        self.name
    }

    fn suite(&self) -> &'static str {
        "corpus"
    }

    fn description(&self) -> &'static str {
        "stratified corpus kernel"
    }

    fn kernel(&self) -> Kernel {
        self.program.build_pruned(self.name)
    }

    fn run_with(&self, gpu: &mut Gpu, kernel: &Kernel) -> RunOutcome {
        gpu.global_mut()
            .write_slice_u32(u64::from(INPUT_BASE), &self.input);
        let result = gpu.launch(kernel, FuzzKernel::dims(), &PARAMS);
        let mut checked = Ok(());
        for (addr, want) in self.program.expected(&self.input) {
            let got = gpu.global().read_u32(addr);
            if got != want {
                checked = Err(format!(
                    "corpus host model mismatch at {addr:#x}: got {got:#010x}, want {want:#010x}"
                ));
                break;
            }
        }
        RunOutcome { result, checked }
    }
}

/// Selects the sweepable slice of a manifest: retained, generated
/// kernels only (adversarial hazards are a lint population, not a
/// performance population), truncated to `limit` when non-zero. Entries
/// are taken round-robin across strata so a small limit still covers
/// every stratum.
pub fn select(manifest: &Manifest, limit: usize) -> Vec<&ManifestEntry> {
    let strata_names = manifest.strata();
    let mut by_stratum: Vec<Vec<&ManifestEntry>> = vec![Vec::new(); strata_names.len()];
    for e in manifest.retained() {
        if e.stratum == adversarial::STRATUM {
            continue;
        }
        if let Some(si) = strata_names.iter().position(|s| *s == e.stratum) {
            by_stratum[si].push(e);
        }
    }
    let total: usize = by_stratum.iter().map(Vec::len).sum();
    let take = if limit == 0 { total } else { limit.min(total) };
    let mut picked: Vec<&ManifestEntry> = Vec::with_capacity(take);
    let mut round = 0usize;
    while picked.len() < take {
        let mut progressed = false;
        for lane in &by_stratum {
            if picked.len() >= take {
                break;
            }
            if let Some(e) = lane.get(round) {
                picked.push(e);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
        round += 1;
    }
    picked
}

/// Materializes [`select`]'s slice as [`Benchmark`]s for the suite pool.
pub fn benches(manifest: &Manifest, limit: usize) -> Vec<Box<dyn Benchmark>> {
    select(manifest, limit)
        .into_iter()
        .filter_map(|e| {
            let program = program_for(e)?;
            Some(Box::new(CorpusBench {
                name: Box::leak(e.name.clone().into_boxed_str()),
                input: input_for(e),
                program,
            }) as Box<dyn Benchmark>)
        })
        .collect()
}

/// The corpus collector columns: the paper's four models at the default
/// window, on one core and divergence model.
pub fn corpus_configs(core: CoreModelKind, divergence: DivergenceModel) -> Vec<Config> {
    let model = GpuModel::Scaled;
    let with = |b: ConfigBuilder| {
        b.model(model)
            .core_model(core)
            .divergence(divergence)
            .build()
    };
    let mut configs = vec![
        with(ConfigBuilder::baseline()),
        with(ConfigBuilder::bow(WINDOW)),
        with(ConfigBuilder::bow_wr(WINDOW).verify(true)),
        with(ConfigBuilder::rfc()),
    ];
    // Every corpus launch additionally runs under the lockstep oracle:
    // the timing-free interpreter checks each pipeline writeback, so a
    // sweep failure names the first diverging instruction, not just a
    // wrong final word. Pure checker — stats and IPC are unaffected.
    for c in &mut configs {
        c.gpu.oracle_check = OracleCheck::Lockstep;
    }
    configs
}

/// Options of a corpus sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Max kernels to sweep (0 = every retained kernel).
    pub limit: usize,
    /// Sweep-pool worker count (0 = all cores).
    pub jobs: usize,
    /// Intra-run engine threads (None = sweep-level parallelism only).
    pub sim_threads: Option<u32>,
    /// Core model to sweep on.
    pub core_model: CoreModelKind,
    /// Reconvergence machinery to sweep under.
    pub divergence: DivergenceModel,
    /// Progress lines to stderr.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            limit: 0,
            jobs: 0,
            sim_threads: None,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            progress: false,
        }
    }
}

/// Sweeps the corpus through the standard suite pool: 4 collectors ×
/// the retained kernels, every run checked against the independent host
/// evaluator. Panics (via [`SweepResult::assert_checked`] downstream)
/// are left to the caller; this returns raw records.
pub fn sweep(manifest: &Manifest, opts: &SweepOptions) -> SweepResult {
    let mut suite = Suite::over(benches(manifest, opts.limit))
        .configs(corpus_configs(opts.core_model, opts.divergence))
        .jobs(opts.jobs)
        .progress(opts.progress);
    if let Some(t) = opts.sim_threads {
        suite = suite.sim_threads(t);
    }
    suite.run()
}

/// A median/p10/p90 summary of one metric over a kernel population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dist {
    /// Population size.
    pub n: usize,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Dist {
    /// Nearest-rank percentiles of `xs` (need not be sorted).
    pub fn of(mut xs: Vec<f64>) -> Dist {
        if xs.is_empty() {
            return Dist {
                n: 0,
                p10: 0.0,
                median: 0.0,
                p90: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        let pick = |q: f64| xs[((xs.len() - 1) as f64 * q).round() as usize];
        Dist {
            n: xs.len(),
            p10: pick(0.10),
            median: pick(0.50),
            p90: pick(0.90),
        }
    }

    /// The distribution as a JSON object.
    pub fn to_json(self) -> Json {
        Json::obj([
            ("n", Json::from(self.n as u64)),
            ("p10", Json::from(self.p10)),
            ("median", Json::from(self.median)),
            ("p90", Json::from(self.p90)),
        ])
    }
}

/// Reduces a corpus sweep to per-stratum distributions: for every
/// non-baseline collector, the IPC gain over baseline and the measured
/// read-bypass rate (the population analogue of Figs. 10 and 3).
pub fn distribution_json(
    manifest: &Manifest,
    sweep: &SweepResult,
    core: &str,
    divergence: &str,
) -> Json {
    let baseline = &sweep.row(0).records;
    let stratum_of = |bench: &str| -> String {
        manifest
            .entries
            .iter()
            .find(|e| e.name == bench)
            .map(|e| e.stratum.clone())
            .unwrap_or_else(|| "unknown".to_string())
    };
    let mut strata_names: Vec<String> = Vec::new();
    for rec in baseline {
        let s = stratum_of(&rec.benchmark);
        if !strata_names.contains(&s) {
            strata_names.push(s);
        }
    }

    let mut stratum_rows = Vec::new();
    let mut scopes: Vec<(String, Option<String>)> = vec![("all".to_string(), None)];
    scopes.extend(strata_names.iter().map(|s| (s.clone(), Some(s.clone()))));
    for (scope_name, filter) in scopes {
        let mut collectors = Vec::new();
        for row in &sweep.rows[1..] {
            let mut gains = Vec::new();
            let mut bypass = Vec::new();
            for (base, rec) in baseline.iter().zip(&row.records) {
                if let Some(s) = &filter {
                    if stratum_of(&rec.benchmark) != *s {
                        continue;
                    }
                }
                if base.ipc() > 0.0 {
                    gains.push(rec.ipc() / base.ipc());
                }
                bypass.push(rec.outcome.result.stats.read_bypass_rate());
            }
            collectors.push(Json::obj([
                ("label", Json::from(row.label.as_str())),
                ("ipc_gain", Dist::of(gains).to_json()),
                ("read_bypass_rate", Dist::of(bypass).to_json()),
            ]));
        }
        stratum_rows.push(Json::obj([
            ("stratum", Json::from(scope_name.as_str())),
            ("collectors", Json::Arr(collectors)),
        ]));
    }
    Json::obj([
        ("schema_version", Json::from(MANIFEST_VERSION)),
        ("core_model", Json::from(core)),
        ("divergence", Json::from(divergence)),
        ("kernels", Json::from(baseline.len() as u64)),
        ("strata", Json::Arr(stratum_rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_stratified() {
        let a = generate(DEFAULT_SEED, 18);
        let b = generate(DEFAULT_SEED, 18);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty(),
            "manifest is byte-identical across runs"
        );
        for def in strata() {
            assert!(
                a.entries
                    .iter()
                    .any(|e| e.stratum == def.name && e.retained),
                "stratum {} has at least one retained kernel",
                def.name
            );
        }
        assert!(a.entries.iter().any(|e| e.stratum == adversarial::STRATUM));
    }

    #[test]
    fn retained_kernels_are_lint_clean_and_rematerializable() {
        let m = generate(DEFAULT_SEED ^ 7, 9);
        for e in m.retained() {
            let k = kernel_for(e).expect("entry re-materializes");
            assert_eq!(
                fingerprint(&k),
                e.fingerprint,
                "{}: stable identity",
                e.name
            );
            assert_eq!(lint_gate(&k), None, "{}: retained ⇒ lint-clean", e.name);
            assert_eq!(characterize(&k), e.traits, "{}: traits reproduce", e.name);
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = generate(3, 9);
        let parsed = Manifest::from_json(&m.to_json()).expect("parses");
        assert_eq!(m, parsed);
    }

    #[test]
    fn strata_steer_the_characterization_axes() {
        let m = generate(DEFAULT_SEED, 90);
        let mean = |stratum: &str, f: &dyn Fn(&KernelTraits) -> f64| -> f64 {
            let xs: Vec<f64> = m
                .retained()
                .filter(|e| e.stratum == stratum)
                .map(|e| f(&e.traits))
                .collect();
            assert!(!xs.is_empty(), "stratum {stratum} populated");
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let regs = &|t: &KernelTraits| f64::from(t.regs_written);
        let reuse = &|t: &KernelTraits| t.reuse_x100 as f64;
        let branch = &|t: &KernelTraits| f64::from(t.branch_depth);
        let mem = &|t: &KernelTraits| f64::from(t.mem_per_ki);
        assert!(mean("regs-high", regs) > mean("regs-low", regs));
        assert!(mean("reuse-near", reuse) < mean("reuse-far", reuse));
        assert!(mean("divergent", branch) > mean("straightline", branch));
        assert_eq!(mean("straightline", branch), 0.0);
        assert!(mean("mem-heavy", mem) > mean("compute", mem));
    }

    #[test]
    fn round_robin_limit_covers_every_stratum() {
        let m = generate(DEFAULT_SEED, 27);
        let picked = benches(&m, 9);
        assert_eq!(picked.len(), 9);
        let mut seen: Vec<String> = picked
            .iter()
            .map(|b| {
                let name = b.name();
                let s = name.strip_prefix("corpus_").unwrap();
                s[..s.rfind('_').unwrap()].to_string()
            })
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 9, "limit 9 touches all 9 generated strata");
    }

    #[test]
    fn mini_sweep_is_checked_and_thread_count_invariant() {
        let m = generate(DEFAULT_SEED, 4);
        let base = SweepOptions {
            limit: 4,
            jobs: 1,
            ..SweepOptions::default()
        };
        let a = sweep(&m, &base);
        a.assert_checked();
        let b = sweep(
            &m,
            &SweepOptions {
                sim_threads: Some(8),
                jobs: 2,
                ..base
            },
        );
        b.assert_checked();
        for (ra, rb) in a.all_records().zip(b.all_records()) {
            assert_eq!(ra.benchmark, rb.benchmark);
            assert_eq!(
                ra.outcome.result.cycles, rb.outcome.result.cycles,
                "{} {}: byte-identical at sim_threads 1 vs 8",
                ra.label, ra.benchmark
            );
        }
        let dist = distribution_json(&m, &a, "pascal", "stack");
        assert_eq!(dist.req_u64("kernels").unwrap(), 4);
    }

    #[test]
    fn barrier_mini_sweep_is_checked_and_thread_count_invariant() {
        // The same corpus under the stack-less divergence model: every
        // retained kernel lowers, runs under the lockstep oracle, matches
        // the host evaluator and stays byte-identical across sim_threads.
        let m = generate(DEFAULT_SEED, 4);
        let base = SweepOptions {
            limit: 4,
            jobs: 1,
            divergence: DivergenceModel::Barrier,
            ..SweepOptions::default()
        };
        let a = sweep(&m, &base);
        a.assert_checked();
        let b = sweep(
            &m,
            &SweepOptions {
                sim_threads: Some(8),
                jobs: 2,
                ..base
            },
        );
        b.assert_checked();
        for (ra, rb) in a.all_records().zip(b.all_records()) {
            assert!(ra.label.contains("+barrier"), "{}", ra.label);
            assert_eq!(
                ra.outcome.result.cycles, rb.outcome.result.cycles,
                "{} {}: byte-identical at sim_threads 1 vs 8",
                ra.label, ra.benchmark
            );
        }
        let dist = distribution_json(&m, &a, "pascal", "barrier");
        assert_eq!(
            dist.get("divergence").and_then(Json::as_str),
            Some("barrier")
        );
    }
}
