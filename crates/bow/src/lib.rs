//! # BOW: Breathing Operand Windows
//!
//! A from-scratch Rust reproduction of *BOW: Breathing Operand Windows to
//! Exploit Bypassing in GPUs* (MICRO 2020): a cycle-level GPU SM model with
//! a banked register file and operand collectors, the BOW / BOW-WR
//! bypassing architectures, the compiler liveness pass that drives their
//! write-back hints, a register-file-cache baseline, an energy/area model
//! and the paper's benchmark suite.
//!
//! This umbrella crate re-exports the public API of every subsystem and
//! adds the [`experiment`] driver the figure/table harness and examples
//! are built on.
//!
//! ## Quick start
//!
//! ```
//! use bow::prelude::*;
//!
//! // Sweep one benchmark under the baseline and BOW-WR (IW = 3) in
//! // parallel; rows come back in configuration order.
//! let result = Suite::benchmark("vectoradd", Scale::Test)
//!     .config(ConfigBuilder::baseline().build())
//!     .config(ConfigBuilder::bow_wr(3).build())
//!     .progress(false)
//!     .run();
//! result.assert_checked();
//! assert!(result.row(1).records[0].outcome.result.stats.bypassed_reads > 0);
//! ```

pub mod api;
pub mod corpus;
pub mod error;
pub mod experiment;
pub mod fuzz;
pub mod mutate;
pub mod sanitize_campaign;
pub mod suite;

/// Re-export of [`bow_isa`]: the instruction set.
pub mod isa {
    pub use bow_isa::*;
}

/// Re-export of [`bow_mem`]: the memory substrate.
pub mod mem {
    pub use bow_mem::*;
}

/// Re-export of [`bow_util`]: RNG, JSON and small shared utilities.
pub mod util {
    pub use bow_util::*;
}

/// Re-export of [`bow_energy`]: the energy/area model.
pub mod energy {
    pub use bow_energy::*;
}

/// Re-export of [`bow_sim`]: the cycle-level GPU model.
pub mod sim {
    pub use bow_sim::*;
}

/// Re-export of [`bow_compiler`]: liveness and hints.
pub mod compiler {
    pub use bow_compiler::*;
}

/// Re-export of [`bow_workloads`]: the benchmark suite.
pub mod workloads {
    pub use bow_workloads::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use crate::api::{KernelSpec, RunRequest, SweepRequest};
    pub use crate::error::{BowError, ConfigError};
    pub use crate::experiment::{run, Config, ConfigBuilder, GpuModel, RunRecord, SCHEMA_VERSION};
    pub use crate::suite::{ConfigRow, Suite, SweepResult};
    pub use bow_compiler::annotate;
    pub use bow_energy::{AccessCounts, EnergyModel, EnergyReport};
    pub use bow_isa::{
        CmpOp, Kernel, KernelBuilder, KernelDims, Operand, Pred, Reg, Special, WritebackHint,
    };
    pub use bow_sim::{
        CollectorKind, CoreModelKind, DivergenceModel, Gpu, GpuConfig, LaunchResult, SimStats,
    };
    pub use bow_workloads::{suite, Benchmark, RunOutcome, Scale};
}
