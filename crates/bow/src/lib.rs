//! # BOW: Breathing Operand Windows
//!
//! A from-scratch Rust reproduction of *BOW: Breathing Operand Windows to
//! Exploit Bypassing in GPUs* (MICRO 2020): a cycle-level GPU SM model with
//! a banked register file and operand collectors, the BOW / BOW-WR
//! bypassing architectures, the compiler liveness pass that drives their
//! write-back hints, a register-file-cache baseline, an energy/area model
//! and the paper's benchmark suite.
//!
//! This umbrella crate re-exports the public API of every subsystem and
//! adds the [`experiment`] driver the figure/table harness and examples
//! are built on.
//!
//! ## Quick start
//!
//! ```
//! use bow::prelude::*;
//!
//! // Run one benchmark under the baseline and under BOW-WR (IW = 3).
//! let bench = bow::workloads::by_name("vectoradd", Scale::Test).unwrap();
//! let base = bow::experiment::run(bench.as_ref(), Config::baseline());
//! let bowwr = bow::experiment::run(bench.as_ref(), Config::bow_wr(3));
//! assert!(base.outcome.checked.is_ok() && bowwr.outcome.checked.is_ok());
//! assert!(bowwr.outcome.result.stats.bypassed_reads > 0);
//! ```

pub mod experiment;

/// Re-export of [`bow_isa`](bow_isa): the instruction set.
pub mod isa {
    pub use bow_isa::*;
}

/// Re-export of [`bow_mem`](bow_mem): the memory substrate.
pub mod mem {
    pub use bow_mem::*;
}

/// Re-export of [`bow_energy`](bow_energy): the energy/area model.
pub mod energy {
    pub use bow_energy::*;
}

/// Re-export of [`bow_sim`](bow_sim): the cycle-level GPU model.
pub mod sim {
    pub use bow_sim::*;
}

/// Re-export of [`bow_compiler`](bow_compiler): liveness and hints.
pub mod compiler {
    pub use bow_compiler::*;
}

/// Re-export of [`bow_workloads`](bow_workloads): the benchmark suite.
pub mod workloads {
    pub use bow_workloads::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use crate::experiment::{run, Config, RunRecord};
    pub use bow_compiler::annotate;
    pub use bow_energy::{AccessCounts, EnergyModel, EnergyReport};
    pub use bow_isa::{
        CmpOp, Kernel, KernelBuilder, KernelDims, Operand, Pred, Reg, Special, WritebackHint,
    };
    pub use bow_sim::{CollectorKind, Gpu, GpuConfig, LaunchResult, SimStats};
    pub use bow_workloads::{suite, Benchmark, RunOutcome, Scale};
}
