//! The cross-validation campaign: does the static race suite cover
//! *every* hazard the dynamic sanitizer observes?
//!
//! [`run_campaign`] materializes the stratified corpus
//! ([`crate::corpus::generate`]) plus the full adversarial stratum, and
//! judges every kernel twice:
//!
//! * **Static** — the as-authored `B001..B016` lint report
//!   ([`bow_compiler::lint_kernel`]), including the barrier-interval
//!   race pass (`B015` definite race, `B003` residual candidate, `B016`
//!   never-initialized shared read).
//! * **Dynamic** — a sanitized launch ([`GpuConfig::sanitize`]) on
//!   **both** SM core models, folding the instrumented event stream into
//!   a [`SanitizerReport`](bow_sim::SanitizerReport).
//!
//! The campaign's contract is the static suite's conservativeness
//! theorem, mirrored from the hint sanitizer ([`crate::mutate`]): every
//! dynamic finding must carry a static flag — a sanitizer finding whose
//! kind maps to no raised code is a static-analysis false negative and
//! fails the run. The reverse direction is measured, not enforced: the
//! static race codes are deliberately conservative (one input, one
//! schedule per launch), so the fraction of raised `B003`/`B015`/`B016`
//! flags the sanitizer confirms is reported as *precision*.
//!
//! The adversarial stratum is additionally held to its machine-readable
//! expectation table ([`adversarial::Adversarial::expect_dynamic`]):
//! every planted hazard must be dynamically confirmed with the kinds the
//! table names, on both cores, or the campaign fails.
//!
//! [`GpuConfig::sanitize`]: bow_sim::GpuConfig

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use crate::corpus::{self, adversarial, kernel_for, Manifest, ManifestEntry};
use crate::experiment::ConfigBuilder;
use crate::fuzz::FUZZ_MAX_CYCLES;
use crate::suite::{effective_jobs, map_parallel};
use bow_compiler::{lint_kernel, CtrlLatencies, LintOptions};
use bow_isa::fuzz::{FuzzKernel, INPUT_BASE, PARAMS};
use bow_isa::Kernel;
use bow_sim::{CoreModelKind, Gpu};
use bow_util::json::Json;

/// Watchdog for adversarial launches: two of the planted hazards stall
/// the barrier by construction, and the kernels are a dozen instructions
/// long — a fraction of the fuzz budget bounds the hang without risking
/// a false timeout.
const ADV_MAX_CYCLES: u64 = 200_000;

/// The static codes that can vouch for a dynamic finding kind — the
/// machine half of the dynamic⊆static contract.
pub fn static_codes_for(kind: &str) -> &'static [&'static str] {
    match kind {
        "race" => &["B015", "B003"],
        "uninit-shared" => &["B016"],
        "uninit-reg" => &["B001"],
        "divergent-bar" => &["B002"],
        "broken-sync" => &["B011"],
        "hint-violation" => &["B010"],
        _ => &[],
    }
}

/// The race codes whose precision the campaign measures.
const RACE_CODES: [&str; 3] = ["B003", "B015", "B016"];

/// Options for one campaign session.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Corpus master seed ([`corpus::generate`]).
    pub seed: u64,
    /// Generated corpus kernels (the adversarial stratum always rides
    /// along in full).
    pub count: usize,
    /// Worker threads (`0` = all cores).
    pub jobs: usize,
    /// Print per-kernel progress to stderr.
    pub progress: bool,
}

impl CampaignOptions {
    /// The full campaign over the default thousand-kernel corpus.
    pub fn full() -> CampaignOptions {
        CampaignOptions {
            seed: corpus::DEFAULT_SEED,
            count: corpus::DEFAULT_COUNT,
            jobs: 0,
            progress: false,
        }
    }

    /// The CI smoke configuration: a 64-kernel fixed-seed corpus.
    pub fn smoke() -> CampaignOptions {
        CampaignOptions {
            count: 64,
            ..CampaignOptions::full()
        }
    }
}

/// A dynamic finding no static code vouches for — a static-analysis
/// false negative.
#[derive(Clone, Debug)]
pub struct Uncovered {
    /// Kernel (manifest entry) name.
    pub kernel: String,
    /// Core model label the finding surfaced on.
    pub core: &'static str,
    /// Sanitizer finding kind.
    pub kind: String,
    /// Rendered finding, for the failure message.
    pub detail: String,
}

/// An adversarial row whose planted hazard the sanitizer did not
/// confirm with the expected kind.
#[derive(Clone, Debug)]
pub struct MissedHazard {
    /// Adversarial kernel name.
    pub kernel: String,
    /// Core model label.
    pub core: &'static str,
    /// The expected-but-absent finding kind.
    pub kind: &'static str,
}

/// The outcome of a campaign session.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Kernels judged (generated retained + adversarial).
    pub kernels: u64,
    /// Sanitized launches (kernels × core models).
    pub launches: u64,
    /// Total deduplicated dynamic findings across all launches.
    pub dynamic_findings: u64,
    /// Launches that hit the cycle watchdog (the two planted barrier
    /// stalls land here; reported, not fatal — their findings are
    /// recorded before the stall).
    pub timeouts: u64,
    /// Dynamic findings without a static flag (must be empty).
    pub uncovered: Vec<Uncovered>,
    /// Adversarial expectations the sanitizer missed (must be empty).
    pub missed_hazards: Vec<MissedHazard>,
    /// `(kernel, race code)` pairs the static suite raised.
    pub static_flags: u64,
    /// …of which the sanitizer dynamically confirmed.
    pub static_confirmed: u64,
    /// Per-code `(raised, confirmed)` breakdown, in [`RACE_CODES`] order.
    pub by_code: Vec<(String, u64, u64)>,
    /// Wall-clock time of the session.
    pub wall: Duration,
}

impl CampaignReport {
    /// Whether the session upholds the dynamic⊆static contract and the
    /// adversarial expectation table.
    pub fn passed(&self) -> bool {
        self.uncovered.is_empty() && self.missed_hazards.is_empty()
    }

    /// Fraction of static race flags the sanitizer confirmed (1.0 when
    /// nothing was flagged — an empty claim is vacuously precise).
    pub fn precision(&self) -> f64 {
        if self.static_flags == 0 {
            1.0
        } else {
            self.static_confirmed as f64 / self.static_flags as f64
        }
    }

    /// A one-paragraph human summary.
    pub fn summary(&self) -> String {
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let mut s = format!(
            "sanitizer campaign: {verdict} — {} kernels × 2 cores ({} launches), \
             {} dynamic findings, {} uncovered, {} adversarial misses; static \
             precision {}/{} ({:.0}%); {} watchdog stalls; {:.1}s",
            self.kernels,
            self.launches,
            self.dynamic_findings,
            self.uncovered.len(),
            self.missed_hazards.len(),
            self.static_confirmed,
            self.static_flags,
            self.precision() * 100.0,
            self.timeouts,
            self.wall.as_secs_f64()
        );
        for u in &self.uncovered {
            s.push_str(&format!(
                "\n  UNCOVERED: {} [{}] {} — {}",
                u.kernel, u.core, u.kind, u.detail
            ));
        }
        for m in &self.missed_hazards {
            s.push_str(&format!(
                "\n  MISSED HAZARD: {} [{}] expected dynamic {}",
                m.kernel, m.core, m.kind
            ));
        }
        s
    }

    /// The report as a JSON object (the CI artifact format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("passed", Json::Bool(self.passed())),
            ("kernels", Json::Num(self.kernels as f64)),
            ("launches", Json::Num(self.launches as f64)),
            ("dynamic_findings", Json::Num(self.dynamic_findings as f64)),
            ("timeouts", Json::Num(self.timeouts as f64)),
            (
                "uncovered",
                Json::Arr(
                    self.uncovered
                        .iter()
                        .map(|u| {
                            Json::obj([
                                ("kernel", Json::Str(u.kernel.clone())),
                                ("core", Json::Str(u.core.to_string())),
                                ("kind", Json::Str(u.kind.clone())),
                                ("detail", Json::Str(u.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "missed_hazards",
                Json::Arr(
                    self.missed_hazards
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("kernel", Json::Str(m.kernel.clone())),
                                ("core", Json::Str(m.core.to_string())),
                                ("kind", Json::Str(m.kind.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("static_flags", Json::Num(self.static_flags as f64)),
            ("static_confirmed", Json::Num(self.static_confirmed as f64)),
            ("precision", Json::Num(self.precision())),
            (
                "by_code",
                Json::Arr(
                    self.by_code
                        .iter()
                        .map(|(code, raised, confirmed)| {
                            Json::obj([
                                ("code", Json::Str(code.clone())),
                                ("raised", Json::Num(*raised as f64)),
                                ("confirmed", Json::Num(*confirmed as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
        ])
    }
}

/// Per-kernel tallies folded into the session report.
#[derive(Clone, Debug, Default)]
struct CaseOutcome {
    findings: u64,
    timeouts: u64,
    uncovered: Vec<Uncovered>,
    missed_hazards: Vec<MissedHazard>,
    /// Race codes raised statically, paired with dynamic confirmation.
    race_flags: Vec<(String, bool)>,
}

/// One sanitized launch of `kernel` on `core`; returns the finding kinds
/// plus the raw report and whether the watchdog fired.
fn sanitized_launch(
    kernel: &Kernel,
    input: Option<&[u32]>,
    core: CoreModelKind,
    max_cycles: u64,
) -> (bow_sim::SanitizerReport, bool) {
    let mut cfg = ConfigBuilder::bow_wr(corpus::WINDOW)
        .sanitize(true)
        .core_model(core)
        .build()
        .gpu;
    cfg.max_cycles = max_cycles;
    let mut gpu = Gpu::new(cfg);
    if let Some(input) = input {
        gpu.global_mut()
            .write_slice_u32(u64::from(INPUT_BASE), input);
    }
    let result = gpu.launch(kernel, FuzzKernel::dims(), &PARAMS);
    let report = result.sanitizer.expect("sanitize flag attaches the probe");
    (report, !result.completed)
}

fn core_label(core: CoreModelKind) -> &'static str {
    match core {
        CoreModelKind::Pascal => "pascal",
        CoreModelKind::Modern => "modern",
    }
}

fn run_one_case(entry: &ManifestEntry, progress: bool) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    let Some(kernel) = kernel_for(entry) else {
        // Unknown stratum/name: a manifest from another corpus version.
        // Nothing to validate, nothing to mask.
        return out;
    };
    let adversarial = entry.stratum == adversarial::STRATUM;
    let expect_dynamic = adversarial::all()
        .into_iter()
        .find(|a| a.name == entry.name)
        .map(|a| a.expect_dynamic)
        .unwrap_or(&[]);

    // The static half judges the kernel exactly as launched: as authored,
    // at the corpus hint window, hints checked.
    let report = lint_kernel(
        &kernel,
        &LintOptions {
            window: corpus::WINDOW,
            check_hints: true,
            latencies: CtrlLatencies::default(),
        },
    );
    let static_codes: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.code).collect();

    let input = (!adversarial).then(|| corpus::input_for(entry));
    let max_cycles = if adversarial {
        ADV_MAX_CYCLES
    } else {
        FUZZ_MAX_CYCLES
    };
    let mut confirmed_kinds: BTreeSet<String> = BTreeSet::new();
    for core in [CoreModelKind::Pascal, CoreModelKind::Modern] {
        let (dynamic, timed_out) = sanitized_launch(&kernel, input.as_deref(), core, max_cycles);
        out.timeouts += u64::from(timed_out);
        out.findings += dynamic.findings.len() as u64;
        let kinds: BTreeSet<&str> = dynamic.findings.iter().map(|f| f.kind()).collect();
        for finding in &dynamic.findings {
            let vouchers = static_codes_for(finding.kind());
            if !vouchers.iter().any(|c| static_codes.contains(c)) {
                out.uncovered.push(Uncovered {
                    kernel: entry.name.clone(),
                    core: core_label(core),
                    kind: finding.kind().to_string(),
                    detail: finding.to_string(),
                });
            }
        }
        for &kind in expect_dynamic {
            if !kinds.contains(kind) {
                out.missed_hazards.push(MissedHazard {
                    kernel: entry.name.clone(),
                    core: core_label(core),
                    kind,
                });
            }
        }
        confirmed_kinds.extend(kinds.into_iter().map(str::to_string));
    }

    // Precision bookkeeping: a raised race code is confirmed when any
    // observed kind maps to it (on either core — the launch schedules
    // differ, and one witness is enough).
    for code in RACE_CODES {
        if static_codes.contains(code) {
            let confirmed = confirmed_kinds
                .iter()
                .any(|k| static_codes_for(k).contains(&code));
            out.race_flags.push((code.to_string(), confirmed));
        }
    }
    if progress {
        eprintln!(
            "[campaign] {}: {} findings, {} uncovered",
            entry.name,
            out.findings,
            out.uncovered.len()
        );
    }
    out
}

/// Runs a campaign session over a pre-built manifest. Deterministic for
/// a given manifest at any worker count.
pub fn run_campaign_on(manifest: &Manifest, opts: &CampaignOptions) -> CampaignReport {
    let start = Instant::now();
    let entries: Vec<&ManifestEntry> = manifest
        .entries
        .iter()
        .filter(|e| e.retained || e.stratum == adversarial::STRATUM)
        .collect();
    let total = entries.len();
    let workers = effective_jobs(opts.jobs).min(total.max(1));
    let progress = opts.progress;
    let run_case = |i: usize| run_one_case(entries[i], progress);
    let results = map_parallel(total, workers, &run_case, |_, _: &CaseOutcome| {});

    let mut report = CampaignReport {
        kernels: total as u64,
        launches: (total as u64) * 2,
        dynamic_findings: 0,
        timeouts: 0,
        uncovered: Vec::new(),
        missed_hazards: Vec::new(),
        static_flags: 0,
        static_confirmed: 0,
        by_code: RACE_CODES.iter().map(|c| (c.to_string(), 0, 0)).collect(),
        wall: Duration::default(),
    };
    for o in results {
        report.dynamic_findings += o.findings;
        report.timeouts += o.timeouts;
        report.uncovered.extend(o.uncovered);
        report.missed_hazards.extend(o.missed_hazards);
        for (code, confirmed) in o.race_flags {
            report.static_flags += 1;
            report.static_confirmed += u64::from(confirmed);
            if let Some(row) = report.by_code.iter_mut().find(|(c, _, _)| *c == code) {
                row.1 += 1;
                row.2 += u64::from(confirmed);
            }
        }
    }
    report.wall = start.elapsed();
    report
}

/// Generates the corpus for `opts` and runs the campaign over it.
pub fn run_campaign(opts: &CampaignOptions) -> CampaignReport {
    let manifest = corpus::generate(opts.seed, opts.count);
    run_campaign_on(&manifest, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dynamic_kind_maps_to_documented_codes() {
        for kind in [
            "race",
            "uninit-shared",
            "uninit-reg",
            "divergent-bar",
            "broken-sync",
            "hint-violation",
        ] {
            let codes = static_codes_for(kind);
            assert!(!codes.is_empty(), "{kind} has no static voucher");
            for c in codes {
                assert!(
                    bow_compiler::LINT_DOCS.iter().any(|d| d.code == *c),
                    "{c} missing from LINT_DOCS"
                );
            }
        }
        assert!(static_codes_for("no-such-kind").is_empty());
    }

    #[test]
    fn smoke_campaign_covers_every_dynamic_finding() {
        let report = run_campaign(&CampaignOptions {
            count: 12,
            jobs: 2,
            ..CampaignOptions::smoke()
        });
        assert!(report.passed(), "{}", report.summary());
        // The adversarial stratum guarantees a non-trivial session: every
        // planted hazard is dynamically confirmed and statically vouched.
        assert!(report.dynamic_findings > 0, "{}", report.summary());
        assert!(report.static_flags > 0, "{}", report.summary());
        let json = report.to_json().to_string_compact();
        assert!(json.contains("\"passed\":true"), "{json}");
    }
}
