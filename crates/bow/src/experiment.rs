//! The experiment driver: one call runs a benchmark under a named
//! configuration, applying the compiler pass where the configuration
//! requires it. Single runs go through [`run`]; whole
//! (benchmark × configuration) matrices go through the parallel
//! [`suite`](crate::suite) engine, which reuses this module's
//! [`prepare_kernel`]/[`run_prepared`] split to memoize compiler-pass
//! output across cells.
//!
//! Configurations are built with [`ConfigBuilder`], which exposes every
//! knob of the design space — collector kind, instruction window,
//! half-size buffers, compiler hints, the footnote-1 scheduler, GPU model
//! scale — orthogonally and derives the display label automatically.

use crate::error::ConfigError;
use bow_compiler::{annotate, CompilerReport};
use bow_sim::{
    CollectorKind, CoreModelKind, DivergenceModel, Gpu, GpuConfig, SimStats, WindowReport,
};
use bow_util::json::{DecodeError, Json};
use bow_workloads::{Benchmark, RunOutcome};

/// Version tag of every serialized document this crate emits
/// ([`RunRecord::to_json`], [`SweepResult::to_json`](crate::suite::SweepResult::to_json))
/// and of the wire fingerprints derived from them. Bump on any change to
/// field names, field order or value encodings, and re-bless the
/// `schema_v1` golden snapshot.
pub const SCHEMA_VERSION: u64 = 1;

/// Which operand-collection design a configuration simulates — the
/// coarse axis of [`ConfigBuilder`]; the window/half-size/capacity
/// details are separate knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Collector {
    /// Conventional operand collectors (the paper's baseline GPU).
    Baseline,
    /// BOW: read bypassing, write-through (§IV-A).
    Bow,
    /// BOW-WR: read + write bypassing (§IV-B). Compiler hints default on.
    BowWr,
    /// Buffer-bounded bypassing (the paper's future work, §IV-C).
    BowFlex,
    /// The register-file-cache comparison baseline (§V-A).
    Rfc,
}

/// Which GPU model the configuration runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GpuModel {
    /// Table II's SM microarchitecture with 2 SMs — the experiment
    /// harness default; per-SM behaviour matches the full chip.
    Scaled,
    /// The full 56-SM NVIDIA TITAN X (Pascal) of Table II.
    TitanX,
}

/// Builds a [`Config`] from orthogonal knobs.
///
/// ```
/// use bow::experiment::ConfigBuilder;
///
/// let wr = ConfigBuilder::bow_wr(3).build();
/// assert_eq!(wr.label, "bow-wr iw3");
/// let wb = ConfigBuilder::bow_wr(3).hints(false).build();
/// assert_eq!(wb.label, "bow-wb iw3");
/// let half = ConfigBuilder::bow_wr(3).half_size(true).build();
/// assert_eq!(half.label, "bow-wr iw3 half");
/// ```
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    collector: Collector,
    window: u32,
    half_size: bool,
    capacity: u32,
    rfc_entries: u32,
    hints: Option<bool>,
    reorder: bool,
    verify: bool,
    shadow_rf: bool,
    sanitize: bool,
    model: GpuModel,
    core_model: CoreModelKind,
    divergence: DivergenceModel,
    analyzer: Vec<u32>,
    sim_threads: u32,
    label: Option<String>,
}

impl ConfigBuilder {
    /// Starts from the given collector design with default knobs
    /// (window 3, full-size buffers, hints wherever the design supports
    /// them, scaled GPU).
    pub fn new(collector: Collector) -> ConfigBuilder {
        ConfigBuilder {
            collector,
            window: 3,
            half_size: false,
            capacity: 12,
            rfc_entries: 6,
            hints: None,
            reorder: false,
            verify: false,
            shadow_rf: false,
            sanitize: false,
            model: GpuModel::Scaled,
            core_model: CoreModelKind::Pascal,
            divergence: DivergenceModel::Stack,
            analyzer: Vec::new(),
            sim_threads: 1,
            label: None,
        }
    }

    /// The unmodified baseline GPU.
    pub fn baseline() -> ConfigBuilder {
        ConfigBuilder::new(Collector::Baseline)
    }

    /// BOW (read bypassing) with the given instruction window.
    pub fn bow(window: u32) -> ConfigBuilder {
        ConfigBuilder::new(Collector::Bow).window(window)
    }

    /// BOW-WR (read + write bypassing, compiler hints) with the given
    /// instruction window.
    pub fn bow_wr(window: u32) -> ConfigBuilder {
        ConfigBuilder::new(Collector::BowWr).window(window)
    }

    /// Buffer-bounded bypassing with the given value-buffer capacity.
    pub fn bow_flex(capacity: u32) -> ConfigBuilder {
        ConfigBuilder::new(Collector::BowFlex).capacity(capacity)
    }

    /// The register-file-cache baseline (6 entries per warp, as in §V-A).
    pub fn rfc() -> ConfigBuilder {
        ConfigBuilder::new(Collector::Rfc)
    }

    /// Sets the instruction-window size (BOW/BOW-WR designs).
    pub fn window(mut self, window: u32) -> ConfigBuilder {
        self.window = window;
        self
    }

    /// Uses the half-size shared-entry value buffer of §IV-C.
    pub fn half_size(mut self, yes: bool) -> ConfigBuilder {
        self.half_size = yes;
        self
    }

    /// Sets the value-buffer capacity (BOW-Flex only).
    pub fn capacity(mut self, entries: u32) -> ConfigBuilder {
        self.capacity = entries;
        self
    }

    /// Sets the RFC entry count per warp (RFC only).
    pub fn rfc_entries(mut self, entries: u32) -> ConfigBuilder {
        self.rfc_entries = entries;
        self
    }

    /// Forces the §IV-B compiler hint pass on or off. The default is
    /// derived: on for BOW-WR (its write-back policy is hint-steered),
    /// off everywhere else. BOW-WR with `hints(false)` is the pure
    /// write-back design of Table I's middle column.
    pub fn hints(mut self, yes: bool) -> ConfigBuilder {
        self.hints = Some(yes);
        self
    }

    /// Runs the bypass-aware instruction scheduler (paper footnote 1)
    /// before hint assignment.
    pub fn reorder(mut self, yes: bool) -> ConfigBuilder {
        self.reorder = yes;
        self
    }

    /// Gates the hint pass behind the independent residency verifier
    /// ([`bow_compiler::annotate_checked`]): [`prepare_kernel`] panics if
    /// the verifier rejects the producer's annotation. Only meaningful
    /// when the hint pass runs.
    pub fn verify(mut self, yes: bool) -> ConfigBuilder {
        self.verify = yes;
        self
    }

    /// Maintains an architectural shadow of the register-file banks
    /// ([`GpuConfig::shadow_rf`]) so dropped `BocOnly` write-backs become
    /// architecturally visible to the oracle checks.
    pub fn shadow_rf(mut self, yes: bool) -> ConfigBuilder {
        self.shadow_rf = yes;
        self
    }

    /// Attaches the dynamic race sanitizer ([`GpuConfig::sanitize`]) to
    /// every launch: the probe shadows shared/global words and barrier
    /// epochs and the result carries a
    /// [`SanitizerReport`](bow_sim::SanitizerReport). Pure checker —
    /// cycles, stats and fingerprints are unaffected, so the label does
    /// not encode it.
    pub fn sanitize(mut self, yes: bool) -> ConfigBuilder {
        self.sanitize = yes;
        self
    }

    /// Selects the GPU model scale (default: [`GpuModel::Scaled`]).
    pub fn model(mut self, model: GpuModel) -> ConfigBuilder {
        self.model = model;
        self
    }

    /// Selects the SM core model (default: [`CoreModelKind::Pascal`]).
    /// The modern core runs the post-Volta sub-core pipeline and makes
    /// [`prepare_kernel`] emit the control-bits sidecar the core's issue
    /// stage consumes.
    pub fn core_model(mut self, core: CoreModelKind) -> ConfigBuilder {
        self.core_model = core;
        self
    }

    /// Selects the divergence/reconvergence model (default:
    /// [`DivergenceModel::Stack`]). Under [`DivergenceModel::Barrier`],
    /// [`prepare_kernel`] lowers every `ssy`/`sync` to convergence
    /// barriers ([`bow_compiler::lower_to_barriers`]) and the simulator
    /// runs the stack-less per-warp barrier bookkeeping.
    pub fn divergence(mut self, model: DivergenceModel) -> ConfigBuilder {
        self.divergence = model;
        self
    }

    /// Enables the Fig. 3 sliding-window analyzer for `windows`.
    pub fn analyzer(mut self, windows: &[u32]) -> ConfigBuilder {
        self.analyzer = windows.to_vec();
        self
    }

    /// Worker threads for the intra-run parallel engine
    /// ([`GpuConfig::sim_threads`]): SM pipelines shard across this many
    /// threads per launch. `0` means "host parallelism"; the default `1`
    /// runs the engine inline. Results are byte-identical for every
    /// value, so the label does not encode it. Composes with sweep-level
    /// parallelism through [`Suite::sim_threads`](crate::suite::Suite::sim_threads), which
    /// splits one global budget across both layers.
    pub fn sim_threads(mut self, threads: u32) -> ConfigBuilder {
        self.sim_threads = threads;
        self
    }

    /// Overrides the auto-derived label.
    pub fn label(mut self, label: impl Into<String>) -> ConfigBuilder {
        self.label = Some(label.into());
        self
    }

    /// Whether the built config will run the hint pass.
    fn effective_hints(&self) -> bool {
        self.hints.unwrap_or(self.collector == Collector::BowWr)
    }

    /// The label the builder derives when none is set explicitly.
    fn derived_label(&self) -> String {
        let base = self.base_label();
        let core = match self.core_model {
            CoreModelKind::Pascal => "",
            CoreModelKind::Modern => "+modern",
        };
        let div = match self.divergence {
            DivergenceModel::Stack => "",
            DivergenceModel::Barrier => "+barrier",
        };
        let shadow = if self.shadow_rf { "+shadow" } else { "" };
        format!("{base}{core}{div}{shadow}")
    }

    fn base_label(&self) -> String {
        let sched = if self.reorder { "+sched" } else { "" };
        let half = if self.half_size { " half" } else { "" };
        match self.collector {
            Collector::Baseline => format!("baseline{sched}"),
            Collector::Bow => format!("bow{sched} iw{}{half}", self.window),
            Collector::BowWr => {
                let name = if self.effective_hints() {
                    "bow-wr"
                } else {
                    "bow-wb"
                };
                format!("{name}{sched} iw{}{half}", self.window)
            }
            Collector::BowFlex => format!("bow-flex{sched} c{}", self.capacity),
            Collector::Rfc => format!("rfc{sched}"),
        }
    }

    /// Validates every knob that has a bounded range. Knobs are only
    /// checked where they are meaningful: the window bound applies to
    /// BOW/BOW-WR (where it sizes the value buffer), the capacity bound
    /// to BOW-Flex, the entry bound to RFC.
    fn validate(&self) -> Result<(), ConfigError> {
        let range = |field: &'static str, value: u32, min: u32, max: u32| {
            if (min..=max).contains(&value) {
                Ok(())
            } else {
                Err(ConfigError::Range {
                    field,
                    value: u64::from(value),
                    min: u64::from(min),
                    max: u64::from(max),
                })
            }
        };
        match self.collector {
            Collector::Bow | Collector::BowWr => range("window", self.window, 1, 64)?,
            Collector::BowFlex => range("capacity", self.capacity, 1, 4096)?,
            Collector::Rfc => range("rfc_entries", self.rfc_entries, 1, 1024)?,
            Collector::Baseline => {}
        }
        for &w in &self.analyzer {
            range("analyzer window", w, 1, 1024)?;
        }
        if self.shadow_rf && self.core_model == CoreModelKind::Modern {
            // The modern core never stages writes outside the RF banks, so
            // a shadow RF would just double every write silently.
            return Err(ConfigError::Conflict {
                message: "shadow_rf models Pascal's staged write-back and cannot \
                          be combined with the modern core",
            });
        }
        Ok(())
    }

    /// Assembles the [`Config`], validating every bounded knob first.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first out-of-range knob.
    pub fn try_build(self) -> Result<Config, ConfigError> {
        self.validate()?;
        Ok(self.assemble())
    }

    /// Assembles the [`Config`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range knob; use
    /// [`try_build`](ConfigBuilder::try_build) where the knobs come from
    /// user input.
    pub fn build(self) -> Config {
        match self.try_build() {
            Ok(c) => c,
            Err(e) => panic!("invalid configuration: {e}"),
        }
    }

    fn assemble(self) -> Config {
        let kind = match self.collector {
            Collector::Baseline => CollectorKind::Baseline,
            Collector::Bow => CollectorKind::Bow {
                window: self.window,
                half_size: self.half_size,
            },
            Collector::BowWr => CollectorKind::BowWr {
                window: self.window,
                half_size: self.half_size,
            },
            Collector::BowFlex => CollectorKind::BowFlex {
                capacity: self.capacity,
            },
            Collector::Rfc => CollectorKind::Rfc {
                entries: self.rfc_entries,
            },
        };
        let mut gpu = match self.model {
            GpuModel::Scaled => GpuConfig::scaled(kind),
            GpuModel::TitanX => GpuConfig::titan_x_pascal(kind),
        };
        if !self.analyzer.is_empty() {
            gpu = gpu.with_analyzer(&self.analyzer);
        }
        gpu.shadow_rf = self.shadow_rf;
        gpu.sanitize = self.sanitize;
        gpu.core_model = self.core_model;
        gpu.divergence = self.divergence;
        gpu.sim_threads = self.sim_threads;
        let label = self.label.clone().unwrap_or_else(|| self.derived_label());
        Config {
            label,
            gpu,
            hints: self.effective_hints(),
            reorder: self.reorder,
            verify: self.verify,
        }
    }
}

/// A named pipeline configuration to evaluate.
#[derive(Clone, Debug)]
pub struct Config {
    /// Display label (e.g. `"bow-wr iw3"`).
    pub label: String,
    /// The GPU configuration.
    pub gpu: GpuConfig,
    /// Whether to run the §IV-B compiler pass before launching (BOW-WR).
    pub hints: bool,
    /// Whether to run the bypass-aware scheduler (the paper's footnote 1
    /// extension) before hint assignment.
    pub reorder: bool,
    /// Whether [`prepare_kernel`] must gate the hint pass behind the
    /// independent residency verifier (panic on rejection).
    pub verify: bool,
}

impl Config {
    /// Enables the Fig. 3 window analyzer on this configuration.
    pub fn with_analyzer(mut self, windows: &[u32]) -> Config {
        self.gpu = self.gpu.with_analyzer(windows);
        self
    }
}

/// The result of running one benchmark under one configuration.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The configuration label.
    pub label: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Launch statistics and reference check.
    pub outcome: RunOutcome,
    /// Compiler report (when the configuration ran the hint pass).
    pub compiler: Option<CompilerReport>,
}

impl RunRecord {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.outcome.result.ipc()
    }

    /// Panics if the reference check failed — experiments must never
    /// aggregate wrong results.
    pub fn assert_checked(&self) -> &RunRecord {
        if let Err(e) = &self.outcome.checked {
            panic!(
                "{} under {} produced wrong results: {e}",
                self.benchmark, self.label
            );
        }
        self
    }

    /// The record as a schema-v1 JSON object: version tag, identity,
    /// headline numbers, the full statistics block, the Fig. 3 window
    /// reports (when the analyzer ran) and the compiler report (when the
    /// hint pass ran). Field names and order are part of the versioned
    /// contract (pinned by the `schema_v1` golden snapshot); any change
    /// must bump [`SCHEMA_VERSION`].
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "schema_version".to_string(),
                Json::from(crate::experiment::SCHEMA_VERSION),
            ),
            ("config".to_string(), Json::from(self.label.as_str())),
            ("benchmark".to_string(), Json::from(self.benchmark.as_str())),
            ("cycles".to_string(), Json::from(self.outcome.result.cycles)),
            (
                "instructions".to_string(),
                Json::from(self.outcome.result.stats.warp_instructions),
            ),
            ("ipc".to_string(), Json::from(self.ipc())),
            (
                "completed".to_string(),
                Json::from(self.outcome.result.completed),
            ),
            (
                "checked".to_string(),
                match &self.outcome.checked {
                    Ok(()) => Json::from(true),
                    Err(e) => Json::from(e.as_str()),
                },
            ),
            ("stats".to_string(), self.outcome.result.stats.to_json()),
            (
                "per_sm".to_string(),
                Json::Arr(
                    self.outcome
                        .result
                        .per_sm
                        .iter()
                        .map(SimStats::to_json)
                        .collect(),
                ),
            ),
        ];
        if !self.outcome.result.windows.is_empty() {
            fields.push((
                "windows".to_string(),
                Json::Arr(
                    self.outcome
                        .result
                        .windows
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("window", Json::from(w.window)),
                                ("total_reads", Json::from(w.total_reads)),
                                ("bypassed_reads", Json::from(w.bypassed_reads)),
                                ("total_writes", Json::from(w.total_writes)),
                                ("bypassed_writes", Json::from(w.bypassed_writes)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(c) = &self.compiler {
            fields.push((
                "compiler".to_string(),
                Json::obj([
                    ("rf_only", Json::from(c.rf_only)),
                    ("persistent", Json::from(c.persistent)),
                    ("transient", Json::from(c.transient)),
                    // The register indices themselves (not just a count),
                    // so the report round-trips through from_json.
                    (
                        "transient_regs",
                        Json::Arr(
                            c.transient_regs
                                .iter()
                                .map(|r| Json::from(u64::from(r.index())))
                                .collect(),
                        ),
                    ),
                    ("used_regs", Json::from(c.used_regs)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Decodes a record from the object [`RunRecord::to_json`] writes.
    /// Strict on every stored field (derived fields like `ipc` are
    /// recomputed, not read), so a decoded record re-serializes
    /// byte-identically — the property the content-addressed result store
    /// relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for a missing/mistyped field or an
    /// unsupported `schema_version`.
    pub fn from_json(v: &Json) -> Result<RunRecord, DecodeError> {
        let version = v.req_u64("schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(DecodeError::new(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let stats = SimStats::from_json(v.req("stats")?).map_err(|e| e.context("stats"))?;
        let per_sm = v
            .req_arr("per_sm")?
            .iter()
            .map(|s| SimStats::from_json(s).map_err(|e| e.context("per_sm")))
            .collect::<Result<Vec<_>, _>>()?;
        let windows = match v.get("windows") {
            None => Vec::new(),
            Some(w) => w
                .as_arr()
                .ok_or_else(|| DecodeError::new("`windows` must be an array"))?
                .iter()
                .map(|w| {
                    Ok(WindowReport {
                        window: w.req_u64("window")? as u32,
                        total_reads: w.req_u64("total_reads")?,
                        bypassed_reads: w.req_u64("bypassed_reads")?,
                        total_writes: w.req_u64("total_writes")?,
                        bypassed_writes: w.req_u64("bypassed_writes")?,
                    })
                })
                .collect::<Result<Vec<_>, DecodeError>>()
                .map_err(|e| e.context("windows"))?,
        };
        let checked = match v.req("checked")? {
            Json::Bool(true) => Ok(()),
            Json::Str(s) => Err(s.clone()),
            _ => {
                return Err(DecodeError::new(
                    "`checked` must be true or an error string",
                ))
            }
        };
        let compiler = match v.get("compiler") {
            None => None,
            Some(c) => Some(CompilerReport {
                rf_only: c.req_u64("rf_only")? as usize,
                persistent: c.req_u64("persistent")? as usize,
                transient: c.req_u64("transient")? as usize,
                transient_regs: c
                    .req_arr("transient_regs")?
                    .iter()
                    .map(|r| {
                        let idx = r
                            .as_u64()
                            .filter(|&i| i <= 254)
                            .ok_or_else(|| DecodeError::new("bad register index"))?;
                        Ok(bow_isa::Reg::r(idx as u8))
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()
                    .map_err(|e| e.context("compiler"))?,
                used_regs: c.req_u64("used_regs")? as usize,
            }),
        };
        Ok(RunRecord {
            label: v.req_str("config")?.to_string(),
            benchmark: v.req_str("benchmark")?.to_string(),
            outcome: RunOutcome {
                result: bow_sim::LaunchResult {
                    cycles: v.req_u64("cycles")?,
                    stats,
                    per_sm,
                    windows,
                    completed: v.req_bool("completed")?,
                    sanitizer: None,
                },
                checked,
            },
            compiler,
        })
    }
}

/// Runs the configured compiler stages over a benchmark's kernel: the
/// footnote-1 scheduler if `config.reorder`, then the §IV-B hint pass if
/// `config.hints`, then the barrier lowering when the configuration uses
/// the stack-less divergence model (an opcode rewrite, so the hint
/// sidecar stays pc-aligned), then the control-bits emitter when the
/// configuration targets the modern core (whose issue stage consumes the
/// sidecar). Pure — the parallel sweep engine memoizes its output per
/// (benchmark, window, reorder, core model, divergence model) so BOW-WR
/// sweeps annotate each kernel once, not once per figure cell.
pub fn prepare_kernel(
    bench: &dyn Benchmark,
    config: &Config,
) -> (bow_isa::Kernel, Option<CompilerReport>) {
    let window = config.gpu.collector.window().unwrap_or(3);
    let kernel = bench.kernel();
    let kernel = if config.reorder {
        bow_compiler::reorder_for_bypass(&kernel)
    } else {
        kernel
    };
    let (kernel, report) = if config.hints {
        if config.verify {
            match bow_compiler::annotate_checked(&kernel, window) {
                Ok((k, rep)) => (k, Some(rep)),
                Err(audit) => {
                    let unsound: Vec<String> = audit
                        .unsound()
                        .map(|f| format!("pc {} ({} as {:?})", f.pc, f.reg, f.hint))
                        .collect();
                    panic!(
                        "hint verifier rejected `{}` (window {window}): {} unsound \
                         hint(s): [{}]",
                        kernel.name,
                        unsound.len(),
                        unsound.join(", ")
                    );
                }
            }
        } else {
            let (k, rep) = annotate(&kernel, window);
            (k, Some(rep))
        }
    } else {
        (kernel, None)
    };
    let kernel = if config.gpu.divergence == DivergenceModel::Barrier {
        match bow_compiler::lower_to_barriers(&kernel) {
            Ok(k) => k,
            Err(e) => panic!("barrier lowering rejected `{}`: {e}", kernel.name),
        }
    } else {
        kernel
    };
    if config.gpu.core_model == CoreModelKind::Modern {
        (
            bow_compiler::emit_ctrl(&kernel, &bow_compiler::CtrlLatencies::default()),
            report,
        )
    } else {
        (kernel, report)
    }
}

/// Launches an already-prepared kernel under `config` and packages the
/// outcome. The timing simulation itself; everything deterministic.
pub fn run_prepared(
    bench: &dyn Benchmark,
    config: &Config,
    kernel: &bow_isa::Kernel,
    compiler: Option<CompilerReport>,
) -> RunRecord {
    let mut gpu = Gpu::new(config.gpu.clone());
    let outcome = bench.run_with(&mut gpu, kernel);
    RunRecord {
        label: config.label.clone(),
        benchmark: bench.name().to_string(),
        outcome,
        compiler,
    }
}

/// Runs `bench` under `config`, applying the compiler pass if requested.
pub fn run(bench: &dyn Benchmark, config: Config) -> RunRecord {
    let (kernel, compiler) = prepare_kernel(bench, &config);
    run_prepared(bench, &config, &kernel, compiler)
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Renders a simple aligned table: a header row and data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_workloads::{by_name, Scale};

    #[test]
    fn run_applies_hints_only_for_bow_wr() {
        let b = by_name("vectoradd", Scale::Test).expect("exists");
        let base = run(b.as_ref(), ConfigBuilder::baseline().build());
        assert!(base.compiler.is_none());
        base.assert_checked();
        let wr = run(b.as_ref(), ConfigBuilder::bow_wr(3).build());
        assert!(wr.compiler.is_some());
        wr.assert_checked();
    }

    #[test]
    fn builder_labels_are_descriptive() {
        assert_eq!(ConfigBuilder::baseline().build().label, "baseline");
        assert_eq!(ConfigBuilder::bow(4).build().label, "bow iw4");
        assert_eq!(ConfigBuilder::bow_wr(3).build().label, "bow-wr iw3");
        assert_eq!(
            ConfigBuilder::bow_wr(3).half_size(true).build().label,
            "bow-wr iw3 half"
        );
        assert_eq!(
            ConfigBuilder::bow_wr(3).hints(false).build().label,
            "bow-wb iw3"
        );
        assert_eq!(ConfigBuilder::bow_flex(6).build().label, "bow-flex c6");
        assert_eq!(ConfigBuilder::rfc().build().label, "rfc");
        assert_eq!(
            ConfigBuilder::bow_wr(3).reorder(true).build().label,
            "bow-wr+sched iw3"
        );
        assert_eq!(
            ConfigBuilder::bow_wr(2).label("custom").build().label,
            "custom"
        );
    }

    #[test]
    fn core_model_knob_labels_plumbs_and_annotates() {
        let c = ConfigBuilder::bow_wr(3)
            .core_model(CoreModelKind::Modern)
            .build();
        assert_eq!(c.label, "bow-wr iw3+modern");
        assert_eq!(c.gpu.core_model, CoreModelKind::Modern);
        let b = by_name("vectoradd", Scale::Test).expect("exists");
        let (kernel, _) = prepare_kernel(b.as_ref(), &c);
        assert_eq!(
            kernel.ctrl.len(),
            kernel.insts.len(),
            "modern configs carry a full control-bits sidecar"
        );
        let rec = run(b.as_ref(), c);
        rec.assert_checked();
        // Pascal configs stay unannotated.
        let (kernel, _) = prepare_kernel(b.as_ref(), &ConfigBuilder::bow_wr(3).build());
        assert!(kernel.ctrl.is_empty());
    }

    #[test]
    fn divergence_knob_labels_plumbs_and_lowers() {
        let c = ConfigBuilder::bow_wr(3)
            .divergence(DivergenceModel::Barrier)
            .build();
        assert_eq!(c.label, "bow-wr iw3+barrier");
        assert_eq!(c.gpu.divergence, DivergenceModel::Barrier);
        let b = by_name("bfs", Scale::Test).expect("exists");
        let (kernel, _) = prepare_kernel(b.as_ref(), &c);
        assert!(
            kernel.uses_convergence_barriers(),
            "barrier configs lower ssy/sync away"
        );
        assert!(!kernel
            .insts
            .iter()
            .any(|i| matches!(i.op, bow_isa::Opcode::Ssy | bow_isa::Opcode::Sync)));
        let rec = run(b.as_ref(), c);
        rec.assert_checked();
        // Stack configs keep the stack form.
        let (kernel, _) = prepare_kernel(b.as_ref(), &ConfigBuilder::bow_wr(3).build());
        assert!(!kernel.uses_convergence_barriers());
        // Both model knobs stack in the label.
        let both = ConfigBuilder::baseline()
            .core_model(CoreModelKind::Modern)
            .divergence(DivergenceModel::Barrier)
            .build();
        assert_eq!(both.label, "baseline+modern+barrier");
    }

    #[test]
    fn shadow_rf_conflicts_with_the_modern_core() {
        let e = ConfigBuilder::bow_wr(3)
            .core_model(CoreModelKind::Modern)
            .shadow_rf(true)
            .try_build()
            .unwrap_err();
        assert!(matches!(e, ConfigError::Conflict { .. }), "{e}");
        // Each knob is fine on its own.
        assert!(ConfigBuilder::bow_wr(3).shadow_rf(true).try_build().is_ok());
        assert!(ConfigBuilder::bow_wr(3)
            .core_model(CoreModelKind::Modern)
            .try_build()
            .is_ok());
    }

    #[test]
    fn try_build_validates_ranges() {
        assert!(ConfigBuilder::bow(0).try_build().is_err());
        let e = ConfigBuilder::bow_wr(65).try_build().unwrap_err();
        assert_eq!(
            e,
            ConfigError::Range {
                field: "window",
                value: 65,
                min: 1,
                max: 64,
            }
        );
        assert!(ConfigBuilder::bow_flex(0).try_build().is_err());
        assert!(ConfigBuilder::rfc().rfc_entries(0).try_build().is_err());
        assert!(ConfigBuilder::baseline()
            .analyzer(&[3, 0])
            .try_build()
            .is_err());
        // Valid extremes pass.
        assert!(ConfigBuilder::bow(1).try_build().is_ok());
        assert!(ConfigBuilder::bow_wr(64).try_build().is_ok());
        // The analyzer window bound only applies where it is meaningful.
        assert!(ConfigBuilder::baseline().window(99).try_build().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_panics_on_invalid_ranges() {
        let _ = ConfigBuilder::bow(0).build();
    }

    #[test]
    fn builder_knobs_are_orthogonal() {
        let c = ConfigBuilder::bow_wr(5)
            .half_size(true)
            .reorder(true)
            .model(GpuModel::TitanX)
            .analyzer(&[2, 3])
            .build();
        assert_eq!(
            c.gpu.collector,
            CollectorKind::BowWr {
                window: 5,
                half_size: true
            }
        );
        assert_eq!(c.gpu.num_sms, 56);
        assert_eq!(c.gpu.analyze_windows, vec![2, 3]);
        assert!(c.hints && c.reorder);
    }

    #[test]
    fn prepared_run_equals_direct_run() {
        let b = by_name("vectoradd", Scale::Test).expect("exists");
        let cfg = ConfigBuilder::bow_wr(3).build();
        let direct = run(b.as_ref(), cfg.clone());
        let (kernel, rep) = prepare_kernel(b.as_ref(), &cfg);
        let prepared = run_prepared(b.as_ref(), &cfg, &kernel, rep);
        assert_eq!(direct.outcome.result.cycles, prepared.outcome.result.cycles);
        assert_eq!(direct.outcome.result.stats, prepared.outcome.result.stats);
    }

    #[test]
    fn run_record_serializes_to_json() {
        let b = by_name("vectoradd", Scale::Test).expect("exists");
        let rec = run(b.as_ref(), ConfigBuilder::bow_wr(3).build());
        let v = bow_util::json::parse(&rec.to_json().to_string_pretty()).expect("valid JSON");
        assert_eq!(v.get("benchmark").and_then(Json::as_str), Some("vectoradd"));
        assert_eq!(v.get("config").and_then(Json::as_str), Some("bow-wr iw3"));
        assert_eq!(
            v.get("cycles").and_then(Json::as_u64),
            Some(rec.outcome.result.cycles)
        );
        assert_eq!(v.get("checked"), Some(&Json::Bool(true)));
        assert!(v
            .get("stats")
            .and_then(|s| s.get("bypassed_reads"))
            .is_some());
        let per_sm = v.get("per_sm").expect("per-SM breakdown present");
        match per_sm {
            Json::Arr(sms) => {
                assert_eq!(sms.len(), rec.outcome.result.per_sm.len());
                let total: u64 = sms
                    .iter()
                    .map(|s| {
                        s.get("warp_instructions")
                            .and_then(Json::as_u64)
                            .expect("per-SM instruction count")
                    })
                    .sum();
                assert_eq!(total, rec.outcome.result.stats.warp_instructions);
            }
            other => panic!("per_sm must be an array, got {other:?}"),
        }
        assert!(
            v.get("compiler").is_some(),
            "bow-wr records carry the compiler report"
        );
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "ipc"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["long-name".into(), "2.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.55), " 55.0%");
    }
}
