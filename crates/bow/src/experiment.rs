//! The experiment driver: one call runs a benchmark under a named
//! configuration, applying the compiler pass where the configuration
//! requires it. Every figure/table binary in `bow-bench` is a thin loop
//! over this module.

use bow_compiler::{annotate, CompilerReport};
use bow_sim::{CollectorKind, Gpu, GpuConfig};
use bow_workloads::{Benchmark, RunOutcome};

/// A named pipeline configuration to evaluate.
#[derive(Clone, Debug)]
pub struct Config {
    /// Display label (e.g. `"bow-wr iw3"`).
    pub label: String,
    /// The GPU configuration.
    pub gpu: GpuConfig,
    /// Whether to run the §IV-B compiler pass before launching (BOW-WR).
    pub hints: bool,
    /// Whether to run the bypass-aware scheduler (the paper's footnote 1
    /// extension) before hint assignment.
    pub reorder: bool,
}

impl Config {
    /// The unmodified baseline GPU.
    pub fn baseline() -> Config {
        Config {
            label: "baseline".into(),
            gpu: GpuConfig::scaled(CollectorKind::Baseline),
            hints: false,
            reorder: false,
        }
    }

    /// BOW (read bypassing, write-through) with the given window.
    pub fn bow(window: u32) -> Config {
        Config {
            label: format!("bow iw{window}"),
            gpu: GpuConfig::scaled(CollectorKind::bow(window)),
            hints: false,
            reorder: false,
        }
    }

    /// BOW-WR (read+write bypassing, compiler hints) with the given window.
    pub fn bow_wr(window: u32) -> Config {
        Config {
            label: format!("bow-wr iw{window}"),
            gpu: GpuConfig::scaled(CollectorKind::bow_wr(window)),
            hints: true,
            reorder: false,
        }
    }

    /// BOW-WR with the half-size (shared-entry) BOC of §IV-C.
    pub fn bow_wr_half(window: u32) -> Config {
        Config {
            label: format!("bow-wr iw{window} half"),
            gpu: GpuConfig::scaled(CollectorKind::BowWr { window, half_size: true }),
            hints: true,
            reorder: false,
        }
    }

    /// BOW-WR *without* the compiler pass — the pure write-back design the
    /// middle column of Table I evaluates.
    pub fn bow_writeback(window: u32) -> Config {
        Config {
            label: format!("bow-wb iw{window}"),
            gpu: GpuConfig::scaled(CollectorKind::bow_wr(window)),
            hints: false,
            reorder: false,
        }
    }

    /// Buffer-bounded bypassing — the paper's future-work design: no
    /// nominal window, no compiler hints, eviction purely by capacity.
    pub fn bow_flex(capacity: u32) -> Config {
        Config {
            label: format!("bow-flex c{capacity}"),
            gpu: GpuConfig::scaled(CollectorKind::bow_flex(capacity)),
            hints: false,
            reorder: false,
        }
    }

    /// The register-file-cache comparison baseline (§V-A).
    pub fn rfc() -> Config {
        Config {
            label: "rfc".into(),
            gpu: GpuConfig::scaled(CollectorKind::rfc6()),
            hints: false,
            reorder: false,
        }
    }

    /// BOW-WR with the footnote-1 scheduler in front of the hint pass.
    pub fn bow_wr_reordered(window: u32) -> Config {
        Config { reorder: true, label: format!("bow-wr+sched iw{window}"), ..Config::bow_wr(window) }
    }

    /// Enables the Fig. 3 window analyzer on this configuration.
    pub fn with_analyzer(mut self, windows: &[u32]) -> Config {
        self.gpu = self.gpu.with_analyzer(windows);
        self
    }
}

/// The result of running one benchmark under one configuration.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The configuration label.
    pub label: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Launch statistics and reference check.
    pub outcome: RunOutcome,
    /// Compiler report (when the configuration ran the hint pass).
    pub compiler: Option<CompilerReport>,
}

impl RunRecord {
    /// Instructions per cycle of the run.
    pub fn ipc(&self) -> f64 {
        self.outcome.result.ipc()
    }

    /// Panics if the reference check failed — experiments must never
    /// aggregate wrong results.
    pub fn assert_checked(&self) -> &RunRecord {
        if let Err(e) = &self.outcome.checked {
            panic!("{} under {} produced wrong results: {e}", self.benchmark, self.label);
        }
        self
    }
}

/// Runs `bench` under `config`, applying the compiler pass if requested.
pub fn run(bench: &dyn Benchmark, config: Config) -> RunRecord {
    let window = config.gpu.collector.window().unwrap_or(3);
    let kernel = bench.kernel();
    let kernel = if config.reorder {
        bow_compiler::reorder_for_bypass(&kernel)
    } else {
        kernel
    };
    let (kernel, compiler) = if config.hints {
        let (k, rep) = annotate(&kernel, window);
        (k, Some(rep))
    } else {
        (kernel, None)
    };
    let mut gpu = Gpu::new(config.gpu.clone());
    let outcome = bench.run_with(&mut gpu, &kernel);
    RunRecord {
        label: config.label,
        benchmark: bench.name().to_string(),
        outcome,
        compiler,
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Renders a simple aligned table: a header row and data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_workloads::{by_name, Scale};

    #[test]
    fn run_applies_hints_only_for_bow_wr() {
        let b = by_name("vectoradd", Scale::Test).expect("exists");
        let base = run(b.as_ref(), Config::baseline());
        assert!(base.compiler.is_none());
        base.assert_checked();
        let wr = run(b.as_ref(), Config::bow_wr(3));
        assert!(wr.compiler.is_some());
        wr.assert_checked();
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(Config::bow(4).label, "bow iw4");
        assert_eq!(Config::bow_wr_half(3).label, "bow-wr iw3 half");
        assert_eq!(Config::bow_writeback(3).label, "bow-wb iw3");
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "ipc"],
            &[vec!["a".into(), "1.0".into()], vec!["long-name".into(), "2.0".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.55), " 55.0%");
    }
}
