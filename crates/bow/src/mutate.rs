//! The mutation sanitizer: does the static hint verifier catch *every*
//! unsound write-back hint that actually loses a value?
//!
//! [`run_mutation`] generates the same deterministic kernel corpus as the
//! fuzzer ([`crate::fuzz`]), annotates each kernel with the §IV-B hint
//! pass, and then flips sound hints to `BocOnly` one static write at a
//! time — the exact corruption an incorrect hint producer would commit.
//! Every mutant is judged twice, by two independent layers:
//!
//! * **Ground truth** — an architectural window replayer walks the
//!   mutant's *dynamic* per-warp instruction streams (extracted from the
//!   [`bow_sim::oracle`] write log, which is hint-independent) through an
//!   exact model of the sliding operand window: reads re-touch entries,
//!   entries evict at `window` instructions since last touch, a dirty
//!   `BocOnly` eviction drops the value, and an `RfOnly` write-back
//!   invalidates a superseded buffered copy (the simulator's
//!   `WarpWindow::invalidate`). A read that observes a register-file
//!   generation older than the architectural one is a *stale read*: the
//!   mutant is ground-truth unsound.
//! * **The accused** — [`bow_compiler::verify_hints`], the path-sensitive
//!   static verifier under audit.
//!
//! The sanitizer's contract is the verifier's conservativeness theorem:
//! every ground-truth-unsound mutant must be statically flagged. A missed
//! mutant is a verifier bug and fails the run. The reverse direction is
//! reported but not enforced — the verifier is deliberately conservative
//! (lane-mask-blind outside serialized diamonds, guarded redefinitions
//! are only may-kills, dynamic rescues ignored), so statically-flagged
//! but dynamically-clean mutants are counted as `overcautious`.
//!
//! A sample of ground-truth-unsound mutants is additionally driven through
//! the full pipeline with the shadow register file enabled
//! (`GpuConfig::shadow_rf`) under the lockstep oracle, closing the
//! triangle: static verifier, architectural replayer, and cycle-level
//! pipeline all observe the same injected bug.

use std::time::{Duration, Instant};

use crate::experiment::ConfigBuilder;
use crate::fuzz::{case_seed, FUZZ_MAX_CYCLES};
use crate::suite::{effective_jobs, map_parallel};
use bow_compiler::{annotate, lower_to_barriers, verify_hints};
use bow_isa::fuzz::{self, FuzzKernel};
use bow_isa::{Kernel, Reg, WritebackHint};
use bow_sim::oracle::{run_oracle, LockstepChecker};
use bow_sim::{DivergenceModel, Gpu};
use bow_util::json::Json;
use bow_util::XorShift;

/// Options for one sanitizer session.
#[derive(Clone, Debug)]
pub struct MutateOptions {
    /// Number of generated corpus kernels.
    pub cases: u64,
    /// Master seed (shares [`case_seed`] derivation with the fuzzer).
    pub seed: u64,
    /// Worker threads (`0` = all cores).
    pub jobs: usize,
    /// Statement budget per generated program.
    pub size: usize,
    /// Operand-window size to annotate, mutate and replay under.
    pub window: u32,
    /// Cases whose first unsound mutant is also driven through the full
    /// pipeline + lockstep oracle (each is a whole simulation, so this is
    /// a sample, not the corpus).
    pub lockstep_cases: u64,
    /// `passed()` requires at least this many injected mutants…
    pub min_mutants: u64,
    /// …and at least this many of them ground-truth unsound.
    pub min_unsound: u64,
    /// Print per-case progress to stderr.
    pub progress: bool,
    /// Reconvergence machinery the campaign runs under. `Barrier` lowers
    /// every annotated kernel (and so every mutant) to convergence
    /// barriers, auditing the verifier's barrier-form serialization model
    /// with the same replay + lockstep triangle.
    pub divergence: DivergenceModel,
}

impl MutateOptions {
    /// The full fixed-seed campaign: ≥500 ground-truth-unsound mutants.
    pub fn full() -> MutateOptions {
        MutateOptions {
            cases: 64,
            seed: 0x5eed_b0c5,
            jobs: 0,
            size: 24,
            window: 3,
            lockstep_cases: 4,
            min_mutants: 800,
            min_unsound: 500,
            progress: false,
            divergence: DivergenceModel::Stack,
        }
    }

    /// The CI smoke configuration: ≥64 injected mutants.
    pub fn smoke() -> MutateOptions {
        MutateOptions {
            cases: 8,
            min_mutants: 64,
            min_unsound: 20,
            lockstep_cases: 2,
            ..MutateOptions::full()
        }
    }
}

/// A ground-truth-unsound mutant the static verifier failed to flag —
/// a verifier bug.
#[derive(Clone, Debug)]
pub struct MissedMutant {
    /// Corpus case index.
    pub case: u64,
    /// Derived per-case seed (regenerates the kernel alone).
    pub case_seed: u64,
    /// The mutated write.
    pub pc: usize,
    /// Its destination register.
    pub reg: Reg,
    /// The sound hint that was flipped to `BocOnly`.
    pub hint_was: WritebackHint,
    /// Stale reads the replayer observed.
    pub stale_reads: u64,
}

/// The outcome of a sanitizer session.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Corpus kernels generated.
    pub cases: u64,
    /// Window size used throughout.
    pub window: u32,
    /// Injected mutants (one per sound `Both`/`RfOnly` write).
    pub mutants_total: u64,
    /// Mutants the replayer proved lose a live value.
    pub mutants_unsound: u64,
    /// Unsound mutants the verifier flagged (must equal `mutants_unsound`).
    pub caught: u64,
    /// Unsound mutants the verifier missed (must be empty).
    pub missed: Vec<MissedMutant>,
    /// Statically flagged but dynamically clean (conservatism, not a bug).
    pub overcautious: u64,
    /// Neither flagged nor dynamically unsound (e.g. all reads in-window).
    pub benign: u64,
    /// Stale reads in *unmutated* annotated kernels (must be 0).
    pub baseline_stale_reads: u64,
    /// Unmutated annotated kernels the verifier rejected (must be 0).
    pub baseline_rejected: u64,
    /// Unsound mutants driven through the shadow-RF pipeline.
    pub lockstep_attempted: u64,
    /// …of which the lockstep oracle (or final memory) caught.
    pub lockstep_confirmed: u64,
    /// Floors copied from the options, for `passed()`.
    pub min_mutants: u64,
    /// See `min_mutants`.
    pub min_unsound: u64,
    /// Wall-clock time of the session.
    pub wall: Duration,
}

impl MutationReport {
    /// Whether the session upholds the sanitizer contract.
    pub fn passed(&self) -> bool {
        self.missed.is_empty()
            && self.baseline_stale_reads == 0
            && self.baseline_rejected == 0
            && self.mutants_total >= self.min_mutants
            && self.mutants_unsound >= self.min_unsound
            && (self.lockstep_attempted == 0 || self.lockstep_confirmed > 0)
    }

    /// A one-paragraph human summary.
    pub fn summary(&self) -> String {
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let mut s = format!(
            "mutation sanitizer: {verdict} — {} kernels, {} mutants injected \
             (window {}), {} ground-truth unsound, {} caught, {} missed, \
             {} overcautious, {} benign; pipeline lockstep confirmed {}/{} \
             sampled; {:.1}s",
            self.cases,
            self.mutants_total,
            self.window,
            self.mutants_unsound,
            self.caught,
            self.missed.len(),
            self.overcautious,
            self.benign,
            self.lockstep_confirmed,
            self.lockstep_attempted,
            self.wall.as_secs_f64()
        );
        if self.baseline_rejected > 0 || self.baseline_stale_reads > 0 {
            s.push_str(&format!(
                "; BASELINE BROKEN ({} rejected, {} stale reads)",
                self.baseline_rejected, self.baseline_stale_reads
            ));
        }
        for m in &self.missed {
            s.push_str(&format!(
                "\n  MISSED: case {} (seed {:#x}) pc {} {} {:?}->BocOnly, {} stale read(s)",
                m.case, m.case_seed, m.pc, m.reg, m.hint_was, m.stale_reads
            ));
        }
        s
    }

    /// The report as a JSON object (the CI artifact format).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("passed", Json::Bool(self.passed())),
            ("cases", Json::Num(self.cases as f64)),
            ("window", Json::Num(f64::from(self.window))),
            ("mutants_total", Json::Num(self.mutants_total as f64)),
            ("mutants_unsound", Json::Num(self.mutants_unsound as f64)),
            ("caught", Json::Num(self.caught as f64)),
            ("missed", Json::Num(self.missed.len() as f64)),
            ("overcautious", Json::Num(self.overcautious as f64)),
            ("benign", Json::Num(self.benign as f64)),
            (
                "baseline_stale_reads",
                Json::Num(self.baseline_stale_reads as f64),
            ),
            (
                "baseline_rejected",
                Json::Num(self.baseline_rejected as f64),
            ),
            (
                "lockstep_attempted",
                Json::Num(self.lockstep_attempted as f64),
            ),
            (
                "lockstep_confirmed",
                Json::Num(self.lockstep_confirmed as f64),
            ),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
        ])
    }
}

/// One warp's dynamic instruction stream: `(seq, pc, mask)` in issue
/// order. Control instructions are absent but still consumed their
/// sequence numbers, so window distances computed over `seq` are exact.
type WarpStream = Vec<(u64, usize, u32)>;

/// Per-register architectural state during replay. Write *versions* stand
/// in for values; staleness is judged per lane, because a divergent warp's
/// arms write disjoint lane sets and a read in one arm is entitled to a
/// register-file copy that predates the other arm's writes.
///
/// Both the window entry and the RF hold full-register *snapshots*: the
/// write-back stage gathers the complete merged architectural register
/// (`warp.regs` at write-back time, see `RegFiles::shadow_stage`), so a
/// snapshot taken at version `v` is correct for lane `l` exactly while no
/// later write has touched `l` — i.e. while `lane_ver[l] <= v`.
#[derive(Clone, Copy, Default)]
struct RegState {
    /// Version counter: increments on every architectural write.
    ver: u64,
    /// Per-lane version of the last write covering that lane.
    lane_ver: [u64; 32],
    /// Version of the snapshot the register-file banks hold.
    rf_ver: u64,
    /// The buffered window entry, if any.
    win: Option<WinEntry>,
}

impl RegState {
    /// Whether a read under `mask` of a snapshot at `ver` observes a lane
    /// that was overwritten after the snapshot was taken.
    fn stale_for(&self, mask: u32, ver: u64) -> bool {
        (0..32).any(|l| mask & (1 << l) != 0 && self.lane_ver[l] > ver)
    }
}

#[derive(Clone, Copy)]
struct WinEntry {
    /// Version of the buffered snapshot.
    ver: u64,
    /// Sequence number of the last touching instruction.
    last_touch: u64,
    /// The buffered value is newer than the RF copy.
    dirty: bool,
    /// Eviction writes it back (`Both`); `BocOnly` drops it.
    to_rf: bool,
}

/// Resolves a pending eviction: the entry slid out of the window before
/// `seq`. Evictions only affect later accesses of the *same* register, so
/// resolving them lazily at the next access is exact.
fn expire(st: &mut RegState, seq: u64, window: u64) {
    if let Some(e) = st.win {
        if seq.saturating_sub(e.last_touch) >= window {
            if e.dirty && e.to_rf {
                st.rf_ver = e.ver;
            }
            st.win = None;
        }
    }
}

/// Replays one warp stream under `kernel`'s hints and returns the number
/// of stale reads (reads with an active lane whose observed snapshot
/// predates that lane's newest architectural write).
fn replay_warp(kernel: &Kernel, stream: &WarpStream, window: u64) -> u64 {
    let mut regs = vec![RegState::default(); 256];
    let mut stale = 0u64;
    for &(seq, pc, mask) in stream {
        let inst = &kernel.insts[pc];
        for r in inst.unique_src_regs() {
            if r.is_zero() {
                continue;
            }
            let st = &mut regs[r.index() as usize];
            expire(st, seq, window);
            match st.win {
                Some(ref e) => {
                    // Window hit: forwarded from the buffer, re-touched.
                    if st.stale_for(mask, e.ver) {
                        stale += 1;
                    }
                }
                None => {
                    // RF fetch; the fetched snapshot is buffered clean.
                    if st.stale_for(mask, st.rf_ver) {
                        stale += 1;
                    }
                    st.win = Some(WinEntry {
                        ver: st.rf_ver,
                        last_touch: seq,
                        dirty: false,
                        to_rf: false,
                    });
                }
            }
            if let Some(e) = &mut st.win {
                e.last_touch = seq;
            }
        }
        if let Some(d) = inst.dst_reg() {
            if d.is_zero() {
                continue;
            }
            let st = &mut regs[d.index() as usize];
            expire(st, seq, window);
            st.ver += 1;
            for l in 0..32 {
                if mask & (1 << l) != 0 {
                    st.lane_ver[l] = st.ver;
                }
            }
            match inst.hint {
                WritebackHint::RfOnly => {
                    // Straight to the RF; a buffered copy is superseded and
                    // invalidated (`WarpWindow::invalidate`).
                    st.rf_ver = st.ver;
                    st.win = None;
                }
                WritebackHint::Both => {
                    st.win = Some(WinEntry {
                        ver: st.ver,
                        last_touch: seq,
                        dirty: true,
                        to_rf: true,
                    });
                }
                WritebackHint::BocOnly => {
                    st.win = Some(WinEntry {
                        ver: st.ver,
                        last_touch: seq,
                        dirty: true,
                        to_rf: false,
                    });
                }
            }
        }
    }
    stale
}

/// Total stale reads across every warp of a launch.
fn replay_kernel(kernel: &Kernel, streams: &[WarpStream], window: u64) -> u64 {
    streams.iter().map(|s| replay_warp(kernel, s, window)).sum()
}

/// Per-case tallies folded into the session report.
#[derive(Clone, Debug, Default)]
struct CaseOutcome {
    mutants_total: u64,
    mutants_unsound: u64,
    caught: u64,
    missed: Vec<MissedMutant>,
    overcautious: u64,
    benign: u64,
    baseline_stale_reads: u64,
    baseline_rejected: u64,
    lockstep_attempted: u64,
    lockstep_confirmed: u64,
}

/// Runs a sanitizer session. Deterministic for a given `(seed, cases,
/// size, window)` at any worker count.
pub fn run_mutation(opts: &MutateOptions) -> MutationReport {
    let start = Instant::now();
    let total = opts.cases as usize;
    let workers = effective_jobs(opts.jobs).min(total.max(1));
    let run_case = |case_idx: usize| run_one_case(opts, case_idx as u64);
    let progress = opts.progress;
    let results = map_parallel(total, workers, &run_case, |done, o: &CaseOutcome| {
        if progress {
            eprintln!(
                "[{done:>3}/{total}] +{} mutants ({} unsound, {} missed)",
                o.mutants_total,
                o.mutants_unsound,
                o.missed.len()
            );
        }
    });

    let mut report = MutationReport {
        cases: opts.cases,
        window: opts.window,
        mutants_total: 0,
        mutants_unsound: 0,
        caught: 0,
        missed: Vec::new(),
        overcautious: 0,
        benign: 0,
        baseline_stale_reads: 0,
        baseline_rejected: 0,
        lockstep_attempted: 0,
        lockstep_confirmed: 0,
        min_mutants: opts.min_mutants,
        min_unsound: opts.min_unsound,
        wall: Duration::default(),
    };
    for o in results {
        report.mutants_total += o.mutants_total;
        report.mutants_unsound += o.mutants_unsound;
        report.caught += o.caught;
        report.missed.extend(o.missed);
        report.overcautious += o.overcautious;
        report.benign += o.benign;
        report.baseline_stale_reads += o.baseline_stale_reads;
        report.baseline_rejected += o.baseline_rejected;
        report.lockstep_attempted += o.lockstep_attempted;
        report.lockstep_confirmed += o.lockstep_confirmed;
    }
    report.wall = start.elapsed();
    report
}

fn run_one_case(opts: &MutateOptions, case: u64) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    let cseed = case_seed(opts.seed, case);
    let mut rng = XorShift::new(cseed);
    let program = FuzzKernel::generate_sized(&mut rng, opts.size);
    let input = FuzzKernel::gen_input(&mut rng);
    let kernel = program.build(&format!("mutate_case_{case}"));
    let (annotated, _) = annotate(&kernel, opts.window);
    // Under the barrier model the pipeline executes the lowered form, so
    // mutate and verify that. Generated control flow is structured by
    // construction; a refusal here is a generator/compiler bug and is
    // surfaced through the baseline-rejected counter (must stay 0).
    let annotated = if opts.divergence == DivergenceModel::Barrier {
        match lower_to_barriers(&annotated) {
            Ok(k) => k,
            Err(_) => {
                out.baseline_rejected += 1;
                return out;
            }
        }
    } else {
        annotated
    };
    let window = u64::from(opts.window);

    // The unmutated annotation must be statically sound…
    if !verify_hints(&annotated, opts.window as usize).is_sound() {
        out.baseline_rejected += 1;
        return out;
    }

    // One oracle run per case: the write log is hint-independent, so the
    // same dynamic streams ground-truth every mutant of this kernel.
    let mut global = bow_mem::GlobalMemory::new();
    global.write_slice_u32(u64::from(fuzz::INPUT_BASE), &input);
    let oracle = run_oracle(&annotated, FuzzKernel::dims(), &fuzz::PARAMS, global, true);
    if !oracle.completed {
        // Runaway corpus kernel: nothing to ground-truth against. The
        // generator is designed to always terminate, so surface loudly.
        out.baseline_rejected += 1;
        return out;
    }
    let mut by_uid: std::collections::BTreeMap<u64, WarpStream> = std::collections::BTreeMap::new();
    for (&(uid, seq), rec) in &oracle.log {
        by_uid.entry(uid).or_default().push((seq, rec.pc, rec.mask));
    }
    let streams: Vec<WarpStream> = by_uid
        .into_values()
        .map(|mut s| {
            s.sort_unstable();
            s
        })
        .collect();

    // …and dynamically clean.
    out.baseline_stale_reads = replay_kernel(&annotated, &streams, window);
    if out.baseline_stale_reads > 0 {
        return out;
    }

    // Flip every sound RF-bound hint to BocOnly, one at a time.
    //
    // Up to this many unsound mutants of a sampled case are driven through
    // the pipeline (stopping at the first confirmation): forced capacity
    // evictions and late-arriving write-backs can dynamically rescue an
    // architecturally-dropped value, so any single mutant may run quiet.
    let mut lockstep_budget = if case < opts.lockstep_cases { 8u32 } else { 0 };
    for pc in 0..annotated.insts.len() {
        let inst = &annotated.insts[pc];
        let Some(reg) = inst.dst_reg() else { continue };
        if reg.is_zero() || inst.hint == WritebackHint::BocOnly {
            continue;
        }
        let hint_was = inst.hint;
        let mut mutant = annotated.clone();
        mutant.insts[pc].hint = WritebackHint::BocOnly;
        out.mutants_total += 1;

        let stale_reads = replay_kernel(&mutant, &streams, window);
        let flagged = !verify_hints(&mutant, opts.window as usize).is_sound();
        match (stale_reads > 0, flagged) {
            (true, true) => {
                out.mutants_unsound += 1;
                out.caught += 1;
            }
            (true, false) => {
                out.mutants_unsound += 1;
                out.missed.push(MissedMutant {
                    case,
                    case_seed: cseed,
                    pc,
                    reg,
                    hint_was,
                    stale_reads,
                });
            }
            (false, true) => out.overcautious += 1,
            (false, false) => out.benign += 1,
        }

        // Close the triangle on sampled cases: the cycle-level pipeline
        // with the shadow RF must observe the same bug the replayer
        // predicts (lockstep divergence, or at the latest a final-memory
        // mismatch).
        if stale_reads > 0 && lockstep_budget > 0 {
            lockstep_budget -= 1;
            out.lockstep_attempted += 1;
            if pipeline_catches(&mutant, &input, &oracle.log, opts.window) {
                out.lockstep_confirmed += 1;
                lockstep_budget = 0;
            }
        }
    }
    out
}

/// Runs `mutant` through the full pipeline with the shadow RF enabled and
/// reports whether the lockstep oracle or the final-memory check catches
/// the dropped value. (Dynamic rescues — forced evictions, late-arriving
/// write-backs — can legitimately absorb an architecturally-stale read,
/// so a single quiet run is possible; callers sample several cases.)
fn pipeline_catches(
    mutant: &Kernel,
    input: &[u32],
    log: &bow_sim::oracle::WriteLog,
    window: u32,
) -> bool {
    let mut gpu_cfg = ConfigBuilder::bow_wr(window).shadow_rf(true).build().gpu;
    gpu_cfg.max_cycles = FUZZ_MAX_CYCLES;
    let mut gpu = Gpu::new(gpu_cfg);
    gpu.global_mut()
        .write_slice_u32(u64::from(fuzz::INPUT_BASE), input);
    let oracle_fp = {
        let mut global = bow_mem::GlobalMemory::new();
        global.write_slice_u32(u64::from(fuzz::INPUT_BASE), input);
        run_oracle(mutant, FuzzKernel::dims(), &fuzz::PARAMS, global, false)
            .global
            .fingerprint()
    };
    let mut checker = LockstepChecker::new(log);
    let result = gpu.launch_with_probe(mutant, FuzzKernel::dims(), &fuzz::PARAMS, &mut checker);
    checker.divergence.is_some() || !result.completed || gpu.global().fingerprint() != oracle_fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replayer_models_the_window_exactly() {
        use bow_isa::{KernelBuilder, Operand};
        let r = Reg::r;
        // def r0 (BocOnly), read at distance 2 (hit), then at distance 4
        // from the re-touch (miss -> stale: the value was dropped).
        let k = KernelBuilder::new("t")
            .mov_imm(r(0), 7)
            .hint(WritebackHint::BocOnly)
            .nop()
            .iadd(r(1), r(0).into(), Operand::Imm(0))
            .nop()
            .nop()
            .nop()
            .iadd(r(2), r(0).into(), Operand::Imm(0))
            .exit()
            .build()
            .unwrap();
        let stream: WarpStream = (0..7).map(|i| (i as u64, i, u32::MAX)).collect();
        assert_eq!(replay_warp(&k, &stream, 3), 1, "one stale read at pc 6");
        assert_eq!(replay_warp(&k, &stream, 8), 0, "window 8 keeps it present");

        // Both writes back on eviction: no staleness at any window.
        let mut both = k.clone();
        both.insts[0].hint = WritebackHint::Both;
        assert_eq!(replay_warp(&both, &stream, 3), 0);
    }

    #[test]
    fn replayer_sees_rf_only_invalidation_as_a_kill() {
        use bow_isa::{KernelBuilder, Operand};
        let r = Reg::r;
        // Both def buffered dirty, RfOnly redef supersedes it, read after
        // the old entry would have evicted: the RF must hold the new value.
        let k = KernelBuilder::new("waw")
            .mov_imm(r(0), 1)
            .mov_imm(r(0), 2)
            .hint(WritebackHint::RfOnly)
            .nop()
            .nop()
            .nop()
            .iadd(r(1), r(0).into(), Operand::Imm(0))
            .exit()
            .build()
            .unwrap();
        let stream: WarpStream = (0..6).map(|i| (i as u64, i, u32::MAX)).collect();
        assert_eq!(replay_warp(&k, &stream, 3), 0, "no WAW regression");
    }

    #[test]
    fn staleness_is_judged_per_lane() {
        use bow_isa::{KernelBuilder, Operand};
        let r = Reg::r;
        // A BocOnly write under the lower half-warp's mask is dropped on
        // eviction. A later read by the *other* half is entitled to the
        // old RF snapshot — not stale; the same read by the writing half
        // observes the loss.
        let k = KernelBuilder::new("lanes")
            .mov_imm(r(0), 1)
            .hint(WritebackHint::BocOnly)
            .nop()
            .nop()
            .nop()
            .iadd(r(1), r(0).into(), Operand::Imm(0))
            .exit()
            .build()
            .unwrap();
        let stream = |read_mask: u32| -> WarpStream {
            vec![
                (0, 0, 0x0000_ffff),
                (1, 1, u32::MAX),
                (2, 2, u32::MAX),
                (3, 3, u32::MAX),
                (4, 4, read_mask),
            ]
        };
        assert_eq!(
            replay_warp(&k, &stream(0xffff_0000), 3),
            0,
            "disjoint lanes"
        );
        assert_eq!(
            replay_warp(&k, &stream(0x0000_0001), 3),
            1,
            "writing lane is stale"
        );
    }

    #[test]
    #[ignore = "full campaign; run with --ignored or via `bow-cli lint --mutate`"]
    fn full_session_meets_the_unsound_floor() {
        let report = run_mutation(&MutateOptions::full());
        assert!(report.passed(), "{}", report.summary());
        assert!(report.mutants_unsound >= 500, "{}", report.summary());
    }

    #[test]
    fn smoke_session_catches_every_unsound_mutant() {
        let report = run_mutation(&MutateOptions {
            jobs: 2,
            progress: false,
            ..MutateOptions::smoke()
        });
        assert!(report.passed(), "{}", report.summary());
        assert!(
            report.lockstep_confirmed > 0,
            "no pipeline confirmation: {}",
            report.summary()
        );
        let json = report.to_json().to_string_compact();
        assert!(json.contains("\"passed\":true"), "{json}");
    }

    #[test]
    fn barrier_smoke_session_catches_every_unsound_mutant() {
        // Same campaign with every kernel lowered to convergence barriers:
        // the verifier's barrier-form serialization model must catch the
        // same class of injected hint bugs, with no baseline rejections
        // (lowering must accept every generated kernel).
        let report = run_mutation(&MutateOptions {
            jobs: 2,
            progress: false,
            divergence: DivergenceModel::Barrier,
            ..MutateOptions::smoke()
        });
        assert!(report.passed(), "{}", report.summary());
        assert_eq!(report.baseline_rejected, 0, "{}", report.summary());
        assert!(report.mutants_unsound > 0, "{}", report.summary());
    }
}
