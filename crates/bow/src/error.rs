//! Typed errors at the `bow` / consumer boundary.
//!
//! Everything user input can get wrong — malformed text, out-of-range
//! configuration, unreadable files, failed verification — surfaces as a
//! [`BowError`] variant instead of a bare `String` or a panic, and each
//! variant maps to a stable process exit code so scripts and the
//! `bow-server` HTTP layer can tell the failure classes apart.

use std::fmt;

/// An invalid configuration request, produced by
/// [`ConfigBuilder::try_build`](crate::experiment::ConfigBuilder::try_build)
/// and by name lookups (benchmarks, collectors, models).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// A numeric knob is outside its supported range.
    Range {
        /// Knob name (e.g. `"window"`).
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// Smallest accepted value.
        min: u64,
        /// Largest accepted value.
        max: u64,
    },
    /// A name failed to resolve (benchmark, collector, model, scale).
    Unknown {
        /// What kind of name was looked up.
        what: &'static str,
        /// The name that failed to resolve.
        value: String,
    },
    /// Two individually valid knobs that cannot be combined.
    Conflict {
        /// What clashes and why.
        message: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Range {
                field,
                value,
                min,
                max,
            } => write!(f, "{field} {value} out of range ({min}..={max})"),
            ConfigError::Unknown { what, value } => write!(f, "unknown {what} `{value}`"),
            ConfigError::Conflict { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The error type of every user-facing `bow` entry point.
///
/// The variants are failure *classes*, each with a distinct exit code
/// (see [`BowError::exit_code`]): `bow-cli` exits with it, and the HTTP
/// server maps it onto a 4xx status.
#[derive(Clone, PartialEq, Debug)]
pub enum BowError {
    /// Malformed input text: command lines, assembly, JSON documents.
    Parse(String),
    /// A structurally valid but unsatisfiable configuration.
    Config(ConfigError),
    /// A filesystem or network operation failed.
    Io {
        /// The path (or address) the operation touched.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// The work ran but failed its check: reference verification, the
    /// differential fuzzer, the lint/mutation gates.
    Verify(String),
}

impl BowError {
    /// A parse error with the given message.
    pub fn parse(message: impl Into<String>) -> BowError {
        BowError::Parse(message.into())
    }

    /// An I/O error for `path`.
    pub fn io(path: impl Into<String>, message: impl fmt::Display) -> BowError {
        BowError::Io {
            path: path.into(),
            message: message.to_string(),
        }
    }

    /// A verification failure with the given report.
    pub fn verify(message: impl Into<String>) -> BowError {
        BowError::Verify(message.into())
    }

    /// The process exit code for this failure class: parse 2, config 3,
    /// io 4, verify 5. (0 is success; 1 is reserved for panics.)
    pub fn exit_code(&self) -> i32 {
        match self {
            BowError::Parse(_) => 2,
            BowError::Config(_) => 3,
            BowError::Io { .. } => 4,
            BowError::Verify(_) => 5,
        }
    }

    /// A short stable class name (`"parse"`, `"config"`, `"io"`,
    /// `"verify"`) — the `error.kind` field of the HTTP API.
    pub fn kind(&self) -> &'static str {
        match self {
            BowError::Parse(_) => "parse",
            BowError::Config(_) => "config",
            BowError::Io { .. } => "io",
            BowError::Verify(_) => "verify",
        }
    }
}

impl fmt::Display for BowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BowError::Parse(m) => f.write_str(m),
            BowError::Config(e) => e.fmt(f),
            BowError::Io { path, message } => write!(f, "{path}: {message}"),
            BowError::Verify(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for BowError {}

impl From<ConfigError> for BowError {
    fn from(e: ConfigError) -> BowError {
        BowError::Config(e)
    }
}

impl From<bow_util::json::ParseError> for BowError {
    fn from(e: bow_util::json::ParseError) -> BowError {
        BowError::Parse(e.to_string())
    }
}

impl From<bow_util::json::DecodeError> for BowError {
    fn from(e: bow_util::json::DecodeError) -> BowError {
        BowError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_and_kinds_are_stable() {
        let errs = [
            BowError::parse("x"),
            BowError::Config(ConfigError::Unknown {
                what: "benchmark",
                value: "nope".into(),
            }),
            BowError::io("a/b", "denied"),
            BowError::verify("mismatch"),
        ];
        let codes: Vec<i32> = errs.iter().map(BowError::exit_code).collect();
        assert_eq!(codes, [2, 3, 4, 5]);
        let kinds: Vec<&str> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["parse", "config", "io", "verify"]);
    }

    #[test]
    fn display_is_informative() {
        let e = BowError::Config(ConfigError::Range {
            field: "window",
            value: 99,
            min: 1,
            max: 64,
        });
        assert_eq!(e.to_string(), "window 99 out of range (1..=64)");
        assert_eq!(
            BowError::io("k.s", "no such file").to_string(),
            "k.s: no such file"
        );
    }
}
