//! The versioned (v1) request surface of the simulation service.
//!
//! `bow-server` accepts JSON documents describing a run (one kernel under
//! one configuration) or a sweep (benchmarks × configurations). This
//! module owns the contract: parsing those documents into typed requests
//! with [`BowError`]s for everything malformed, *canonicalizing* a
//! request into a stable JSON form, and deriving the content-addressed
//! **fingerprint** — `sha256(canonical request)` — that keys the result
//! store.
//!
//! Canonicalization rules:
//!
//! * the canonical form is built from the *resolved* configuration (the
//!   full [`GpuConfig`](bow_sim::GpuConfig)), not the request text, so `{"collector":"bow"}`
//!   and a request spelling out every default hash identically;
//! * execution knobs that provably do not affect results are excluded —
//!   most importantly `sim_threads`, so the store key honours the
//!   deterministic-engine contract (identical results at any thread
//!   count) and a cache entry produced at 8 threads serves a 1-thread
//!   client;
//! * inline kernels are canonicalized through their binary encoding
//!   ([`bow_isa::encode_kernel`]), so formatting/comment differences in
//!   the assembly text do not defeat the cache;
//! * `schema_version` is hashed in, so a schema bump invalidates every
//!   old key instead of serving stale-layout documents.

use crate::error::{BowError, ConfigError};
use crate::experiment::{run, Config, ConfigBuilder, GpuModel, RunRecord, SCHEMA_VERSION};
use crate::suite::{Suite, SweepResult};
use bow_sim::{CollectorKind, CoreModelKind, DivergenceModel, Gpu, OracleCheck, SchedPolicy};
use bow_util::json::Json;
use bow_workloads::{by_name, suite as paper_suite, RunOutcome, Scale};

/// The kernel a run request targets.
#[derive(Clone, Debug)]
pub enum KernelSpec {
    /// A named Table III workload (name + inputs + host reference).
    Workload {
        /// Benchmark name (e.g. `"vectoradd"`).
        name: String,
        /// Problem scale.
        scale: Scale,
    },
    /// An inline kernel, submitted as assembly text. No host reference
    /// exists, so the launch runs under the memory oracle
    /// ([`OracleCheck::Memory`]) for verification instead.
    Inline {
        /// The parsed kernel.
        kernel: bow_isa::Kernel,
        /// Launch dimensions: (blocks, threads-per-block).
        dims: (u32, u32),
    },
}

/// A parsed, validated `POST /v1/runs` request.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// What to run.
    pub kernel: KernelSpec,
    /// The resolved configuration to run it under.
    pub config: Config,
}

/// A parsed, validated `POST /v1/sweeps` request.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// Benchmark names, in request order.
    pub benchmarks: Vec<String>,
    /// Problem scale for every benchmark.
    pub scale: Scale,
    /// Configuration columns, in request order.
    pub configs: Vec<Config>,
    /// Sweep-pool worker count (0 = all cores).
    pub jobs: usize,
}

fn parse_scale(v: &Json) -> Result<Scale, BowError> {
    match v.get("scale").map(|s| (s.as_str(), s)) {
        None => Ok(Scale::Test),
        Some((Some("test"), _)) => Ok(Scale::Test),
        Some((Some("paper"), _)) => Ok(Scale::Paper),
        Some((other, _)) => Err(ConfigError::Unknown {
            what: "scale",
            value: other.map_or_else(|| "non-string".to_string(), str::to_string),
        }
        .into()),
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    }
}

/// Builds a [`Config`] from a `ConfigBuilder`-shaped JSON document.
///
/// Every knob is optional (defaults match [`ConfigBuilder`]); unknown
/// keys are rejected so client typos surface as 4xx errors instead of
/// silently running the wrong experiment.
///
/// # Errors
///
/// Returns a [`BowError`] for unknown keys/names, mistyped values or
/// out-of-range knobs.
pub fn config_from_json(v: &Json) -> Result<Config, BowError> {
    let obj = v
        .as_obj()
        .ok_or_else(|| BowError::parse("`config` must be an object"))?;
    const KNOWN: &[&str] = &[
        "collector",
        "window",
        "half_size",
        "capacity",
        "rfc_entries",
        "hints",
        "reorder",
        "model",
        "core_model",
        "divergence",
        "analyzer",
        "sim_threads",
        "label",
    ];
    for (key, _) in obj {
        if !KNOWN.contains(&key.as_str()) {
            return Err(BowError::parse(format!(
                "unknown config field `{key}` (known: {})",
                KNOWN.join(", ")
            )));
        }
    }
    let u32_field = |key: &'static str, default: u32| -> Result<u32, BowError> {
        match v.get(key) {
            None => Ok(default),
            Some(j) => j
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| BowError::parse(format!("`{key}` must be a small integer"))),
        }
    };
    let bool_field = |key: &'static str| -> Result<Option<bool>, BowError> {
        match v.get(key) {
            None => Ok(None),
            Some(j) => j
                .as_bool()
                .map(Some)
                .ok_or_else(|| BowError::parse(format!("`{key}` must be a bool"))),
        }
    };
    let window = u32_field("window", 3)?;
    let collector = v.get("collector").map_or(Ok("baseline"), |c| {
        c.as_str()
            .ok_or_else(|| BowError::parse("`collector` must be a string"))
    })?;
    let mut builder = match collector {
        "baseline" => ConfigBuilder::baseline(),
        "bow" => ConfigBuilder::bow(window),
        "bow-wr" => ConfigBuilder::bow_wr(window),
        "bow-wr-half" => ConfigBuilder::bow_wr(window).half_size(true),
        "bow-flex" => ConfigBuilder::bow_flex(u32_field("capacity", 12)?),
        "rfc" => ConfigBuilder::rfc().rfc_entries(u32_field("rfc_entries", 6)?),
        other => {
            return Err(ConfigError::Unknown {
                what: "collector",
                value: other.to_string(),
            }
            .into())
        }
    };
    if let Some(half) = bool_field("half_size")? {
        builder = builder.half_size(half);
    }
    if let Some(hints) = bool_field("hints")? {
        builder = builder.hints(hints);
    }
    if let Some(reorder) = bool_field("reorder")? {
        builder = builder.reorder(reorder);
    }
    match v.get("model").map(|m| m.as_str()) {
        None => {}
        Some(Some("scaled")) => builder = builder.model(GpuModel::Scaled),
        Some(Some("titan-x")) => builder = builder.model(GpuModel::TitanX),
        Some(other) => {
            return Err(ConfigError::Unknown {
                what: "model",
                value: other.map_or_else(|| "non-string".to_string(), str::to_string),
            }
            .into())
        }
    }
    match v.get("core_model").map(|m| m.as_str()) {
        None => {}
        Some(Some("pascal")) => builder = builder.core_model(CoreModelKind::Pascal),
        Some(Some("modern")) => builder = builder.core_model(CoreModelKind::Modern),
        Some(other) => {
            return Err(ConfigError::Unknown {
                what: "core_model",
                value: other.map_or_else(|| "non-string".to_string(), str::to_string),
            }
            .into())
        }
    }
    match v.get("divergence").map(|m| m.as_str()) {
        None => {}
        Some(Some("stack")) => builder = builder.divergence(DivergenceModel::Stack),
        Some(Some("barrier")) => builder = builder.divergence(DivergenceModel::Barrier),
        Some(other) => {
            return Err(ConfigError::Unknown {
                what: "divergence",
                value: other.map_or_else(|| "non-string".to_string(), str::to_string),
            }
            .into())
        }
    }
    if let Some(windows) = v.get("analyzer") {
        let ws = windows
            .as_arr()
            .ok_or_else(|| BowError::parse("`analyzer` must be an array of window sizes"))?
            .iter()
            .map(|w| {
                w.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| BowError::parse("`analyzer` entries must be small integers"))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        builder = builder.analyzer(&ws);
    }
    builder = builder.sim_threads(u32_field("sim_threads", 1)?);
    if let Some(label) = v.get("label") {
        builder = builder.label(
            label
                .as_str()
                .ok_or_else(|| BowError::parse("`label` must be a string"))?,
        );
    }
    Ok(builder.try_build()?)
}

/// The canonical JSON form of a resolved configuration: every semantic
/// knob of the [`GpuConfig`](bow_sim::GpuConfig) spelled out, presentational/execution knobs
/// (`label`, `sim_threads`, tracing, oracle mode) excluded. This is what
/// gets hashed into the fingerprint.
pub fn canonical_config_json(config: &Config) -> Json {
    let g = &config.gpu;
    let collector = match g.collector {
        CollectorKind::Baseline => Json::obj([("kind", Json::from("baseline"))]),
        CollectorKind::Bow { window, half_size } => Json::obj([
            ("kind", Json::from("bow")),
            ("window", Json::from(window)),
            ("half_size", Json::from(half_size)),
        ]),
        CollectorKind::BowWr { window, half_size } => Json::obj([
            ("kind", Json::from("bow-wr")),
            ("window", Json::from(window)),
            ("half_size", Json::from(half_size)),
        ]),
        CollectorKind::BowFlex { capacity } => Json::obj([
            ("kind", Json::from("bow-flex")),
            ("capacity", Json::from(capacity)),
        ]),
        CollectorKind::Rfc { entries } => Json::obj([
            ("kind", Json::from("rfc")),
            ("entries", Json::from(entries)),
        ]),
    };
    let cache = |c: &bow_mem::CacheConfig| {
        Json::obj([
            ("size_bytes", Json::from(c.size_bytes)),
            ("line_bytes", Json::from(c.line_bytes)),
            ("ways", Json::from(c.ways)),
        ])
    };
    Json::obj([
        ("collector", collector),
        ("core_model", Json::from(g.core_model.name())),
        ("divergence", Json::from(g.divergence.name())),
        ("num_sms", Json::from(g.num_sms)),
        ("cores_per_sm", Json::from(g.cores_per_sm)),
        ("max_blocks_per_sm", Json::from(g.max_blocks_per_sm)),
        ("max_warps_per_sm", Json::from(g.max_warps_per_sm)),
        ("rf_bytes_per_sm", Json::from(g.rf_bytes_per_sm)),
        ("rf_banks", Json::from(g.rf_banks)),
        ("schedulers_per_sm", Json::from(g.schedulers_per_sm)),
        ("issue_per_scheduler", Json::from(g.issue_per_scheduler)),
        ("num_ocus", Json::from(g.num_ocus)),
        ("rf_read_latency", Json::from(g.rf_read_latency)),
        ("xbar_width", Json::from(g.xbar_width)),
        ("alu_latency", Json::from(g.alu_latency)),
        ("mul_latency", Json::from(g.mul_latency)),
        ("sfu_latency", Json::from(g.sfu_latency)),
        ("smem_latency", Json::from(g.smem_latency)),
        ("alu_width", Json::from(g.alu_width)),
        ("mul_width", Json::from(g.mul_width)),
        ("sfu_width", Json::from(g.sfu_width)),
        ("mem_width", Json::from(g.mem_width)),
        (
            "mem",
            Json::obj([
                ("l1", cache(&g.mem.l1)),
                ("l2", cache(&g.mem.l2)),
                ("l1_latency", Json::from(g.mem.l1_latency)),
                ("l2_latency", Json::from(g.mem.l2_latency)),
                ("dram_latency", Json::from(g.mem.dram_latency)),
                ("tx_serialization", Json::from(g.mem.tx_serialization)),
                ("mshr_entries", Json::from(g.mem.mshr_entries)),
            ]),
        ),
        (
            "sched",
            Json::from(match g.sched {
                SchedPolicy::Gto => "gto",
                SchedPolicy::Lrr => "lrr",
            }),
        ),
        (
            "analyze_windows",
            Json::Arr(g.analyze_windows.iter().map(|&w| Json::from(w)).collect()),
        ),
        ("max_cycles", Json::from(g.max_cycles)),
        ("shadow_rf", Json::from(g.shadow_rf)),
        ("sim_window", Json::from(g.sim_window)),
        ("hints", Json::from(config.hints)),
        ("reorder", Json::from(config.reorder)),
        ("verify", Json::from(config.verify)),
    ])
}

fn canonical_kernel_json(kernel: &KernelSpec) -> Json {
    match kernel {
        KernelSpec::Workload { name, scale } => Json::obj([
            ("workload", Json::from(name.as_str())),
            ("scale", Json::from(scale_name(*scale))),
        ]),
        KernelSpec::Inline { kernel, dims } => {
            let words = bow_isa::encode_kernel(kernel);
            let mut hex = String::with_capacity(words.len() * 8);
            for w in words {
                hex.push_str(&format!("{w:08x}"));
            }
            Json::obj([
                ("inline", Json::from(hex)),
                ("blocks", Json::from(dims.0)),
                ("threads", Json::from(dims.1)),
            ])
        }
    }
}

fn parse_kernel_spec(v: &Json) -> Result<KernelSpec, BowError> {
    let k = v
        .get("kernel")
        .ok_or_else(|| BowError::parse("missing `kernel` object"))?;
    match (k.get("workload"), k.get("asm")) {
        (Some(name), None) => Ok(KernelSpec::Workload {
            name: name
                .as_str()
                .ok_or_else(|| BowError::parse("`kernel.workload` must be a string"))?
                .to_string(),
            scale: parse_scale(k)?,
        }),
        (None, Some(asm)) => {
            let text = asm
                .as_str()
                .ok_or_else(|| BowError::parse("`kernel.asm` must be a string"))?;
            let kernel = bow_isa::asm::parse_kernel(text)
                .map_err(|e| BowError::parse(format!("kernel assembly: {e}")))?;
            let dim = |key: &'static str, default: u32| -> Result<u32, BowError> {
                match k.get(key) {
                    None => Ok(default),
                    Some(j) => j
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            BowError::parse(format!("`kernel.{key}` must be a positive integer"))
                        }),
                }
            };
            Ok(KernelSpec::Inline {
                kernel,
                dims: (dim("blocks", 1)?, dim("threads", 32)?),
            })
        }
        _ => Err(BowError::parse(
            "`kernel` must have exactly one of `workload` or `asm`",
        )),
    }
}

impl RunRequest {
    /// Parses a `POST /v1/runs` body.
    ///
    /// # Errors
    ///
    /// Returns a [`BowError`] for malformed kernels, unknown names or
    /// invalid configurations.
    pub fn from_json(v: &Json) -> Result<RunRequest, BowError> {
        let kernel = parse_kernel_spec(v)?;
        if let KernelSpec::Workload { name, scale } = &kernel {
            // Resolve early so unknown names fail at submit time, not in
            // the job.
            if by_name(name, *scale).is_none() {
                return Err(ConfigError::Unknown {
                    what: "benchmark",
                    value: name.clone(),
                }
                .into());
            }
        }
        let config = match v.get("config") {
            None => ConfigBuilder::baseline().build(),
            Some(c) => config_from_json(c)?,
        };
        Ok(RunRequest { kernel, config })
    }

    /// The canonical JSON form of this request (see the module docs for
    /// the rules). Hash input for [`fingerprint`](RunRequest::fingerprint).
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("kernel", canonical_kernel_json(&self.kernel)),
            ("config", canonical_config_json(&self.config)),
        ])
    }

    /// The content-addressed store key: SHA-256 of the canonical request,
    /// as 64 hex characters.
    pub fn fingerprint(&self) -> String {
        bow_util::hash::sha256_hex(self.canonical_json().to_string_compact().as_bytes())
    }

    /// Runs the request to completion on the calling thread and returns
    /// the record. Named workloads run through the standard experiment
    /// driver (host-reference checked); inline kernels launch directly
    /// with the memory oracle enabled, so `checked` still means
    /// "independently verified".
    ///
    /// # Errors
    ///
    /// Returns [`BowError::Verify`] when a workload fails its reference
    /// check.
    pub fn execute(&self) -> Result<RunRecord, BowError> {
        match &self.kernel {
            KernelSpec::Workload { name, scale } => {
                let bench = by_name(name, *scale).ok_or_else(|| ConfigError::Unknown {
                    what: "benchmark",
                    value: name.clone(),
                })?;
                let rec = run(bench.as_ref(), self.config.clone());
                if let Err(e) = &rec.outcome.checked {
                    return Err(BowError::verify(format!(
                        "{name} under {}: {e}",
                        self.config.label
                    )));
                }
                Ok(rec)
            }
            KernelSpec::Inline { kernel, dims } => {
                let window = self.config.gpu.collector.window().unwrap_or(3);
                let mut kernel = kernel.clone();
                if self.config.reorder {
                    kernel = bow_compiler::reorder_for_bypass(&kernel);
                }
                let compiler = if self.config.hints {
                    let (k, rep) = bow_compiler::annotate(&kernel, window);
                    kernel = k;
                    Some(rep)
                } else {
                    None
                };
                if self.config.gpu.core_model == CoreModelKind::Modern {
                    kernel =
                        bow_compiler::emit_ctrl(&kernel, &bow_compiler::CtrlLatencies::default());
                }
                let mut gpu_cfg = self.config.gpu.clone();
                gpu_cfg.oracle_check = OracleCheck::Memory;
                let mut gpu = Gpu::new(gpu_cfg);
                let params: Vec<u32> = (0..kernel.param_words)
                    .map(|i| 0x10_0000 + u32::from(i) * 0x1_0000)
                    .collect();
                let result = gpu.launch(
                    &kernel,
                    bow_isa::KernelDims::linear(dims.0, dims.1),
                    &params,
                );
                Ok(RunRecord {
                    label: self.config.label.clone(),
                    benchmark: kernel.name.clone(),
                    outcome: RunOutcome {
                        result,
                        checked: Ok(()),
                    },
                    compiler,
                })
            }
        }
    }
}

impl SweepRequest {
    /// Parses a `POST /v1/sweeps` body: `benchmarks` (array of names, or
    /// absent for the whole Table III suite), optional `scale`, and
    /// `configs` (array of config documents, at least one).
    ///
    /// # Errors
    ///
    /// Returns a [`BowError`] for unknown benchmarks or invalid configs.
    pub fn from_json(v: &Json) -> Result<SweepRequest, BowError> {
        let scale = parse_scale(v)?;
        let benchmarks: Vec<String> = match v.get("benchmarks") {
            None => paper_suite(scale)
                .iter()
                .map(|b| b.name().to_string())
                .collect(),
            Some(list) => list
                .as_arr()
                .ok_or_else(|| BowError::parse("`benchmarks` must be an array of names"))?
                .iter()
                .map(|b| {
                    b.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| BowError::parse("`benchmarks` entries must be strings"))
                })
                .collect::<Result<_, _>>()?,
        };
        for name in &benchmarks {
            if by_name(name, scale).is_none() {
                return Err(ConfigError::Unknown {
                    what: "benchmark",
                    value: name.clone(),
                }
                .into());
            }
        }
        let configs = v
            .get("configs")
            .ok_or_else(|| BowError::parse("missing `configs` array"))?
            .as_arr()
            .ok_or_else(|| BowError::parse("`configs` must be an array"))?
            .iter()
            .map(config_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if configs.is_empty() {
            return Err(BowError::parse("`configs` must not be empty"));
        }
        let jobs = match v.get("jobs") {
            None => 1,
            Some(j) => j
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| BowError::parse("`jobs` must be a non-negative integer"))?,
        };
        Ok(SweepRequest {
            benchmarks,
            scale,
            configs,
            jobs,
        })
    }

    /// The canonical JSON form of this request. `jobs` is an execution
    /// knob (results are identical at any worker count) and is excluded.
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(SCHEMA_VERSION)),
            (
                "sweep",
                Json::obj([
                    ("scale", Json::from(scale_name(self.scale))),
                    (
                        "benchmarks",
                        Json::Arr(
                            self.benchmarks
                                .iter()
                                .map(|b| Json::from(b.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "configs",
                        Json::Arr(self.configs.iter().map(canonical_config_json).collect()),
                    ),
                ]),
            ),
        ])
    }

    /// The content-addressed store key for this sweep.
    pub fn fingerprint(&self) -> String {
        bow_util::hash::sha256_hex(self.canonical_json().to_string_compact().as_bytes())
    }

    /// Runs the sweep on the parallel engine and returns the result.
    ///
    /// # Errors
    ///
    /// Returns [`BowError::Verify`] when any cell fails its reference
    /// check.
    pub fn execute(&self) -> Result<SweepResult, BowError> {
        let benches = self
            .benchmarks
            .iter()
            .map(|name| {
                by_name(name, self.scale).ok_or_else(|| ConfigError::Unknown {
                    what: "benchmark",
                    value: name.clone(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let result = Suite::over(benches)
            .configs(self.configs.iter().cloned())
            .jobs(self.jobs)
            .progress(false)
            .run();
        for rec in result.all_records() {
            if let Err(e) = &rec.outcome.checked {
                return Err(BowError::verify(format!(
                    "{} under {}: {e}",
                    rec.benchmark, rec.label
                )));
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_util::json::parse;

    fn req(body: &str) -> Result<RunRequest, BowError> {
        RunRequest::from_json(&parse(body).expect("test body is valid JSON"))
    }

    #[test]
    fn workload_request_parses_and_fingerprints() {
        let r = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"collector": "bow-wr", "window": 3}}"#)
        .unwrap();
        assert_eq!(r.config.label, "bow-wr iw3");
        let f = r.fingerprint();
        assert_eq!(f.len(), 64);
        assert!(f.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn fingerprint_ignores_sim_threads_and_label() {
        let a = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"collector": "bow", "sim_threads": 1}}"#)
        .unwrap();
        let b = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"collector": "bow", "sim_threads": 8, "label": "mine"}}"#)
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_semantic_knobs() {
        let base = req(r#"{"kernel": {"workload": "vectoradd"}}"#).unwrap();
        for other in [
            r#"{"kernel": {"workload": "vectoradd"}, "config": {"collector": "bow"}}"#,
            r#"{"kernel": {"workload": "lps"}}"#,
            r#"{"kernel": {"workload": "vectoradd", "scale": "paper"}}"#,
        ] {
            assert_ne!(base.fingerprint(), req(other).unwrap().fingerprint());
        }
    }

    #[test]
    fn core_model_is_a_semantic_knob() {
        let pascal = req(r#"{"kernel": {"workload": "vectoradd"},
                             "config": {"collector": "bow", "core_model": "pascal"}}"#)
        .unwrap();
        let modern = req(r#"{"kernel": {"workload": "vectoradd"},
                             "config": {"collector": "bow", "core_model": "modern"}}"#)
        .unwrap();
        assert_ne!(pascal.fingerprint(), modern.fingerprint());
        assert_eq!(modern.config.label, "bow iw3+modern");
        // Pascal is the default: spelling it out keys identically.
        let default = req(r#"{"kernel": {"workload": "vectoradd"},
                              "config": {"collector": "bow"}}"#)
        .unwrap();
        assert_eq!(pascal.fingerprint(), default.fingerprint());
        let e = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"core_model": "volta"}}"#)
        .unwrap_err();
        assert_eq!(e.kind(), "config");
    }

    #[test]
    fn divergence_is_a_semantic_knob() {
        let stack = req(r#"{"kernel": {"workload": "bfs"},
                            "config": {"collector": "bow", "divergence": "stack"}}"#)
        .unwrap();
        let barrier = req(r#"{"kernel": {"workload": "bfs"},
                              "config": {"collector": "bow", "divergence": "barrier"}}"#)
        .unwrap();
        assert_ne!(stack.fingerprint(), barrier.fingerprint());
        assert_eq!(barrier.config.label, "bow iw3+barrier");
        // Stack is the default: spelling it out keys identically.
        let default = req(r#"{"kernel": {"workload": "bfs"},
                              "config": {"collector": "bow"}}"#)
        .unwrap();
        assert_eq!(stack.fingerprint(), default.fingerprint());
        let e = req(r#"{"kernel": {"workload": "bfs"},
                        "config": {"divergence": "ipdom"}}"#)
        .unwrap_err();
        assert_eq!(e.kind(), "config");
    }

    #[test]
    fn defaulted_and_spelled_out_requests_collide() {
        let short = req(r#"{"kernel": {"workload": "vectoradd"}}"#).unwrap();
        let long = req(r#"{"kernel": {"workload": "vectoradd", "scale": "test"},
                           "config": {"collector": "baseline", "model": "scaled"}}"#)
        .unwrap();
        assert_eq!(short.fingerprint(), long.fingerprint());
    }

    #[test]
    fn inline_kernels_canonicalize_through_encoding() {
        let a =
            req(r#"{"kernel": {"asm": ".kernel k\n    mov r0, 7\n    exit\n", "threads": 32}}"#)
                .unwrap();
        // Different whitespace/comments, same instructions.
        let b = req(r#"{"kernel": {"asm": ".kernel k\n# a comment\n  mov   r0, 7\n  exit\n"}}"#)
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = req(r#"{"kernel": {"asm": ".kernel k\n    mov r0, 8\n    exit\n"}}"#).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn bad_requests_fail_with_typed_errors() {
        let e = req(r#"{"config": {}}"#).unwrap_err();
        assert_eq!(e.kind(), "parse");
        let e = req(r#"{"kernel": {"workload": "nope"}}"#).unwrap_err();
        assert_eq!(e.kind(), "config");
        let e = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"collector": "warp-drive"}}"#)
        .unwrap_err();
        assert_eq!(e.kind(), "config");
        let e = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"collector": "bow", "window": 0}}"#)
        .unwrap_err();
        assert_eq!(e.kind(), "config");
        let e = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"windw": 3}}"#)
        .unwrap_err();
        assert!(
            e.to_string().contains("unknown config field `windw`"),
            "{e}"
        );
        let e = req(r#"{"kernel": {"asm": "not assembly"}}"#).unwrap_err();
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn run_request_executes_and_records_match_direct_runs() {
        let r = req(r#"{"kernel": {"workload": "vectoradd"},
                        "config": {"collector": "bow-wr"}}"#)
        .unwrap();
        let rec = r.execute().unwrap();
        let direct = run(
            by_name("vectoradd", Scale::Test).unwrap().as_ref(),
            ConfigBuilder::bow_wr(3).build(),
        );
        assert_eq!(
            rec.to_json().to_string_pretty(),
            direct.to_json().to_string_pretty()
        );
    }

    #[test]
    fn inline_request_executes_under_the_memory_oracle() {
        let r = req(
            r#"{"kernel": {"asm": ".kernel k\n    mov r0, 7\n    iadd r1, r0, 1\n    exit\n"}}"#,
        )
        .unwrap();
        let rec = r.execute().unwrap();
        assert_eq!(rec.benchmark, "k");
        assert!(rec.outcome.checked.is_ok());
        assert!(rec.outcome.result.stats.warp_instructions > 0);
    }

    #[test]
    fn sweep_request_round_trip() {
        let v = parse(
            r#"{"benchmarks": ["vectoradd", "lps"],
                "configs": [{"collector": "baseline"}, {"collector": "bow-wr"}]}"#,
        )
        .unwrap();
        let s = SweepRequest::from_json(&v).unwrap();
        assert_eq!(s.benchmarks, ["vectoradd", "lps"]);
        assert_eq!(s.configs.len(), 2);
        assert_eq!(s.fingerprint().len(), 64);
        let result = s.execute().unwrap();
        assert_eq!(result.rows.len(), 2);
        // jobs is an execution knob: a different worker count keys the same.
        let mut with_jobs = SweepRequest::from_json(&v).unwrap();
        with_jobs.jobs = 8;
        assert_eq!(s.fingerprint(), with_jobs.fingerprint());
    }

    #[test]
    fn sweep_rejects_unknowns() {
        let e = SweepRequest::from_json(
            &parse(r#"{"benchmarks": ["nope"], "configs": [{}]}"#).unwrap(),
        )
        .unwrap_err();
        assert_eq!(e.kind(), "config");
        let e = SweepRequest::from_json(&parse(r#"{"benchmarks": []}"#).unwrap()).unwrap_err();
        assert_eq!(e.kind(), "parse");
    }
}
