//! Schema-v1 golden snapshot + round-trip proof.
//!
//! The v1 JSON layout of [`RunRecord`] and [`SweepResult`] is a
//! versioned contract: `bow-server` stores these documents under
//! content-addressed keys, `bow-cli submit` and the figure pipeline
//! consume them, and `from_json` must reconstruct them losslessly. This
//! test pins the exact rendered bytes against a checked-in snapshot
//! (`tests/golden/schema_v1.json`) and proves the round trip
//! `to_json -> from_json -> to_json` is byte-identical for both types.
//!
//! Any intentional layout change must bump
//! [`SCHEMA_VERSION`](bow::experiment::SCHEMA_VERSION) and re-bless:
//!
//! ```text
//! BOW_BLESS=1 cargo test -p bow --test golden_schema
//! ```
//!
//! Wall-clock durations are the only nondeterministic fields, so the
//! snapshot zeroes them; everything else is pinned bit-for-bit by the
//! deterministic engine.

use bow::experiment::{run, ConfigBuilder, RunRecord, SCHEMA_VERSION};
use bow::suite::{Suite, SweepResult};
use bow::util::json::Json;
use bow_workloads::{by_name, Scale};
use std::path::PathBuf;
use std::time::Duration;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("schema_v1.json")
}

/// A record exercising every optional section: BOW-WR so the compiler
/// report (hints + transient registers) is present, plus an analyzer
/// window so the `windows` section renders.
fn sample_record() -> RunRecord {
    let bench = by_name("vectoradd", Scale::Test).expect("suite benchmark");
    run(
        bench.as_ref(),
        ConfigBuilder::bow_wr(3).analyzer(&[3]).build(),
    )
}

/// A 2-benchmark x 2-config sweep with walls zeroed for determinism.
fn sample_sweep() -> SweepResult {
    let mut sweep = Suite::over(
        ["vectoradd", "lps"]
            .iter()
            .map(|n| by_name(n, Scale::Test).expect("suite benchmark"))
            .collect(),
    )
    .configs([
        ConfigBuilder::baseline().build(),
        ConfigBuilder::bow_wr(3).build(),
    ])
    .jobs(1)
    .progress(false)
    .run();
    sweep.wall = Duration::ZERO;
    for row in &mut sweep.rows {
        for wall in &mut row.wall {
            *wall = Duration::ZERO;
        }
    }
    sweep
}

fn render(record: &RunRecord, sweep: &SweepResult) -> String {
    let mut text =
        Json::obj([("run", record.to_json()), ("sweep", sweep.to_json())]).to_string_pretty();
    text.push('\n');
    text
}

#[test]
fn schema_v1_matches_the_golden_snapshot() {
    let record = sample_record();
    let sweep = sample_sweep();
    let rendered = render(&record, &sweep);
    let path = golden_path();
    if std::env::var_os("BOW_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nRun with BOW_BLESS=1 to create it.",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "schema-v1 layout drifted from tests/golden/schema_v1.json.\n\
         If intentional, bump SCHEMA_VERSION and re-bless with BOW_BLESS=1."
    );
}

#[test]
fn run_record_round_trips_byte_identically() {
    let record = sample_record();
    let doc = record.to_json();
    let decoded = RunRecord::from_json(&doc).expect("decode own output");
    assert_eq!(
        doc.to_string_pretty(),
        decoded.to_json().to_string_pretty(),
        "RunRecord from_json(to_json(r)) must re-serialize identically"
    );
    // And through an actual text parse, as the server store does.
    let reparsed = bow::util::json::parse(&doc.to_string_pretty()).expect("parse own output");
    let decoded = RunRecord::from_json(&reparsed).expect("decode reparsed doc");
    assert_eq!(doc.to_string_pretty(), decoded.to_json().to_string_pretty());
}

#[test]
fn sweep_result_round_trips_byte_identically() {
    let sweep = sample_sweep();
    let doc = sweep.to_json();
    let decoded = SweepResult::from_json(&doc).expect("decode own output");
    assert_eq!(
        doc.to_string_pretty(),
        decoded.to_json().to_string_pretty(),
        "SweepResult from_json(to_json(s)) must re-serialize identically"
    );
    assert_eq!(decoded.jobs, sweep.jobs);
    assert_eq!(decoded.rows.len(), 2);
    assert_eq!(decoded.rows[1].records[0].label, "bow-wr iw3");
}

#[test]
fn decoders_reject_foreign_schema_versions() {
    let record = sample_record();
    let mut doc = record.to_json();
    if let Json::Obj(fields) = &mut doc {
        fields[0].1 = Json::from(SCHEMA_VERSION + 1);
    }
    let e = RunRecord::from_json(&doc).expect_err("future version must not decode");
    assert!(e.to_string().contains("schema_version"), "{e}");

    let mut doc = sample_sweep().to_json();
    if let Json::Obj(fields) = &mut doc {
        fields[0].1 = Json::from(SCHEMA_VERSION + 1);
    }
    assert!(SweepResult::from_json(&doc).is_err());
}

#[test]
fn decoders_are_strict_about_missing_fields() {
    let record = sample_record();
    let mut doc = record.to_json();
    if let Json::Obj(fields) = &mut doc {
        fields.retain(|(k, _)| k != "stats");
    }
    let e = RunRecord::from_json(&doc).expect_err("missing stats must not decode");
    assert!(e.to_string().contains("stats"), "{e}");
}
