//! Golden lint-report snapshots.
//!
//! Annotates every benchmark of the Table III suite with the §IV-B hint
//! pass at the repo-default window (IW3) and pins the full rendered
//! [`LintReport`] — every diagnostic, note and register-pressure row —
//! against a checked-in snapshot. Any change to a lint pass, the hint
//! verifier, the hint producer or a workload kernel shows up as a
//! readable diff instead of a silent behavior change.
//!
//! The suite must also stay *clean*: no errors and no warnings on any
//! workload (advisories such as `B003`/`B012` are allowed), which is the
//! same gate CI applies through `bow-cli lint --all-workloads
//! --deny-warnings`.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! BOW_BLESS=1 cargo test -p bow --test golden_lints
//! ```
//!
//! [`LintReport`]: bow_compiler::LintReport

use bow_compiler::{annotate, lint_kernel, LintOptions};
use bow_workloads::{suite, Scale};
use std::fmt::Write as _;
use std::path::PathBuf;

const WINDOW: u32 = 3;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("lints.txt")
}

/// Renders the whole-suite snapshot: each kernel's rustc-style report in
/// suite order, separated by a `== name ==` header.
fn render() -> String {
    let mut out = String::from(
        "# Lint reports: 15 annotated workloads at IW3 (Scale::Test).\n\
         # Regenerate with: BOW_BLESS=1 cargo test -p bow --test golden_lints\n",
    );
    let opts = LintOptions {
        window: WINDOW,
        check_hints: true,
        ..LintOptions::default()
    };
    for b in suite(Scale::Test) {
        let kernel = annotate(&b.kernel(), WINDOW).0;
        let report = lint_kernel(&kernel, &opts);
        assert!(
            report.passes_deny_warnings(),
            "{}: workload suite must lint clean (got {} error(s), {} warning(s))",
            b.name(),
            report.errors(),
            report.warnings()
        );
        writeln!(out, "\n== {} ==", b.name()).expect("write to String");
        out.push_str(&report.render(&kernel, None));
    }
    out
}

#[test]
fn lint_reports_match_goldens() {
    let got = render();
    let path = golden_path();
    if std::env::var_os("BOW_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, &got).expect("write goldens");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless with BOW_BLESS=1)", path.display()));
    if got != want {
        let mut diff = String::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                writeln!(diff, "  line {}:\n    got  {g}\n    want {w}", i + 1)
                    .expect("write to String");
            }
        }
        if got.lines().count() != want.lines().count() {
            writeln!(
                diff,
                "  line counts differ: got {}, want {}",
                got.lines().count(),
                want.lines().count()
            )
            .expect("write to String");
        }
        panic!(
            "lint reports diverged from {} — a lint pass, the hint verifier \
             or a workload changed (bless intentional changes with \
             BOW_BLESS=1):\n{diff}",
            path.display()
        );
    }
}
