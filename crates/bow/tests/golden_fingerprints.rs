//! Golden-fingerprint regression suite.
//!
//! Runs every benchmark of the Table III suite under the four collector
//! designs the paper compares (baseline, BOW, BOW-WR, RFC) at test scale
//! and pins a [`SimStats::fingerprint`] digest per cell against a
//! checked-in table. The table was captured at the pre-stage-graph
//! commit, so any refactor of the SM pipeline is provably
//! behavior-preserving: the digest covers every counter the figures
//! consume, and the comparison is byte-identical.
//!
//! To re-bless after an *intentional* model change:
//!
//! ```text
//! BOW_BLESS=1 cargo test -p bow --test golden_fingerprints
//! ```
//!
//! [`SimStats::fingerprint`]: bow_sim::SimStats::fingerprint

use bow::experiment::{Config, ConfigBuilder};
use bow::suite::Suite;
use bow_workloads::Scale;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The four columns the acceptance criteria pin.
fn configs() -> Vec<Config> {
    vec![
        ConfigBuilder::baseline().build(),
        ConfigBuilder::bow(3).build(),
        ConfigBuilder::bow_wr(3).build(),
        ConfigBuilder::rfc().build(),
    ]
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fingerprints.txt")
}

/// Renders the sweep as the golden table: one `benchmark/config hex`
/// line per cell, configs in column order, benchmarks in suite order.
fn render(sweep: &bow::suite::SweepResult) -> String {
    let mut out = String::from(
        "# SimStats fingerprints: 15 workloads x 4 collector configs (Scale::Test).\n\
         # Regenerate with: BOW_BLESS=1 cargo test -p bow --test golden_fingerprints\n",
    );
    for config in configs() {
        let records = sweep
            .records(&config.label)
            .unwrap_or_else(|| panic!("sweep has a {:?} row", config.label));
        for rec in records {
            writeln!(
                out,
                "{}/{} {:016x}",
                rec.benchmark,
                rec.label,
                rec.outcome.result.stats.fingerprint()
            )
            .expect("write to String");
        }
    }
    out
}

#[test]
fn stats_fingerprints_match_goldens() {
    let mut suite = Suite::new(Scale::Test).configs(configs()).progress(false);
    // `sim_threads` is a pure execution knob: CI reruns this suite with
    // BOW_SIM_THREADS=4 to prove the threaded engine reproduces the same
    // goldens byte-for-byte.
    if let Some(t) = std::env::var("BOW_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        suite = suite.sim_threads(t);
    }
    let sweep = suite.run();
    sweep.assert_checked();
    let got = render(&sweep);
    let path = golden_path();
    if std::env::var_os("BOW_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, &got).expect("write goldens");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless with BOW_BLESS=1)", path.display()));
    if got != want {
        let mut diff = String::new();
        for (g, w) in got.lines().zip(want.lines()) {
            if g != w {
                writeln!(diff, "  got  {g}\n  want {w}").expect("write to String");
            }
        }
        panic!(
            "stats fingerprints diverged from {} — the pipeline is no longer \
             behavior-preserving (or an intentional change needs BOW_BLESS=1):\n{diff}",
            path.display()
        );
    }
}
