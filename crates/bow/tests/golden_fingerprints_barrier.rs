//! Golden-fingerprint regression suite for the convergence-barrier
//! divergence model.
//!
//! Same shape as `golden_fingerprints.rs` — every Table III benchmark
//! under the four collector designs at test scale — but with
//! `divergence = barrier` on *both* core models: every kernel runs
//! through `lower_to_barriers`, so the SIMT stack is gone and
//! reconvergence rides the per-warp convergence-barrier registers
//! (BSSY arms, BSYNC parks-and-joins). The stack tables
//! (`fingerprints.txt`, `fingerprints_modern.txt`) are untouched: the
//! divergence models are independent tiers, so a change to either is
//! caught without re-blessing the other.
//!
//! To re-bless after an *intentional* barrier-model change:
//!
//! ```text
//! BOW_BLESS=1 cargo test -p bow --test golden_fingerprints_barrier
//! ```

use bow::experiment::{Config, ConfigBuilder};
use bow::prelude::{CoreModelKind, DivergenceModel};
use bow::suite::Suite;
use bow_workloads::Scale;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The four collector columns under barrier divergence, on one core.
fn configs_on(core: CoreModelKind) -> Vec<Config> {
    let with = |b: ConfigBuilder| {
        b.core_model(core)
            .divergence(DivergenceModel::Barrier)
            .build()
    };
    vec![
        with(ConfigBuilder::baseline()),
        with(ConfigBuilder::bow(3)),
        with(ConfigBuilder::bow_wr(3)),
        with(ConfigBuilder::rfc()),
    ]
}

/// Both core models: the barrier machinery lives in the warp scheduler,
/// so it has to hold up under the Pascal pipeline *and* the sub-core
/// modern pipeline with its control-bit interlock.
fn all_configs() -> Vec<Config> {
    let mut v = configs_on(CoreModelKind::Pascal);
    v.extend(configs_on(CoreModelKind::Modern));
    v
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fingerprints_barrier.txt")
}

/// Renders the sweep as the golden table: one `benchmark/config hex`
/// line per cell, configs in column order, benchmarks in suite order.
fn render(sweep: &bow::suite::SweepResult) -> String {
    let mut out = String::from(
        "# SimStats fingerprints: 15 workloads x 4 collector configs x \
         {pascal, modern} (Scale::Test, divergence=barrier).\n\
         # Regenerate with: BOW_BLESS=1 cargo test -p bow --test golden_fingerprints_barrier\n",
    );
    for config in all_configs() {
        let records = sweep
            .records(&config.label)
            .unwrap_or_else(|| panic!("sweep has a {:?} row", config.label));
        for rec in records {
            writeln!(
                out,
                "{}/{} {:016x}",
                rec.benchmark,
                rec.label,
                rec.outcome.result.stats.fingerprint()
            )
            .expect("write to String");
        }
    }
    out
}

#[test]
fn barrier_stats_fingerprints_match_goldens() {
    let mut suite = Suite::new(Scale::Test)
        .configs(all_configs())
        .progress(false);
    // `sim_threads` is a pure execution knob under barrier divergence
    // too: CI reruns this suite with BOW_SIM_THREADS=8 to prove it.
    if let Some(t) = std::env::var("BOW_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        suite = suite.sim_threads(t);
    }
    let sweep = suite.run();
    sweep.assert_checked();
    let got = render(&sweep);
    let path = golden_path();
    if std::env::var_os("BOW_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, &got).expect("write goldens");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless with BOW_BLESS=1)", path.display()));
    if got != want {
        let mut diff = String::new();
        for (g, w) in got.lines().zip(want.lines()) {
            if g != w {
                writeln!(diff, "  got  {g}\n  want {w}").expect("write to String");
            }
        }
        panic!(
            "barrier-divergence fingerprints diverged from {} — the \
             convergence-barrier model changed (an intentional change \
             needs BOW_BLESS=1):\n{diff}",
            path.display()
        );
    }
}

/// Every label in the barrier tier must carry the `+barrier` marker —
/// the tier is worthless if a config silently fell back to the stack.
#[test]
fn barrier_tier_labels_carry_the_model_marker() {
    for config in all_configs() {
        assert!(
            config.label.contains("+barrier"),
            "{}: barrier config label must say so",
            config.label
        );
    }
}
