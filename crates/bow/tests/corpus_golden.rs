//! Golden snapshot of the corpus manifest head.
//!
//! Pins the first 16 manifest entries of the fixed-seed 64-kernel CI
//! corpus — per-kernel seed → content fingerprint — against a
//! checked-in table. The fingerprint is SHA-256 over the kernel's
//! binary encoding, so any drift in the generator, the dead-code
//! scrubber, the prologue pruner or the encoder shows up here as a
//! one-line diff before it silently re-labels every distribution in
//! the corpus reports.
//!
//! To re-bless after an *intentional* generator/pipeline change:
//!
//! ```text
//! BOW_BLESS=1 cargo test -p bow --test corpus_golden
//! ```

use bow::corpus;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The CI smoke population: the default master seed at count 64.
const COUNT: usize = 64;
/// Entries pinned from the head of the manifest.
const HEAD: usize = 16;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("corpus_manifest.txt")
}

fn render(manifest: &corpus::Manifest) -> String {
    let mut out = String::from(
        "# Corpus manifest head: first 16 entries of generate(DEFAULT_SEED, 64).\n\
         # stratum/name seed fingerprint\n\
         # Regenerate with: BOW_BLESS=1 cargo test -p bow --test corpus_golden\n",
    );
    for e in manifest.entries.iter().take(HEAD) {
        writeln!(
            out,
            "{}/{} {:#018x} {}",
            e.stratum, e.name, e.seed, e.fingerprint
        )
        .expect("write to String");
    }
    out
}

#[test]
fn manifest_head_matches_goldens() {
    let manifest = corpus::generate(corpus::DEFAULT_SEED, COUNT);
    assert!(
        manifest.entries.len() >= HEAD,
        "corpus has at least {HEAD} entries"
    );
    let got = render(&manifest);
    let path = golden_path();
    if std::env::var_os("BOW_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, &got).expect("write goldens");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless with BOW_BLESS=1)", path.display()));
    if got != want {
        let mut diff = String::new();
        for (g, w) in got.lines().zip(want.lines()) {
            if g != w {
                writeln!(diff, "  got  {g}\n  want {w}").expect("write to String");
            }
        }
        panic!(
            "corpus manifest head diverged from {} — the generator pipeline \
             is no longer reproducible (or an intentional change needs \
             BOW_BLESS=1):\n{diff}",
            path.display()
        );
    }
}
