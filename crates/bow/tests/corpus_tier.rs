//! The corpus regression tier: determinism and shrinking invariants.
//!
//! The manifest's promise is that a corpus is *reproducible from seeds
//! alone*: the same `(seed, count)` must re-materialize byte-identical
//! kernels on any machine, any thread count, any run. These tests pin
//! that promise end to end — serialized manifest text, encoded kernel
//! words, and the sweep results the distributions are computed from —
//! plus the delta-debugging invariants the fuzz harness relies on when
//! a corpus kernel does fail.

use bow::corpus;
use bow_isa::fuzz::FuzzKernel;
use bow_isa::fuzz::Stmt;
use bow_sim::{CoreModelKind, DivergenceModel};
use bow_util::XorShift;

/// Two generations of the same `(seed, count)` must agree byte-for-byte:
/// the serialized manifest, and every retained kernel's binary encoding.
#[test]
fn corpus_rematerializes_byte_identically_across_runs() {
    let a = corpus::generate(0xdead_beef, 18);
    let b = corpus::generate(0xdead_beef, 18);
    assert_eq!(
        a.to_json().to_string_pretty(),
        b.to_json().to_string_pretty(),
        "manifest text is byte-identical"
    );
    for (ea, eb) in a.retained().zip(b.retained()) {
        let ka = corpus::kernel_for(ea).expect("re-materializes");
        let kb = corpus::kernel_for(eb).expect("re-materializes");
        assert_eq!(
            bow_isa::encode_kernel(&ka),
            bow_isa::encode_kernel(&kb),
            "{}: kernel words are byte-identical",
            ea.name
        );
    }
}

/// `sim_threads` is a pure execution knob: the corpus sweep must produce
/// the same stats fingerprints with each launch serial and sharded
/// across 8 engine threads.
#[test]
fn corpus_sweep_is_invariant_across_sim_threads_1_and_8() {
    let manifest = corpus::generate(0x7ead, 9);
    let run = |threads: u32, divergence: DivergenceModel| {
        let opts = corpus::SweepOptions {
            limit: 4,
            jobs: 1,
            sim_threads: Some(threads),
            core_model: CoreModelKind::Pascal,
            divergence,
            progress: false,
        };
        corpus::sweep(&manifest, &opts)
    };
    for divergence in [DivergenceModel::Stack, DivergenceModel::Barrier] {
        let serial = run(1, divergence);
        let sharded = run(8, divergence);
        serial.assert_checked();
        sharded.assert_checked();
        for (row_s, row_t) in serial.rows.iter().zip(&sharded.rows) {
            assert_eq!(row_s.label, row_t.label);
            for (a, b) in row_s.records.iter().zip(&row_t.records) {
                assert_eq!(a.benchmark, b.benchmark);
                assert_eq!(
                    a.outcome.result.stats.fingerprint(),
                    b.outcome.result.stats.fingerprint(),
                    "{} under {}: stats identical at sim_threads 1 vs 8",
                    a.benchmark,
                    row_s.label
                );
            }
        }
    }
}

fn has_store(k: &FuzzKernel) -> bool {
    fn any(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::GlobalStore { .. } => true,
            Stmt::Diamond { then, els, .. } => any(then) || any(els),
            Stmt::Loop { body, .. } => any(body),
            _ => false,
        })
    }
    any(&k.stmts)
}

/// `FuzzKernel::shrink` under 100 generated cases: the result never has
/// more statements than the input, the failing predicate still holds,
/// and the result is a true local minimum (shrinking again is a no-op).
#[test]
fn shrink_invariants_hold_over_a_hundred_cases() {
    let mut rng = XorShift::new(0x5112);
    let mut shrunk_any = false;
    for case in 0..100u32 {
        let fk = FuzzKernel::generate_sized(&mut rng, 12);
        if !has_store(&fk) {
            continue; // this draw has nothing for the predicate to chase
        }
        let min = fk.shrink(has_store);
        assert!(
            min.count_stmts() <= fk.count_stmts(),
            "case {case}: statement count is monotone under shrinking"
        );
        assert!(has_store(&min), "case {case}: the repro still fails");
        assert_eq!(
            min.shrink(has_store),
            min,
            "case {case}: shrink reaches a fixpoint"
        );
        shrunk_any |= min.count_stmts() < fk.count_stmts();
    }
    assert!(shrunk_any, "at least one case actually got smaller");
}
