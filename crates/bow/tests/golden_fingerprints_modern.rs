//! Golden-fingerprint regression suite for the modern (post-Volta) core.
//!
//! Same shape as `golden_fingerprints.rs` — every Table III benchmark
//! under the four collector designs at test scale — but with
//! `core_model = modern`, pinning the sub-core pipeline, the control-bit
//! interlock (every kernel runs through `emit_ctrl`) and the uniform
//! register file against a checked-in table. The Pascal table is
//! untouched: the two tiers are independent, so a change to either core
//! model is caught without re-blessing the other.
//!
//! To re-bless after an *intentional* modern-core change:
//!
//! ```text
//! BOW_BLESS=1 cargo test -p bow --test golden_fingerprints_modern
//! ```

use bow::experiment::{Config, ConfigBuilder};
use bow::prelude::CoreModelKind;
use bow::suite::Suite;
use bow_workloads::Scale;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The four collector columns, all on the modern core.
fn configs() -> Vec<Config> {
    vec![
        ConfigBuilder::baseline()
            .core_model(CoreModelKind::Modern)
            .build(),
        ConfigBuilder::bow(3)
            .core_model(CoreModelKind::Modern)
            .build(),
        ConfigBuilder::bow_wr(3)
            .core_model(CoreModelKind::Modern)
            .build(),
        ConfigBuilder::rfc()
            .core_model(CoreModelKind::Modern)
            .build(),
    ]
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fingerprints_modern.txt")
}

/// Renders the sweep as the golden table: one `benchmark/config hex`
/// line per cell, configs in column order, benchmarks in suite order.
fn render(sweep: &bow::suite::SweepResult) -> String {
    let mut out = String::from(
        "# SimStats fingerprints: 15 workloads x 4 collector configs \
         (Scale::Test, core_model=modern).\n\
         # Regenerate with: BOW_BLESS=1 cargo test -p bow --test golden_fingerprints_modern\n",
    );
    for config in configs() {
        let records = sweep
            .records(&config.label)
            .unwrap_or_else(|| panic!("sweep has a {:?} row", config.label));
        for rec in records {
            writeln!(
                out,
                "{}/{} {:016x}",
                rec.benchmark,
                rec.label,
                rec.outcome.result.stats.fingerprint()
            )
            .expect("write to String");
        }
    }
    out
}

#[test]
fn modern_stats_fingerprints_match_goldens() {
    let mut suite = Suite::new(Scale::Test).configs(configs()).progress(false);
    // `sim_threads` is a pure execution knob on the modern core too: CI
    // reruns this suite with BOW_SIM_THREADS=4 to prove it.
    if let Some(t) = std::env::var("BOW_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        suite = suite.sim_threads(t);
    }
    let sweep = suite.run();
    sweep.assert_checked();
    let got = render(&sweep);
    let path = golden_path();
    if std::env::var_os("BOW_BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, &got).expect("write goldens");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (bless with BOW_BLESS=1)", path.display()));
    if got != want {
        let mut diff = String::new();
        for (g, w) in got.lines().zip(want.lines()) {
            if g != w {
                writeln!(diff, "  got  {g}\n  want {w}").expect("write to String");
            }
        }
        panic!(
            "modern-core fingerprints diverged from {} — the modern pipeline \
             changed (an intentional change needs BOW_BLESS=1):\n{diff}",
            path.display()
        );
    }
}
