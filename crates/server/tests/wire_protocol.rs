//! End-to-end tests of the v1 wire protocol.
//!
//! Each test boots a real server on an ephemeral port (`127.0.0.1:0`)
//! with a temp-dir store, drives it through `bow_server::client` exactly
//! as `bow-cli submit` does, and shuts it down via `POST /v1/shutdown`.
//! The load-bearing assertions:
//!
//! * an identical resubmission is answered `"cached": true` with a
//!   byte-identical result document, and the `/v1/healthz` `sim_runs`
//!   counter proves the simulator was not invoked again;
//! * the fingerprint is an *execution-knob-invariant* content address:
//!   different `sim_threads` hit the same cache entry, and a server
//!   restarted over the same store directory serves the old results;
//! * malformed and invalid bodies come back as structured 4xx
//!   `{"error": {"kind", "message"}}` documents.

use bow_server::client;
use bow_server::{Server, ServerConfig};
use bow_util::json::Json;
use std::path::PathBuf;

struct TestServer {
    addr: String,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    /// Boots a server on an ephemeral port over `store_dir`.
    fn boot(store_dir: &std::path::Path) -> TestServer {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            store_dir: store_dir.to_path_buf(),
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        TestServer {
            addr,
            handle: Some(handle),
        }
    }

    fn shutdown(mut self) {
        let resp = client::post(&self.addr, "/v1/shutdown", "{}").expect("shutdown");
        assert_eq!(resp.status, 200);
        self.handle.take().expect("running").join().expect("join");
    }

    fn sim_runs(&self) -> u64 {
        let health = client::get(&self.addr, "/v1/healthz")
            .expect("healthz")
            .json()
            .expect("healthz is JSON");
        health
            .get("sim_runs")
            .and_then(Json::as_u64)
            .expect("sim_runs counter")
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bow-wire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_body(sim_threads: u32) -> String {
    format!(
        r#"{{"kernel": {{"workload": "vectoradd", "scale": "test"}},
            "config": {{"collector": "bow-wr", "window": 3, "sim_threads": {sim_threads}}}}}"#
    )
}

#[test]
fn resubmission_is_served_from_cache_without_simulating() {
    let dir = temp_store("cache");
    let srv = TestServer::boot(&dir);

    assert_eq!(srv.sim_runs(), 0);
    let first = client::post(&srv.addr, "/v1/runs", &run_body(1)).expect("first submit");
    assert_eq!(first.status, 200, "{}", first.body);
    let first_doc = first.json().expect("response is JSON");
    assert_eq!(first_doc.get("cached").and_then(Json::as_bool), Some(false));
    let fingerprint = first_doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();
    assert_eq!(fingerprint.len(), 64);
    assert_eq!(srv.sim_runs(), 1);

    // Identical resubmission: cached, simulator untouched, result
    // byte-identical. A different sim_threads value must hit the same
    // entry — thread count is an execution knob, not a semantic one.
    for threads in [1, 4] {
        let again = client::post(&srv.addr, "/v1/runs", &run_body(threads)).expect("resubmit");
        assert_eq!(again.status, 200);
        let doc = again.json().expect("JSON");
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("fingerprint").and_then(Json::as_str),
            Some(fingerprint.as_str())
        );
        assert_eq!(
            doc.get("result").map(Json::to_string_pretty),
            first_doc.get("result").map(Json::to_string_pretty),
            "cached result must be byte-identical"
        );
    }
    assert_eq!(
        srv.sim_runs(),
        1,
        "cache hits must not invoke the simulator"
    );

    // The stored document is directly addressable.
    let fetched = client::get(&srv.addr, &format!("/v1/results/{fingerprint}")).expect("fetch");
    assert_eq!(fetched.status, 200);
    let record = fetched.json().expect("stored doc is JSON");
    assert_eq!(
        record.get("benchmark").and_then(Json::as_str),
        Some("vectoradd")
    );
    assert_eq!(record.get("schema_version").and_then(Json::as_u64), Some(1));

    srv.shutdown();

    // A fresh server over the same store dir serves the result from disk:
    // fingerprints are stable across restarts.
    let srv = TestServer::boot(&dir);
    let warm = client::post(&srv.addr, "/v1/runs", &run_body(2)).expect("post-restart submit");
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.json().unwrap().get("cached").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        srv.sim_runs(),
        0,
        "restart must not re-simulate stored results"
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_jobs_report_lifecycle_and_land_in_the_store() {
    let dir = temp_store("async");
    let srv = TestServer::boot(&dir);

    let body = r#"{"kernel": {"workload": "lps"}, "config": {"collector": "bow"}, "wait": false}"#;
    let accepted = client::post(&srv.addr, "/v1/runs", body).expect("async submit");
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let doc = accepted.json().expect("JSON");
    let job = doc.get("job").and_then(Json::as_u64).expect("job id");
    let fingerprint = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();

    // Poll until done (bounded; the Test-scale run takes well under this).
    let mut state = String::new();
    for _ in 0..600 {
        let polled = client::get(&srv.addr, &format!("/v1/jobs/{job}")).expect("poll");
        assert_eq!(polled.status, 200);
        state = polled
            .json()
            .unwrap()
            .get("state")
            .and_then(Json::as_str)
            .expect("state")
            .to_string();
        if state == "done" || state == "failed" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert_eq!(state, "done");
    let fetched = client::get(&srv.addr, &format!("/v1/results/{fingerprint}")).expect("fetch");
    assert_eq!(fetched.status, 200);

    assert_eq!(
        client::get(&srv.addr, "/v1/jobs/999999")
            .expect("missing job")
            .status,
        404
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inline_kernels_and_sweeps_are_first_class() {
    let dir = temp_store("inline");
    let srv = TestServer::boot(&dir);

    let body = r#"{"kernel": {"asm": ".kernel k\n    mov r0, 7\n    iadd r1, r0, 1\n    exit\n",
                               "blocks": 1, "threads": 32},
                   "config": {"collector": "bow-wr", "window": 3}}"#;
    let resp = client::post(&srv.addr, "/v1/runs", body).expect("inline submit");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = resp.json().unwrap();
    let record = doc.get("result").expect("result");
    assert_eq!(record.get("benchmark").and_then(Json::as_str), Some("k"));
    assert_eq!(record.get("checked").and_then(Json::as_bool), Some(true));

    let sweep = r#"{"benchmarks": ["vectoradd"],
                    "configs": [{"collector": "baseline"}, {"collector": "bow-wr"}]}"#;
    let resp = client::post(&srv.addr, "/v1/sweeps", sweep).expect("sweep submit");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = resp.json().unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    let rows = doc
        .get("result")
        .and_then(|r| r.get("rows"))
        .and_then(Json::as_arr)
        .expect("sweep rows");
    assert_eq!(rows.len(), 2);

    // Resubmit the sweep: cached.
    let resp = client::post(&srv.addr, "/v1/sweeps", sweep).expect("sweep resubmit");
    assert_eq!(
        resp.json().unwrap().get("cached").and_then(Json::as_bool),
        Some(true)
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_bodies_get_structured_4xx_errors() {
    let dir = temp_store("errors");
    let srv = TestServer::boot(&dir);

    // (body, expected status, expected error.kind)
    let cases = [
        ("this is not json", 400, "parse"),
        (r#"{"config": {}}"#, 400, "parse"),
        (r#"{"kernel": {"workload": "nope"}}"#, 422, "config"),
        (
            r#"{"kernel": {"workload": "vectoradd"}, "config": {"collector": "warp-drive"}}"#,
            422,
            "config",
        ),
        (
            r#"{"kernel": {"workload": "vectoradd"}, "config": {"collector": "bow", "window": 0}}"#,
            422,
            "config",
        ),
        (
            r#"{"kernel": {"workload": "vectoradd"}, "config": {"windw": 3}}"#,
            400,
            "parse",
        ),
        (r#"{"kernel": {"asm": "garbage"}}"#, 400, "parse"),
    ];
    for (body, status, kind) in cases {
        let resp = client::post(&srv.addr, "/v1/runs", body).expect("submit");
        assert_eq!(resp.status, status, "body: {body}\nresponse: {}", resp.body);
        let err = resp.json().expect("error response is JSON");
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some(kind),
            "body: {body}\nresponse: {}",
            resp.body
        );
        assert!(
            err.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .is_some_and(|m| !m.is_empty()),
            "error must carry a message: {}",
            resp.body
        );
    }
    assert_eq!(srv.sim_runs(), 0, "rejected bodies must never simulate");

    // Unknown routes and methods.
    assert_eq!(client::get(&srv.addr, "/v2/runs").unwrap().status, 404);
    assert_eq!(
        client::get(&srv.addr, "/v1/results/not-a-fingerprint")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::request(&srv.addr, "DELETE", "/v1/runs", None)
            .unwrap()
            .status,
        405
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthz_reports_store_and_job_counters() {
    let dir = temp_store("health");
    let srv = TestServer::boot(&dir);
    let health = client::get(&srv.addr, "/v1/healthz")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("schema_version").and_then(Json::as_u64), Some(1));
    for section in ["jobs", "store"] {
        assert!(
            health.get(section).is_some(),
            "healthz must report {section}"
        );
    }
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn core_model_is_a_semantic_knob_on_the_wire() {
    let dir = temp_store("coremodel");
    let srv = TestServer::boot(&dir);

    let body_for = |core: &str| {
        format!(
            r#"{{"kernel": {{"workload": "vectoradd", "scale": "test"}},
                "config": {{"collector": "bow-wr", "window": 3, "core_model": "{core}"}}}}"#
        )
    };
    let pascal = client::post(&srv.addr, "/v1/runs", &body_for("pascal")).expect("pascal run");
    assert_eq!(pascal.status, 200, "{}", pascal.body);
    let modern = client::post(&srv.addr, "/v1/runs", &body_for("modern")).expect("modern run");
    assert_eq!(modern.status, 200, "{}", modern.body);
    let fp = |resp: &client::Response| {
        resp.json()
            .unwrap()
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_string()
    };
    assert_ne!(
        fp(&pascal),
        fp(&modern),
        "core_model must change the content address"
    );
    assert_eq!(srv.sim_runs(), 2, "distinct fingerprints both simulate");

    // An unknown core model is a structured config rejection.
    let bad = client::post(&srv.addr, "/v1/runs", &body_for("volta")).expect("bad run");
    assert_eq!(bad.status, 422, "{}", bad.body);
    assert_eq!(
        bad.json()
            .unwrap()
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("config")
    );
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn divergence_is_a_semantic_knob_on_the_wire() {
    let dir = temp_store("divergence");
    let srv = TestServer::boot(&dir);

    let body_for = |divergence: &str| {
        format!(
            r#"{{"kernel": {{"workload": "bfs", "scale": "test"}},
                "config": {{"collector": "bow-wr", "window": 3, "divergence": "{divergence}"}}}}"#
        )
    };
    let stack = client::post(&srv.addr, "/v1/runs", &body_for("stack")).expect("stack run");
    assert_eq!(stack.status, 200, "{}", stack.body);
    let barrier = client::post(&srv.addr, "/v1/runs", &body_for("barrier")).expect("barrier run");
    assert_eq!(barrier.status, 200, "{}", barrier.body);
    let fp = |resp: &client::Response| {
        resp.json()
            .unwrap()
            .get("fingerprint")
            .and_then(Json::as_str)
            .expect("fingerprint")
            .to_string()
    };
    assert_ne!(
        fp(&stack),
        fp(&barrier),
        "divergence must change the content address"
    );
    assert_eq!(srv.sim_runs(), 2, "distinct fingerprints both simulate");

    // An unknown divergence model is a structured 422, never a simulation.
    let bad = client::post(&srv.addr, "/v1/runs", &body_for("ipdom")).expect("bad run");
    assert_eq!(bad.status, 422, "{}", bad.body);
    assert_eq!(
        bad.json()
            .unwrap()
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("config")
    );
    assert!(bad.body.contains("divergence"), "{}", bad.body);
    assert_eq!(srv.sim_runs(), 2, "rejected bodies must never simulate");
    srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
