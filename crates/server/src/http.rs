//! Minimal HTTP/1.1 framing over blocking sockets.
//!
//! Just enough of RFC 9112 for a loopback JSON API: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies only (no chunked encoding), and a hard body-size cap so a
//! misbehaving client cannot balloon the server. This is deliberate —
//! the workspace is std-only, and the service's clients are `bow-cli
//! submit`, the CI smoke stage and `curl`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Inline kernels and sweep documents are
/// a few KiB; 4 MiB leaves two orders of magnitude of headroom.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// A parsed request: method, path, body. Headers other than
/// `Content-Length` are read and discarded.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/runs`. Query strings are not split off;
    /// the v1 API does not use them.
    pub path: String,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be framed. Maps onto a 400 response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The socket closed or errored mid-request.
    Io(String),
    /// The bytes on the wire are not an HTTP/1.1 request we accept.
    Malformed(String),
    /// `Content-Length` exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(m) => write!(f, "socket error: {m}"),
            FrameError::Malformed(m) => write!(f, "malformed request: {m}"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )
            }
        }
    }
}

/// Reads one request off `stream`.
///
/// # Errors
///
/// Returns a [`FrameError`] when the connection drops, the request line
/// or headers are unparsable, or the declared body is over the cap.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, FrameError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| FrameError::Io(e.to_string()))?;
    if line.is_empty() {
        return Err(FrameError::Io("connection closed before request".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| FrameError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| FrameError::Malformed("request line has no target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| FrameError::Malformed("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(FrameError::Malformed(format!("unsupported {version}")));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| FrameError::Malformed("bad Content-Length".into()))?;
            }
            if name.trim().eq_ignore_ascii_case("transfer-encoding") {
                return Err(FrameError::Malformed(
                    "chunked transfer encoding is not supported".into(),
                ));
            }
        } else {
            return Err(FrameError::Malformed(format!("bad header line `{header}`")));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(FrameError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| FrameError::Io(e.to_string()))?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a JSON response (status + body) and flushes. The connection is
/// marked `Connection: close`; callers drop the stream afterwards.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str) -> Result<Request, FrameError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            roundtrip("POST /v1/runs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/runs");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = roundtrip("GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(roundtrip(&huge), Err(FrameError::TooLarge(_))));
        assert!(matches!(
            roundtrip("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip("GET /\r\n\r\n"),
            Err(FrameError::Malformed(_))
        ));
    }
}
