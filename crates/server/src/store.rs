//! The content-addressed result store.
//!
//! Every finished run or sweep is stored under its request fingerprint
//! (`sha256(canonical request)`, 64 hex chars — see `bow::api`). The
//! store is two-level: an in-memory map for documents touched this
//! process, backed by a sharded on-disk layout
//! `store/<fp[0..2]>/<fp>.json` that survives restarts. Writes go
//! through a temp file + rename so a crash never leaves a torn document
//! behind.
//!
//! Because the simulator is deterministic, a fingerprint identifies its
//! result *forever*: entries are immutable, never invalidated, and a
//! second `put` of the same fingerprint is a no-op.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bow_util::json::Json;

/// A persistent fingerprint → result-document map.
pub struct ResultStore {
    dir: PathBuf,
    mem: Mutex<HashMap<String, Arc<String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn valid_fingerprint(fp: &str) -> bool {
    fp.len() == 64 && fp.bytes().all(|b| b.is_ascii_hexdigit())
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, fp: &str) -> PathBuf {
        self.dir.join(&fp[..2]).join(format!("{fp}.json"))
    }

    /// Looks up a fingerprint: memory first, then disk (promoting a disk
    /// hit into memory). Counts a hit or a miss.
    pub fn get(&self, fp: &str) -> Option<Arc<String>> {
        if !valid_fingerprint(fp) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut mem = self.mem.lock().expect("store lock poisoned");
        if let Some(doc) = mem.get(fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(doc));
        }
        match fs::read_to_string(self.path_for(fp)) {
            Ok(text) => {
                let doc = Arc::new(text);
                mem.insert(fp.to_string(), Arc::clone(&doc));
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(doc)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a document under `fp`, persisting it to disk atomically
    /// (write to a temp file in the same directory, then rename). A
    /// fingerprint that is already present is left untouched — results
    /// are immutable.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the in-memory entry is only added
    /// once the disk write succeeded.
    pub fn put(&self, fp: &str, doc: String) -> io::Result<()> {
        assert!(valid_fingerprint(fp), "store key must be 64 hex chars");
        let mut mem = self.mem.lock().expect("store lock poisoned");
        if mem.contains_key(fp) {
            return Ok(());
        }
        let path = self.path_for(fp);
        if !path.exists() {
            let parent = path.parent().expect("sharded path has a parent");
            fs::create_dir_all(parent)?;
            let tmp = parent.join(format!(".{fp}.tmp"));
            fs::write(&tmp, &doc)?;
            fs::rename(&tmp, &path)?;
        }
        mem.insert(fp.to_string(), Arc::new(doc));
        Ok(())
    }

    /// Number of entries on disk (authoritative across restarts).
    pub fn disk_entries(&self) -> u64 {
        let mut n = 0;
        if let Ok(shards) = fs::read_dir(&self.dir) {
            for shard in shards.flatten() {
                if let Ok(files) = fs::read_dir(shard.path()) {
                    n += files
                        .flatten()
                        .filter(|f| f.path().extension().is_some_and(|e| e == "json"))
                        .count() as u64;
                }
            }
        }
        n
    }

    /// Counters + sizes as a JSON object (the `store` section of
    /// `/v1/healthz` and the CI store-stats artifact).
    pub fn stats_json(&self) -> Json {
        Json::obj([
            ("dir", Json::from(self.dir.display().to_string())),
            ("hits", Json::from(self.hits.load(Ordering::Relaxed))),
            ("misses", Json::from(self.misses.load(Ordering::Relaxed))),
            (
                "mem_entries",
                Json::from(self.mem.lock().expect("store lock poisoned").len()),
            ),
            ("disk_entries", Json::from(self.disk_entries())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bow-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const FP: &str = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";

    #[test]
    fn put_get_persists_across_reopen() {
        let dir = temp_dir("reopen");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.get(FP).is_none());
        store.put(FP, "{\"x\":1}".to_string()).unwrap();
        assert_eq!(store.get(FP).unwrap().as_str(), "{\"x\":1}");

        // A fresh store over the same directory sees the entry (disk path).
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.get(FP).unwrap().as_str(), "{\"x\":1}");
        assert_eq!(reopened.disk_entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_are_immutable_and_stats_count() {
        let dir = temp_dir("immutable");
        let store = ResultStore::open(&dir).unwrap();
        store.put(FP, "first".to_string()).unwrap();
        store.put(FP, "second".to_string()).unwrap();
        assert_eq!(store.get(FP).unwrap().as_str(), "first");
        let stats = store.stats_json();
        assert_eq!(stats.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("disk_entries").and_then(Json::as_u64), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_fingerprints_never_touch_disk() {
        let dir = temp_dir("badfp");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.get("../../etc/passwd").is_none());
        assert!(store.get("short").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
