//! A minimal blocking HTTP client for the v1 API.
//!
//! Used by `bow-cli submit`, the integration tests and the CI smoke
//! stage — one request per connection, matching the server's
//! `Connection: close` framing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bow::error::BowError;
use bow_util::json::{parse, Json};

/// A decoded response: status code plus the raw body text.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the v1 API always sends JSON).
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`BowError::Parse`] when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, BowError> {
        Ok(parse(&self.body)?)
    }
}

/// Sends one request to `addr` (e.g. `"127.0.0.1:7070"`) and reads the
/// response to EOF.
///
/// # Errors
///
/// Returns [`BowError::Io`] on connect/read/write failures and
/// [`BowError::Parse`] when the response is not HTTP.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, BowError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| BowError::io(addr, format!("connect: {e}")))?;
    // Generous guard rails so a wedged server fails the client instead of
    // hanging it; sweeps at paper scale run minutes, hence the long read.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(3600)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| BowError::io(addr, format!("write: {e}")))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| BowError::io(addr, format!("read: {e}")))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| BowError::parse(format!("{addr}: response has no header/body split")))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| BowError::parse(format!("{addr}: bad status line `{head}`")))?;
    Ok(Response {
        status,
        body: body.to_string(),
    })
}

/// `GET path` against `addr`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> Result<Response, BowError> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body against `addr`.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> Result<Response, BowError> {
    request(addr, "POST", path, Some(body))
}
