//! The job queue and worker pool.
//!
//! Submissions that miss the result store become *jobs*: queued,
//! executed by a fixed pool of worker threads (one simulator run at a
//! time each, mirroring the suite engine's worker-pool idiom), and
//! recorded in a job table that `/v1/jobs/{id}` reads and synchronous
//! submissions block on. A worker panic (e.g. a simulator assertion on a
//! hostile inline kernel) is caught and surfaced as a failed job instead
//! of taking the pool down.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bow::api::{RunRequest, SweepRequest};
use bow::error::BowError;
use bow_util::json::Json;

use crate::store::ResultStore;

/// What a job executes. Runs are boxed: a `RunRequest` carries a full
/// resolved `Config` and dwarfs the sweep variant.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// One kernel under one configuration.
    Run(Box<RunRequest>),
    /// Benchmarks × configurations on the sweep engine.
    Sweep(SweepRequest),
}

/// Lifecycle of a job, as reported by `/v1/jobs/{id}`.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the result document is in the store under this
    /// fingerprint.
    Done {
        /// Store key of the result.
        fingerprint: String,
    },
    /// Execution failed.
    Failed {
        /// Error class (`BowError::kind`, or `"panic"`).
        kind: String,
        /// Human-readable failure description.
        message: String,
    },
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
        }
    }

    /// The `/v1/jobs/{id}` JSON document for a job in this state.
    pub fn to_json(&self, id: u64) -> Json {
        let mut doc = vec![("job", Json::from(id)), ("state", Json::from(self.name()))];
        match self {
            JobState::Done { fingerprint } => {
                doc.push(("fingerprint", Json::from(fingerprint.as_str())));
            }
            JobState::Failed { kind, message } => {
                doc.push((
                    "error",
                    Json::obj([
                        ("kind", Json::from(kind.as_str())),
                        ("message", Json::from(message.as_str())),
                    ]),
                ));
            }
            JobState::Queued | JobState::Running => {}
        }
        Json::obj(doc)
    }
}

struct QueueInner {
    jobs: VecDeque<(u64, JobKind)>,
    closed: bool,
}

/// Job table + work queue, shared between connection handlers and the
/// worker pool.
pub struct JobSystem {
    table: Mutex<HashMap<u64, JobState>>,
    table_changed: Condvar,
    queue: Mutex<QueueInner>,
    queue_ready: Condvar,
    next_id: AtomicU64,
    /// Count of simulator executions performed by this process. Cache
    /// hits never touch it — the integration tests and the CI smoke
    /// stage use it to prove that a cached response skipped the
    /// simulator.
    pub sim_runs: AtomicU64,
    /// Jobs that reached `Failed`.
    pub failed: AtomicU64,
}

impl JobSystem {
    /// An empty table and queue.
    pub fn new() -> JobSystem {
        JobSystem {
            table: Mutex::new(HashMap::new()),
            table_changed: Condvar::new(),
            queue: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            queue_ready: Condvar::new(),
            next_id: AtomicU64::new(1),
            sim_runs: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Registers and enqueues a job, returning its id. Jobs submitted
    /// after [`close`](JobSystem::close) fail immediately.
    pub fn submit(&self, kind: JobKind) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.set(id, JobState::Queued);
        let mut q = self.queue.lock().expect("queue lock poisoned");
        if q.closed {
            drop(q);
            self.set(
                id,
                JobState::Failed {
                    kind: "io".to_string(),
                    message: "server is shutting down".to_string(),
                },
            );
        } else {
            q.jobs.push_back((id, kind));
            drop(q);
            self.queue_ready.notify_one();
        }
        id
    }

    fn set(&self, id: u64, state: JobState) {
        self.table
            .lock()
            .expect("job table lock poisoned")
            .insert(id, state);
        self.table_changed.notify_all();
    }

    /// Snapshot of a job's state.
    pub fn get(&self, id: u64) -> Option<JobState> {
        self.table
            .lock()
            .expect("job table lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Blocks until the job reaches `Done` or `Failed`.
    pub fn wait_done(&self, id: u64) -> JobState {
        let mut table = self.table.lock().expect("job table lock poisoned");
        loop {
            match table.get(&id) {
                Some(s @ (JobState::Done { .. } | JobState::Failed { .. })) => return s.clone(),
                _ => {
                    table = self
                        .table_changed
                        .wait(table)
                        .expect("job table lock poisoned");
                }
            }
        }
    }

    /// Closes the queue: workers drain what is queued, then exit.
    pub fn close(&self) {
        self.queue.lock().expect("queue lock poisoned").closed = true;
        self.queue_ready.notify_all();
    }

    fn next_job(&self) -> Option<(u64, JobKind)> {
        let mut q = self.queue.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.queue_ready.wait(q).expect("queue lock poisoned");
        }
    }

    /// Job-table counters for `/v1/healthz`.
    pub fn stats_json(&self) -> Json {
        let table = self.table.lock().expect("job table lock poisoned");
        let count = |want: &str| table.values().filter(|s| s.name() == want).count();
        Json::obj([
            ("queued", Json::from(count("queued"))),
            ("running", Json::from(count("running"))),
            ("done", Json::from(count("done"))),
            ("failed", Json::from(count("failed"))),
        ])
    }

    /// Worker-thread body: pull jobs until the queue closes and drains.
    /// Results land in `store`; panics and [`BowError`]s become `Failed`
    /// states.
    pub fn worker_loop(self: &Arc<Self>, store: &Arc<ResultStore>) {
        while let Some((id, kind)) = self.next_job() {
            self.set(id, JobState::Running);
            let executed = catch_unwind(AssertUnwindSafe(|| execute(&kind, store, self)));
            let state = match executed {
                Ok(Ok(fingerprint)) => JobState::Done { fingerprint },
                Ok(Err(e)) => JobState::Failed {
                    kind: e.kind().to_string(),
                    message: e.to_string(),
                },
                Err(panic) => JobState::Failed {
                    kind: "panic".to_string(),
                    message: panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("worker panicked")
                        .to_string(),
                },
            };
            if matches!(state, JobState::Failed { .. }) {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            self.set(id, state);
        }
    }
}

impl Default for JobSystem {
    fn default() -> Self {
        JobSystem::new()
    }
}

/// Runs a job to completion and stores its document, returning the
/// fingerprint. The store is re-checked first so two identical jobs
/// racing through the queue simulate only once.
fn execute(
    kind: &JobKind,
    store: &Arc<ResultStore>,
    jobs: &Arc<JobSystem>,
) -> Result<String, BowError> {
    let (fingerprint, doc) = match kind {
        JobKind::Run(req) => {
            let fp = req.fingerprint();
            if store.get(&fp).is_some() {
                return Ok(fp);
            }
            jobs.sim_runs.fetch_add(1, Ordering::Relaxed);
            let record = req.execute()?;
            (fp, record.to_json().to_string_pretty())
        }
        JobKind::Sweep(req) => {
            let fp = req.fingerprint();
            if store.get(&fp).is_some() {
                return Ok(fp);
            }
            jobs.sim_runs.fetch_add(1, Ordering::Relaxed);
            let result = req.execute()?;
            (fp, result.to_json().to_string_pretty())
        }
    };
    store
        .put(&fingerprint, doc)
        .map_err(|e| BowError::io(store.dir().display().to_string(), e))?;
    Ok(fingerprint)
}
