//! # bow-server — simulation as a service
//!
//! A persistent HTTP/JSON front end over the BOW experiment driver.
//! Clients submit runs and sweeps as versioned JSON documents; the
//! server keys every request by its content-addressed fingerprint
//! (`sha256(canonical kernel + config + schema_version)`, see
//! [`bow::api`]) and consults a persistent [`store`] before simulating —
//! identical resubmissions are answered from cache without touching the
//! simulator, which is sound because the engine is deterministic: a
//! (kernel, config) pair has exactly one result.
//!
//! ## v1 endpoints
//!
//! | Method + path            | Purpose                                        |
//! |--------------------------|------------------------------------------------|
//! | `POST /v1/runs`          | one kernel × one config (sync, or `"wait":false`) |
//! | `POST /v1/sweeps`        | benchmarks × configs on the sweep engine       |
//! | `GET /v1/jobs/{id}`      | job lifecycle (`queued`/`running`/`done`/`failed`) |
//! | `GET /v1/results/{fp}`   | fetch a stored document by fingerprint         |
//! | `GET /v1/healthz`        | liveness + store/job/simulator counters        |
//! | `POST /v1/shutdown`      | drain and stop (used by CI)                    |
//!
//! Everything is std-only: hand-rolled HTTP/1.1 framing ([`http`]), a
//! `Condvar` worker pool ([`jobs`]) and the in-tree JSON — matching the
//! workspace's no-external-dependencies policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod store;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bow::api::{RunRequest, SweepRequest};
use bow::error::BowError;
use bow::experiment::SCHEMA_VERSION;
use bow_util::json::{parse, Json};

use http::{read_request, write_response, FrameError, Request};
use jobs::{JobKind, JobState, JobSystem};
use store::ResultStore;

/// How to bind and provision a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7070"`. Port 0 picks an ephemeral
    /// port (read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing jobs (0 = one per available core).
    pub workers: usize,
    /// Root of the on-disk result store.
    pub store_dir: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 0,
            store_dir: PathBuf::from("results/store"),
        }
    }
}

struct State {
    store: Arc<ResultStore>,
    jobs: Arc<JobSystem>,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    workers: usize,
}

impl Server {
    /// Binds the listener and opens the store.
    ///
    /// # Errors
    ///
    /// Returns [`BowError::Io`] when the address cannot be bound or the
    /// store directory cannot be created.
    pub fn bind(config: &ServerConfig) -> Result<Server, BowError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| BowError::io(config.addr.clone(), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| BowError::io(config.addr.clone(), e))?;
        let store = ResultStore::open(&config.store_dir)
            .map_err(|e| BowError::io(config.store_dir.display().to_string(), e))?;
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        Ok(Server {
            listener,
            state: Arc::new(State {
                store: Arc::new(store),
                jobs: Arc::new(JobSystem::new()),
                shutdown: AtomicBool::new(false),
                local_addr,
            }),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until `POST /v1/shutdown`: spawns the worker pool, then
    /// accepts connections, one handler thread each.
    ///
    /// # Errors
    ///
    /// Returns [`BowError::Io`] if the accept loop fails hard.
    pub fn run(self) -> Result<(), BowError> {
        let worker_handles: Vec<_> = (0..self.workers)
            .map(|i| {
                let jobs = Arc::clone(&self.state.jobs);
                let store = Arc::clone(&self.state.store);
                thread::Builder::new()
                    .name(format!("bow-job-{i}"))
                    .spawn(move || jobs.worker_loop(&store))
                    .expect("spawn worker thread")
            })
            .collect();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let state = Arc::clone(&self.state);
            let _ = thread::Builder::new()
                .name("bow-conn".to_string())
                .spawn(move || handle_connection(&state, stream));
        }
        // Drain: workers finish queued jobs, then exit.
        self.state.jobs.close();
        for h in worker_handles {
            let _ = h.join();
        }
        Ok(())
    }
}

fn error_body(kind: &str, message: &str) -> String {
    Json::obj([(
        "error",
        Json::obj([("kind", Json::from(kind)), ("message", Json::from(message))]),
    )])
    .to_string_compact()
}

fn status_for(kind: &str) -> u16 {
    match kind {
        "parse" => 400,
        "config" => 422,
        "not_found" => 404,
        // io / verify / panic: the request was well-formed, the server
        // (or the simulated kernel) failed.
        _ => 500,
    }
}

fn bow_error_response(e: &BowError) -> (u16, String) {
    (status_for(e.kind()), error_body(e.kind(), &e.to_string()))
}

/// Splices a stored document (already-serialized JSON text) into a
/// submission response without re-parsing it.
fn submission_body(fingerprint: &str, cached: bool, doc: &str) -> String {
    format!("{{\"fingerprint\":\"{fingerprint}\",\"cached\":{cached},\"result\":{doc}}}")
}

fn handle_submission(state: &State, req: &Request, sweep: bool) -> (u16, String) {
    let parsed = match std::str::from_utf8(&req.body)
        .map_err(|e| BowError::parse(format!("body is not UTF-8: {e}")))
        .and_then(|text| Ok(parse(text)?))
    {
        Ok(v) => v,
        Err(e) => return bow_error_response(&e),
    };
    let wait = parsed.get("wait").and_then(Json::as_bool).unwrap_or(true);
    let (fingerprint, kind) = if sweep {
        match SweepRequest::from_json(&parsed) {
            Ok(r) => (r.fingerprint(), JobKind::Sweep(r)),
            Err(e) => return bow_error_response(&e),
        }
    } else {
        match RunRequest::from_json(&parsed) {
            Ok(r) => (r.fingerprint(), JobKind::Run(Box::new(r))),
            Err(e) => return bow_error_response(&e),
        }
    };
    if let Some(doc) = state.store.get(&fingerprint) {
        return (200, submission_body(&fingerprint, true, &doc));
    }
    let id = state.jobs.submit(kind);
    if !wait {
        return (
            202,
            Json::obj([
                ("job", Json::from(id)),
                ("fingerprint", Json::from(fingerprint.as_str())),
                ("cached", Json::from(false)),
            ])
            .to_string_compact(),
        );
    }
    match state.jobs.wait_done(id) {
        JobState::Done { fingerprint } => match state.store.get(&fingerprint) {
            Some(doc) => (200, submission_body(&fingerprint, false, &doc)),
            None => (
                500,
                error_body("io", "result vanished from the store after execution"),
            ),
        },
        JobState::Failed { kind, message } => (status_for(&kind), error_body(&kind, &message)),
        JobState::Queued | JobState::Running => unreachable!("wait_done returned a live state"),
    }
}

fn health_body(state: &State) -> String {
    Json::obj([
        ("status", Json::from("ok")),
        ("schema_version", Json::from(SCHEMA_VERSION)),
        (
            "sim_runs",
            Json::from(state.jobs.sim_runs.load(Ordering::Relaxed)),
        ),
        ("jobs", state.jobs.stats_json()),
        ("store", state.store.stats_json()),
    ])
    .to_string_compact()
}

fn route(state: &State, req: &Request) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => (200, health_body(state)),
        ("POST", "/v1/runs") => handle_submission(state, req, false),
        ("POST", "/v1/sweeps") => handle_submission(state, req, true),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.jobs.close();
            // Poke the accept loop so it observes the flag.
            let _ = TcpStream::connect(state.local_addr);
            (
                200,
                Json::obj([("status", Json::from("shutting down"))]).to_string_compact(),
            )
        }
        ("GET", path) => {
            if let Some(id) = path.strip_prefix("/v1/jobs/") {
                match id
                    .parse::<u64>()
                    .ok()
                    .and_then(|id| state.jobs.get(id).map(|s| (id, s)))
                {
                    Some((id, s)) => (200, s.to_json(id).to_string_compact()),
                    None => (404, error_body("not_found", &format!("no job `{id}`"))),
                }
            } else if let Some(fp) = path.strip_prefix("/v1/results/") {
                match state.store.get(fp) {
                    Some(doc) => (200, doc.as_str().to_string()),
                    None => (
                        404,
                        error_body("not_found", &format!("no stored result `{fp}`")),
                    ),
                }
            } else {
                (404, error_body("not_found", &format!("no route {path}")))
            }
        }
        (_, path) => (
            405,
            error_body(
                "parse",
                &format!("{} {path} is not part of the v1 API", req.method),
            ),
        ),
    }
}

fn handle_connection(state: &State, mut stream: TcpStream) {
    let (status, body) = match read_request(&mut stream) {
        Ok(req) => route(state, &req),
        Err(FrameError::TooLarge(n)) => (
            413,
            error_body("parse", &FrameError::TooLarge(n).to_string()),
        ),
        Err(FrameError::Malformed(m)) => (
            400,
            error_body("parse", &FrameError::Malformed(m).to_string()),
        ),
        // Connection died before a full request arrived (including the
        // shutdown poke): nothing to answer.
        Err(FrameError::Io(_)) => return,
    };
    let _ = write_response(&mut stream, status, &body);
}
