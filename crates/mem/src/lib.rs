//! # bow-mem — memory substrate for the BOW GPU model
//!
//! This crate provides everything below the SM pipeline that stores or moves
//! data:
//!
//! * [`GlobalMemory`] — a sparse, paged, functionally-correct global address
//!   space (device memory) with word-level accessors and host-side bulk
//!   helpers;
//! * [`SharedMemory`] — per-thread-block scratchpad with the 32-bank
//!   conflict model;
//! * [`Cache`] — a set-associative, LRU tag array used for L1/L2 timing;
//! * [`mod@coalesce`] — the access coalescer that folds a warp's 32 addresses
//!   into 128-byte memory transactions;
//! * [`MemSystem`] — the timing hierarchy (L1 → L2 → DRAM) that converts a
//!   warp access into a completion cycle plus statistics;
//! * [`mod@interconnect`] — the thread-aware front end for windowed
//!   multi-SM runs: per-SM write overlays/journals ([`SmWindowBuf`],
//!   [`WindowedGlobal`]) and the deterministic `(cycle, sm_id, seq)`
//!   commit ([`commit_windows`]) behind the [`GlobalAccess`] seam.
//!
//! Data and timing are deliberately separate: functional state always lives
//! in [`GlobalMemory`]/[`SharedMemory`] (so results are exact and easily
//! checkable), while the caches are tag-only and produce latencies.

pub mod cache;
pub mod coalesce;
pub mod global;
pub mod hierarchy;
pub mod interconnect;
pub mod shared;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use coalesce::{coalesce, Transaction, SEGMENT_BYTES};
pub use global::GlobalMemory;
pub use hierarchy::{AccessKind, MemConfig, MemStats, MemSystem};
pub use interconnect::{commit_windows, GlobalAccess, SmWindowBuf, WindowedGlobal, WriteRec};
pub use shared::{bank_conflict_degree, SharedMemory, SMEM_BANKS};
