//! The L1 → L2 → DRAM timing hierarchy.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::coalesce::coalesce;

/// Whether an access reads or writes (write policies differ per level).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Global load.
    Load,
    /// Global store.
    Store,
}

/// Latency and geometry parameters of the memory hierarchy.
///
/// Defaults follow the GPGPU-Sim Pascal model the paper simulates: ~28-cycle
/// L1 hits, ~190-cycle L2 hits and ~350-cycle DRAM round trips.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MemConfig {
    /// Per-SM L1 data cache geometry.
    pub l1: CacheConfig,
    /// Device-wide L2 geometry (modelled per SM slice for simplicity).
    pub l2: CacheConfig,
    /// Cycles for an L1 hit.
    pub l1_latency: u32,
    /// Cycles for an L2 hit (on an L1 miss).
    pub l2_latency: u32,
    /// Cycles for a DRAM access (on an L2 miss).
    pub dram_latency: u32,
    /// Additional serialization cycles per extra transaction in one warp
    /// access (the LSU issues one transaction per cycle).
    pub tx_serialization: u32,
    /// Maximum outstanding misses (MSHR entries); extra misses queue.
    pub mshr_entries: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CacheConfig {
                size_bytes: 48 * 1024,
                line_bytes: 128,
                ways: 4,
            },
            l2: CacheConfig {
                size_bytes: 3 * 1024 * 1024 / 56,
                line_bytes: 128,
                ways: 8,
            },
            l1_latency: 28,
            l2_latency: 190,
            dram_latency: 350,
            tx_serialization: 1,
            mshr_entries: 32,
        }
    }
}

/// Traffic and latency statistics for a [`MemSystem`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Warp-level load accesses.
    pub loads: u64,
    /// Warp-level store accesses.
    pub stores: u64,
    /// Coalesced transactions issued.
    pub transactions: u64,
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM accesses (L2 misses).
    pub dram_accesses: u64,
    /// Dirty L2 lines written back to DRAM (write-back policy).
    pub dram_writebacks: u64,
    /// Sum of access latencies (cycles), for averaging.
    pub total_latency: u64,
}

impl MemStats {
    /// Mean warp-access latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        let n = self.loads + self.stores;
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }
}

/// The timing-side memory hierarchy for one SM.
///
/// [`MemSystem::access`] converts a warp's lane addresses into a completion
/// latency: the addresses are coalesced, each transaction probes L1 then L2,
/// misses pay DRAM latency, and transactions serialize on the LSU port.
/// MSHR occupancy adds back-pressure: when all entries are busy the access
/// queues behind the oldest one.
#[derive(Clone, Debug)]
pub struct MemSystem {
    config: MemConfig,
    l1: Cache,
    l2: Cache,
    stats: MemStats,
    /// Completion cycles of in-flight misses (bounded by `mshr_entries`).
    inflight: Vec<u64>,
}

impl MemSystem {
    /// Creates a hierarchy with the given parameters.
    pub fn new(config: MemConfig) -> MemSystem {
        MemSystem {
            config,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            stats: MemStats::default(),
            inflight: Vec::new(),
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> MemConfig {
        self.config
    }

    /// Accumulated statistics (cache counters folded in).
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            ..self.stats
        }
    }

    /// Simulates one warp access issued at `now`, returning the cycle at
    /// which the value is available (loads) or retired (stores).
    ///
    /// `addrs` holds the byte address of every *active* lane; inactive lanes
    /// are simply absent. An empty access completes immediately.
    pub fn access(&mut self, kind: AccessKind, addrs: &[u64], now: u64) -> u64 {
        match kind {
            AccessKind::Load => self.stats.loads += 1,
            AccessKind::Store => self.stats.stores += 1,
        }
        if addrs.is_empty() {
            return now;
        }
        let txs = coalesce(addrs);
        self.stats.transactions += txs.len() as u64;
        let mut worst = now + u64::from(self.config.l1_latency);
        for (i, tx) in txs.iter().enumerate() {
            let issue = now + u64::from(self.config.tx_serialization) * i as u64;
            // L1 is write-through / no-allocate for stores (Pascal-style),
            // allocate-on-read for loads.
            let l1_hit = self.l1.access(tx.addr, kind == AccessKind::Load);
            let done = if l1_hit && kind == AccessKind::Load {
                issue + u64::from(self.config.l1_latency)
            } else {
                // L2 is write-back / write-allocate: stores dirty the line,
                // and displacing a dirty victim costs a DRAM write.
                let (l2_hit, evicted_dirty) =
                    self.l2
                        .access_write(tx.addr, true, kind == AccessKind::Store);
                if evicted_dirty {
                    self.stats.dram_writebacks += 1;
                }
                let raw = if l2_hit {
                    issue + u64::from(self.config.l2_latency)
                } else {
                    self.stats.dram_accesses += 1;
                    issue + u64::from(self.config.dram_latency)
                };
                self.queue_miss(raw, now)
            };
            worst = worst.max(done);
        }
        self.stats.total_latency += worst - now;
        worst
    }

    /// Applies MSHR back-pressure to a miss that would complete at `raw`.
    fn queue_miss(&mut self, raw: u64, now: u64) -> u64 {
        self.inflight.retain(|&c| c > now);
        let done = if self.inflight.len() >= self.config.mshr_entries as usize {
            // Wait for the oldest outstanding miss to retire first.
            let oldest = self
                .inflight
                .iter()
                .copied()
                .min()
                .expect("inflight nonempty when at MSHR capacity");
            self.inflight.retain(|&c| c != oldest);
            oldest.max(raw)
        } else {
            raw
        };
        self.inflight.push(done);
        done
    }

    /// Invalidates both cache levels (between kernel launches), draining
    /// dirty L2 lines to DRAM.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.stats.dram_writebacks += self.l2.flush();
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig::default())
    }

    #[test]
    fn first_touch_pays_dram_second_hits_l1() {
        let mut m = sys();
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let t1 = m.access(AccessKind::Load, &addrs, 0);
        assert_eq!(t1, u64::from(m.config().dram_latency));
        let t2 = m.access(AccessKind::Load, &addrs, t1);
        assert_eq!(t2 - t1, u64::from(m.config().l1_latency));
        assert_eq!(m.stats().dram_accesses, 1);
        assert_eq!(m.stats().l1.hits, 1);
    }

    #[test]
    fn scattered_access_serializes_transactions() {
        let mut m = sys();
        let unit: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let scatter: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        let t_unit = m.access(AccessKind::Load, &unit, 0);
        m.flush();
        let t_scatter = m.access(AccessKind::Load, &scatter, 0);
        assert!(t_scatter > t_unit, "32 transactions must outlast 1");
        assert_eq!(m.stats().transactions, 33);
    }

    #[test]
    fn stores_do_not_allocate_l1() {
        let mut m = sys();
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        m.access(AccessKind::Store, &addrs, 0);
        // A following load misses L1 (write-through no-allocate) but hits L2.
        let t = m.access(AccessKind::Load, &addrs, 1000);
        assert_eq!(t - 1000, u64::from(m.config().l2_latency));
    }

    #[test]
    fn empty_access_is_instant() {
        let mut m = sys();
        assert_eq!(m.access(AccessKind::Load, &[], 5), 5);
    }

    #[test]
    fn mshr_pressure_delays_bursts() {
        let cfg = MemConfig {
            mshr_entries: 2,
            ..MemConfig::default()
        };
        let mut m = MemSystem::new(cfg);
        // Three scattered misses at the same cycle: the third queues.
        let a: Vec<u64> = vec![0];
        let b: Vec<u64> = vec![1 << 20];
        let c: Vec<u64> = vec![2 << 20];
        let t1 = m.access(AccessKind::Load, &a, 0);
        let t2 = m.access(AccessKind::Load, &b, 0);
        let t3 = m.access(AccessKind::Load, &c, 0);
        assert_eq!(t1, t2);
        assert!(t3 >= t1, "third miss waits for an MSHR");
    }

    #[test]
    fn store_flush_produces_dram_writebacks() {
        let mut m = sys();
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        m.access(AccessKind::Store, &addrs, 0);
        assert_eq!(m.stats().dram_writebacks, 0, "dirty line still resident");
        m.flush();
        assert_eq!(m.stats().dram_writebacks, 1, "flush drains the dirty line");
    }

    #[test]
    fn avg_latency_accumulates() {
        let mut m = sys();
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        m.access(AccessKind::Load, &addrs, 0);
        assert!(m.stats().avg_latency() >= f64::from(m.config().l1_latency));
    }
}
