//! The global-memory access coalescer.

/// Size of one global-memory transaction segment in bytes (a full warp's
/// worth of consecutive 32-bit words, matching the 128-byte L1 sector the
/// hardware fetches).
pub const SEGMENT_BYTES: u64 = 128;

/// One coalesced memory transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Segment-aligned base address.
    pub addr: u64,
    /// Number of lanes this transaction serves (diagnostics only).
    pub lanes: u32,
}

/// Coalesces a warp's per-lane byte addresses into the minimal set of
/// 128-byte segment transactions, preserving first-touch order.
///
/// A fully coalesced unit-stride access produces a single transaction; a
/// worst-case scatter produces one per lane. The transaction count drives
/// both cache-port serialization and DRAM traffic in the timing model.
pub fn coalesce(addrs: &[u64]) -> Vec<Transaction> {
    let mut txs: Vec<Transaction> = Vec::new();
    for &a in addrs {
        let seg = a / SEGMENT_BYTES * SEGMENT_BYTES;
        match txs.iter_mut().find(|t| t.addr == seg) {
            Some(t) => t.lanes += 1,
            None => txs.push(Transaction {
                addr: seg,
                lanes: 1,
            }),
        }
    }
    txs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_one() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
        let txs = coalesce(&addrs);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].addr, 0x1000);
        assert_eq!(txs[0].lanes, 32);
    }

    #[test]
    fn misaligned_unit_stride_spans_two_segments() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x1040 + i * 4).collect();
        assert_eq!(coalesce(&addrs).len(), 2);
    }

    #[test]
    fn full_scatter_is_one_per_lane() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(coalesce(&addrs).len(), 32);
    }

    #[test]
    fn duplicate_addresses_share_a_transaction() {
        let addrs = vec![0u64; 32];
        let txs = coalesce(&addrs);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].lanes, 32);
    }

    #[test]
    fn empty_access_produces_no_transactions() {
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn order_is_first_touch() {
        let txs = coalesce(&[0x2000, 0x1000, 0x2004]);
        assert_eq!(txs[0].addr, 0x2000);
        assert_eq!(txs[1].addr, 0x1000);
    }
}
