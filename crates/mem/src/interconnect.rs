//! The thread-aware interconnect front end for windowed multi-SM runs.
//!
//! The parallel engine (`bow-sim`'s `parallel` module) advances every SM
//! through a bounded *cycle window* without any cross-SM communication,
//! then synchronizes all SMs at the interconnect/L2 boundary this module
//! models. During a window each SM sees
//!
//! * the device-memory snapshot taken at the window boundary
//!   ([`WindowedGlobal::base`]), plus
//! * its **own** writes from the current window (read-your-writes via the
//!   [`SmWindowBuf`] overlay).
//!
//! Every write is also journalled as a [`WriteRec`] stamped with the
//! absolute device cycle. At the window boundary [`commit_windows`]
//! merges all per-SM journals in the canonical `(cycle, sm_id, seq)`
//! request order — exactly the order the serial reference engine would
//! have performed the writes — and applies them to the base memory.
//! Because the canonical order is a pure function of simulation state,
//! the committed memory image is invariant under worker-thread count.
//!
//! The seam between the pipeline and the memory image is the
//! [`GlobalAccess`] trait: the execution stages are generic over it, so
//! the serial engine keeps handing them a bare [`GlobalMemory`] while the
//! windowed engine hands them a [`WindowedGlobal`] view with identical
//! functional semantics (word granularity, round-down alignment,
//! zero-fill).

use crate::global::GlobalMemory;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The functional device-memory interface the execution pipeline uses.
///
/// Word-granular, little-endian, zero-filled; unaligned addresses round
/// down to the containing word (see [`GlobalMemory`]). Implemented by
/// [`GlobalMemory`] itself (the serial engine) and by [`WindowedGlobal`]
/// (one SM's view inside a parallel window).
pub trait GlobalAccess {
    /// Reads the 32-bit word containing `addr`.
    fn read_u32(&self, addr: u64) -> u32;

    /// Writes the 32-bit word containing `addr`.
    fn write_u32(&mut self, addr: u64, value: u32);

    /// Reads the word at `addr` as an IEEE-754 float.
    fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes a float as its bit pattern.
    fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }
}

impl GlobalAccess for GlobalMemory {
    #[inline]
    fn read_u32(&self, addr: u64) -> u32 {
        GlobalMemory::read_u32(self, addr)
    }

    #[inline]
    fn write_u32(&mut self, addr: u64, value: u32) {
        GlobalMemory::write_u32(self, addr, value)
    }
}

/// One journalled global-memory write request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteRec {
    /// Absolute device cycle the write was performed in.
    pub cycle: u64,
    /// Byte address (word semantics: rounds down like [`GlobalMemory`]).
    pub addr: u64,
    /// The word written.
    pub value: u32,
}

/// A fast, non-cryptographic hasher for the overlay map (word-index
/// keys). The overlay sits on the load path of every global access in a
/// window, so `DefaultHasher`'s SipHash latency would dominate; this is
/// the standard multiply-rotate mix used by rustc's hash maps.
#[derive(Default)]
pub struct OverlayHasher(u64);

impl Hasher for OverlayHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(K);
    }
}

type OverlayMap = HashMap<u64, u32, BuildHasherDefault<OverlayHasher>>;

/// One SM's private window state: the read-your-writes overlay and the
/// cycle-stamped write journal for the current window.
#[derive(Debug, Default)]
pub struct SmWindowBuf {
    /// Word-index (`addr / 4`) → last value this SM wrote in the window.
    overlay: OverlayMap,
    /// All writes this window, in issue order (the per-SM `seq`).
    journal: Vec<WriteRec>,
    /// Absolute device cycle to stamp journalled writes with. The engine
    /// sets this before every SM tick.
    pub cycle: u64,
}

impl SmWindowBuf {
    /// Creates an empty window buffer.
    pub fn new() -> SmWindowBuf {
        SmWindowBuf::default()
    }

    /// Takes the journal and clears the overlay, returning the buffer to
    /// its window-start state. Called at the window boundary once the
    /// engine commits the journal (the overlay contents are then visible
    /// in the base image, so dropping them loses nothing).
    pub fn drain(&mut self) -> Vec<WriteRec> {
        self.overlay.clear();
        std::mem::take(&mut self.journal)
    }

    /// Whether this SM performed no writes in the current window.
    pub fn is_clean(&self) -> bool {
        self.journal.is_empty()
    }
}

/// One SM's view of device memory inside a window: the shared base
/// snapshot overlaid with the SM's own writes.
pub struct WindowedGlobal<'a> {
    /// The device-memory image as of the last window boundary.
    pub base: &'a GlobalMemory,
    /// This SM's private overlay/journal.
    pub buf: &'a mut SmWindowBuf,
}

impl GlobalAccess for WindowedGlobal<'_> {
    #[inline]
    fn read_u32(&self, addr: u64) -> u32 {
        if !self.buf.overlay.is_empty() {
            if let Some(&v) = self.buf.overlay.get(&(addr / 4)) {
                return v;
            }
        }
        self.base.read_u32(addr)
    }

    #[inline]
    fn write_u32(&mut self, addr: u64, value: u32) {
        self.buf.overlay.insert(addr / 4, value);
        self.buf.journal.push(WriteRec {
            cycle: self.buf.cycle,
            addr,
            value,
        });
    }
}

/// Commits one window's per-SM write journals to the base image in the
/// canonical interconnect order `(cycle, sm_id, seq)` — device cycle
/// first, then SM index, then per-SM issue order. This is byte-for-byte
/// the order the serial engine performs the same writes in (it ticks SMs
/// in index order within each device cycle), so the post-commit image is
/// independent of how SMs were sharded across worker threads.
///
/// `journals` pairs each SM id with its drained journal; entries within
/// one journal must be in per-SM issue order (as [`SmWindowBuf`] records
/// them).
pub fn commit_windows(base: &mut GlobalMemory, journals: &mut [(usize, Vec<WriteRec>)]) {
    journals.sort_unstable_by_key(|(sm, _)| *sm);
    let mut merged: Vec<(u64, usize, usize)> = Vec::new();
    for (slot, (sm, journal)) in journals.iter().enumerate() {
        let _ = sm;
        for (seq, rec) in journal.iter().enumerate() {
            merged.push((rec.cycle, slot, seq));
        }
    }
    // Stable on (cycle, sm): per-SM `seq` order is preserved within equal
    // keys because the input runs are already seq-sorted.
    merged.sort_by_key(|&(cycle, slot, _)| (cycle, slot));
    for (_, slot, seq) in merged {
        let rec = journals[slot].1[seq];
        base.write_u32(rec.addr, rec.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_view_reads_through_to_base() {
        let mut base = GlobalMemory::new();
        base.write_u32(0x100, 7);
        let mut buf = SmWindowBuf::new();
        let view = WindowedGlobal {
            base: &base,
            buf: &mut buf,
        };
        assert_eq!(view.read_u32(0x100), 7);
        assert_eq!(view.read_u32(0x200), 0);
    }

    #[test]
    fn windowed_view_sees_own_writes_not_base() {
        let mut base = GlobalMemory::new();
        base.write_u32(0x100, 7);
        let mut buf = SmWindowBuf::new();
        buf.cycle = 3;
        let mut view = WindowedGlobal {
            base: &base,
            buf: &mut buf,
        };
        view.write_u32(0x100, 42);
        // Read-your-writes, including unaligned aliasing to the same word.
        assert_eq!(view.read_u32(0x100), 42);
        assert_eq!(view.read_u32(0x102), 42);
        // The base is untouched until commit.
        assert_eq!(base.read_u32(0x100), 7);
        assert_eq!(
            buf.drain(),
            vec![WriteRec {
                cycle: 3,
                addr: 0x100,
                value: 42
            }]
        );
        assert!(buf.is_clean());
    }

    #[test]
    fn drain_clears_overlay() {
        let base = GlobalMemory::new();
        let mut buf = SmWindowBuf::new();
        let mut view = WindowedGlobal {
            base: &base,
            buf: &mut buf,
        };
        view.write_u32(0x40, 1);
        buf.drain();
        let view = WindowedGlobal {
            base: &base,
            buf: &mut buf,
        };
        assert_eq!(view.read_u32(0x40), 0, "overlay must reset at commit");
    }

    #[test]
    fn commit_applies_canonical_cycle_then_sm_then_seq_order() {
        let mut base = GlobalMemory::new();
        let w = |cycle, addr, value| WriteRec { cycle, addr, value };
        // SM 1 wrote earlier in device time than SM 0; at the shared
        // cycle 5 the lower SM id wins the tie, and within (5, sm=1) the
        // journal's own order is preserved — the last write lands.
        let mut journals = vec![
            (1usize, vec![w(2, 0x10, 1), w(5, 0x20, 2), w(5, 0x20, 3)]),
            (0usize, vec![w(5, 0x20, 9), w(7, 0x10, 4)]),
        ];
        commit_windows(&mut base, &mut journals);
        assert_eq!(base.read_u32(0x20), 3, "sm0@5 then sm1@5 (seq order)");
        assert_eq!(base.read_u32(0x10), 4, "sm1@2 then sm0@7");
    }

    #[test]
    fn commit_is_shard_invariant() {
        // The same logical writes, presented in two different journal
        // orders (as different shardings would), commit identically.
        let w = |cycle, addr, value| WriteRec { cycle, addr, value };
        let mk = |order: [usize; 3]| {
            let all = [
                (0usize, vec![w(1, 0x0, 10), w(4, 0x8, 11)]),
                (1usize, vec![w(1, 0x0, 20)]),
                (2usize, vec![w(3, 0x8, 30), w(4, 0x0, 31)]),
            ];
            let mut base = GlobalMemory::new();
            let mut journals: Vec<_> = order.iter().map(|&i| all[i].clone()).collect();
            commit_windows(&mut base, &mut journals);
            base.fingerprint()
        };
        assert_eq!(mk([0, 1, 2]), mk([2, 0, 1]));
        assert_eq!(mk([0, 1, 2]), mk([1, 2, 0]));
    }
}
