//! Per-thread-block shared memory with the 32-bank conflict model.

/// Number of shared-memory banks (4-byte wide each) in a modern SM.
pub const SMEM_BANKS: usize = 32;

/// Computes the bank-conflict degree of a set of per-lane byte addresses.
///
/// The degree is the maximum number of *distinct* words mapping to the same
/// bank: it is the number of cycles the shared-memory access serializes
/// into. Lanes reading the same word broadcast and do not conflict. An
/// access with no active lanes has degree 0; a conflict-free access has
/// degree 1.
pub fn bank_conflict_degree(addrs: &[u64]) -> u32 {
    let mut per_bank: [Vec<u64>; SMEM_BANKS] = std::array::from_fn(|_| Vec::new());
    for &a in addrs {
        let word = a / 4;
        let bank = (word as usize) % SMEM_BANKS;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank.iter().map(|v| v.len() as u32).max().unwrap_or(0)
}

/// A thread block's shared-memory scratchpad.
///
/// Byte-addressed, word-granular (like [`GlobalMemory`]); reads of untouched
/// locations return zero. Out-of-bounds accesses wrap modulo the allocation,
/// which keeps randomly generated property-test kernels well-defined without
/// needing traps.
///
/// [`GlobalMemory`]: crate::GlobalMemory
#[derive(Clone, Debug)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Allocates `bytes` of shared memory (rounded up to a word multiple;
    /// a zero-byte allocation still provides one word so wrapping stays
    /// well-defined).
    pub fn new(bytes: u32) -> SharedMemory {
        let words = (bytes as usize).div_ceil(4).max(1);
        SharedMemory {
            words: vec![0; words],
        }
    }

    fn index(&self, addr: u64) -> usize {
        (addr as usize / 4) % self.words.len()
    }

    /// Reads the word containing `addr`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.words[self.index(addr)]
    }

    /// Writes the word containing `addr`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// The allocation size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_unit_stride() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(bank_conflict_degree(&addrs), 1);
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = vec![16u64; 32];
        assert_eq!(bank_conflict_degree(&addrs), 1);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(bank_conflict_degree(&addrs), 2);
    }

    #[test]
    fn stride_32_words_serializes_fully() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4 * 32).collect();
        assert_eq!(bank_conflict_degree(&addrs), 32);
    }

    #[test]
    fn empty_access_has_degree_zero() {
        assert_eq!(bank_conflict_degree(&[]), 0);
    }

    #[test]
    fn shared_memory_roundtrip_and_wrap() {
        let mut s = SharedMemory::new(64);
        s.write_u32(0, 5);
        assert_eq!(s.read_u32(0), 5);
        assert_eq!(s.read_u32(64), 5); // wraps modulo 64 bytes
        assert_eq!(s.size_bytes(), 64);
    }

    #[test]
    fn zero_allocation_is_still_usable() {
        let mut s = SharedMemory::new(0);
        s.write_u32(0, 1);
        assert_eq!(s.read_u32(0), 1);
    }
}
