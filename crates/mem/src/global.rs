//! Sparse, paged global (device) memory with functional word semantics.

use std::collections::HashMap;

const PAGE_BYTES: usize = 64 * 1024;
const PAGE_WORDS: usize = PAGE_BYTES / 4;

/// The GPU's global address space.
///
/// Storage is allocated lazily in 64 KiB pages, so kernels may scatter their
/// buffers across a large virtual range without cost. All ISA-level accesses
/// are 4-byte words; unaligned addresses are rounded down to the containing
/// word, matching the word-striped register/lane layout the rest of the model
/// assumes. Untouched memory reads as zero.
///
/// # Example
///
/// ```
/// use bow_mem::GlobalMemory;
/// let mut m = GlobalMemory::new();
/// m.write_u32(0x1000, 42);
/// assert_eq!(m.read_u32(0x1000), 42);
/// assert_eq!(m.read_u32(0x2000), 0); // untouched => zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct GlobalMemory {
    pages: HashMap<u64, Box<[u32; PAGE_WORDS]>>,
}

impl GlobalMemory {
    /// Creates an empty address space.
    pub fn new() -> GlobalMemory {
        GlobalMemory::default()
    }

    fn split(addr: u64) -> (u64, usize) {
        let word = addr / 4;
        (
            word / PAGE_WORDS as u64,
            (word % PAGE_WORDS as u64) as usize,
        )
    }

    /// Reads the 32-bit word containing `addr`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let (page, idx) = Self::split(addr);
        self.pages.get(&page).map_or(0, |p| p[idx])
    }

    /// Writes the 32-bit word containing `addr`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let (page, idx) = Self::split(addr);
        self.pages.entry(page).or_insert_with(|| {
            vec![0u32; PAGE_WORDS]
                .into_boxed_slice()
                .try_into()
                .unwrap()
        })[idx] = value;
    }

    /// Reads the word at `addr` as an IEEE-754 float.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes a float as its bit pattern.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Bulk-writes a slice of words starting at `addr` (host-side setup).
    pub fn write_slice_u32(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v);
        }
    }

    /// Bulk-writes floats starting at `addr`.
    pub fn write_slice_f32(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Bulk-reads `n` words starting at `addr` (host-side verification).
    pub fn read_vec_u32(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u64)).collect()
    }

    /// Bulk-reads `n` floats starting at `addr`.
    pub fn read_vec_f32(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Number of resident (allocated) pages — a footprint diagnostic.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// A stable fingerprint of the full memory contents, used by the
    /// equivalence tests to compare final states across pipeline models.
    /// Zero pages (all-zero content) do not affect the fingerprint, so
    /// "never touched" and "touched with zeros" compare equal.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over (page index, nonzero words); page order independent
        // because contributions are XOR-combined.
        let mut acc = 0u64;
        for (&page, data) in &self.pages {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut any = false;
            for (i, &w) in data.iter().enumerate() {
                if w != 0 {
                    any = true;
                    for b in [(i as u32).to_le_bytes(), w.to_le_bytes()] {
                        for byte in b {
                            h ^= u64::from(byte);
                            h = h.wrapping_mul(0x1000_0000_01b3);
                        }
                    }
                }
            }
            if any {
                acc ^= h.wrapping_mul(page | 1);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = GlobalMemory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u32(u64::MAX - 7), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn word_roundtrip_and_alignment() {
        let mut m = GlobalMemory::new();
        m.write_u32(100, 7);
        assert_eq!(m.read_u32(100), 7);
        // Unaligned reads hit the containing word.
        assert_eq!(m.read_u32(102), 7);
        m.write_u32(103, 9);
        assert_eq!(m.read_u32(100), 9);
    }

    #[test]
    fn pages_allocate_lazily_across_boundaries() {
        let mut m = GlobalMemory::new();
        m.write_u32(PAGE_BYTES as u64 - 4, 1);
        m.write_u32(PAGE_BYTES as u64, 2);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_u32(PAGE_BYTES as u64 - 4), 1);
        assert_eq!(m.read_u32(PAGE_BYTES as u64), 2);
    }

    #[test]
    fn float_roundtrip() {
        let mut m = GlobalMemory::new();
        m.write_f32(16, 3.25);
        assert_eq!(m.read_f32(16), 3.25);
    }

    #[test]
    fn bulk_helpers_roundtrip() {
        let mut m = GlobalMemory::new();
        m.write_slice_u32(0x4000, &[1, 2, 3, 4]);
        assert_eq!(m.read_vec_u32(0x4000, 4), vec![1, 2, 3, 4]);
        m.write_slice_f32(0x8000, &[1.0, 2.0]);
        assert_eq!(m.read_vec_f32(0x8000, 2), vec![1.0, 2.0]);
    }

    #[test]
    fn fingerprint_detects_differences_and_ignores_zero_pages() {
        let mut a = GlobalMemory::new();
        let mut b = GlobalMemory::new();
        a.write_u32(0x100, 5);
        b.write_u32(0x100, 5);
        // b additionally touches a page with zeros only.
        b.write_u32(0x9_0000, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.write_u32(0x100, 6);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
