//! A set-associative, LRU, tag-only cache used for L1/L2 timing.

/// Geometry of a [`Cache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (must divide the capacity).
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss counters for a [`Cache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when the cache was never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

/// A tag-only set-associative cache with true-LRU replacement.
///
/// The cache decides hit/miss and victim selection; it holds no data (the
/// functional state lives in [`GlobalMemory`](crate::GlobalMemory)), which
/// is exactly what a timing model needs and keeps coherence trivial in a
/// single-clock-domain simulation.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let n = (config.sets() * config.ways) as usize;
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_used: 0
                };
                n
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_range(&self, addr: u64) -> (std::ops::Range<usize>, u64) {
        let line = addr / u64::from(self.config.line_bytes);
        let sets = u64::from(self.config.sets());
        let set = (line % sets) as usize;
        let tag = line / sets;
        let ways = self.config.ways as usize;
        (set * ways..(set + 1) * ways, tag)
    }

    /// Probes the cache for the line containing `addr`, allocating it on a
    /// miss (evicting the LRU way). Returns `true` on hit. Equivalent to
    /// [`access_write`](Self::access_write) with `mark_dirty = false`.
    pub fn access(&mut self, addr: u64, allocate_on_miss: bool) -> bool {
        self.access_write(addr, allocate_on_miss, false).0
    }

    /// Probes the cache; on a write (`mark_dirty`) the line is marked
    /// dirty. Returns `(hit, evicted_dirty_line)` — the second component is
    /// `true` when the allocation displaced a dirty victim that a
    /// write-back cache must flush downstream.
    pub fn access_write(
        &mut self,
        addr: u64,
        allocate_on_miss: bool,
        mark_dirty: bool,
    ) -> (bool, bool) {
        self.tick += 1;
        let (range, tag) = self.set_range(addr);
        let mut victim = range.start;
        let mut victim_used = u64::MAX;
        for i in range {
            let l = &mut self.lines[i];
            if l.valid && l.tag == tag {
                l.last_used = self.tick;
                l.dirty |= mark_dirty;
                self.stats.hits += 1;
                return (true, false);
            }
            let used = if l.valid { l.last_used } else { 0 };
            if used < victim_used {
                victim_used = used;
                victim = i;
            }
        }
        self.stats.misses += 1;
        let mut evicted_dirty = false;
        if allocate_on_miss {
            let v = &mut self.lines[victim];
            evicted_dirty = v.valid && v.dirty;
            *v = Line {
                tag,
                valid: true,
                dirty: mark_dirty,
                last_used: self.tick,
            };
        }
        (false, evicted_dirty)
    }

    /// Invalidates everything, returning how many dirty lines were dropped
    /// (a write-back owner should count them as downstream writes).
    pub fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for l in &mut self.lines {
            if l.valid && l.dirty {
                dirty += 1;
            }
            l.valid = false;
            l.dirty = false;
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16B lines = 64B.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn geometry_math() {
        assert_eq!(tiny().config().sets(), 2);
    }

    #[test]
    fn second_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0, true));
        assert!(c.access(4, true)); // same 16B line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with line-index even: addresses 0, 32, 64 map to set 0.
        c.access(0, true);
        c.access(32, true);
        c.access(0, true); // refresh line 0
        c.access(64, true); // evicts line at 32
        assert!(c.access(0, true), "line 0 should survive");
        assert!(!c.access(32, true), "line 32 was the LRU victim");
    }

    #[test]
    fn no_allocate_misses_stay_misses() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(!c.access(0, false));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0, true);
        c.flush();
        assert!(!c.access(0, true));
    }

    #[test]
    fn dirty_eviction_is_reported() {
        let mut c = tiny();
        // Write to set 0 (dirty), then displace it with two more lines.
        let (_, ev) = c.access_write(0, true, true);
        assert!(!ev);
        c.access_write(32, true, false);
        let (_, ev) = c.access_write(64, true, false);
        assert!(ev, "dirty victim must be surfaced");
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = tiny();
        c.access_write(0, true, true);
        c.access_write(16, true, false);
        assert_eq!(c.flush(), 1);
        assert_eq!(c.flush(), 0, "second flush finds nothing dirty");
    }

    #[test]
    fn miss_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0, true);
        c.access(0, true);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }
}
