//! # bow-util — dependency-free support code for the BOW workspace
//!
//! This workspace builds with `cargo build --offline` on machines that
//! have never reached crates.io, so everything that would normally come
//! from a small external crate lives here instead:
//!
//! * [`json`] — a hand-rolled JSON tree, writer and parser (replaces
//!   `serde`/`serde_json` for the harness's machine-readable outputs);
//! * [`rng`] — a seeded xorshift generator (replaces `rand`/`proptest`
//!   for randomized testing and input generation).

pub mod json;
pub mod rng;

pub use json::{parse as parse_json, Json, ParseError};
pub use rng::XorShift;
