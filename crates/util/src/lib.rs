//! # bow-util — dependency-free support code for the BOW workspace
//!
//! This workspace builds with `cargo build --offline` on machines that
//! have never reached crates.io, so everything that would normally come
//! from a small external crate lives here instead:
//!
//! * [`json`] — a hand-rolled JSON tree, writer and parser (replaces
//!   `serde`/`serde_json` for the harness's machine-readable outputs);
//! * [`rng`] — a seeded xorshift generator (replaces `rand`/`proptest`
//!   for randomized testing and input generation);
//! * [`hash`] — SHA-256 (replaces `sha2` for the content-addressed
//!   result store's fingerprint keys).

pub mod hash;
pub mod json;
pub mod rng;

pub use hash::{sha256, sha256_hex, Sha256};
pub use json::{parse as parse_json, DecodeError, Json, ParseError};
pub use rng::XorShift;
