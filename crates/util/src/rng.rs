//! A seeded xorshift generator for tests and input generation.
//!
//! The workspace's property tests used to lean on `proptest`; offline
//! builds replace that with plain randomized testing driven by this
//! generator — a fixed seed per test gives reproducible cases, and the
//! xorshift64* recurrence is strong enough for structural fuzzing.

/// A xorshift64* pseudo-random generator.
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from `seed` (a zero seed is remapped — the
    /// all-zero state is the one fixed point of the recurrence).
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next 32 random bits (the stronger high half).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform integer in `[0, bound)`; `bound` of zero yields zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `u8` in `[0, bound)`.
    pub fn below_u8(&mut self, bound: u8) -> u8 {
        self.below(u64::from(bound)) as u8
    }

    /// Uniform integer in `[lo, hi)`; empty ranges collapse to `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(XorShift::new(1).next_u64(), XorShift::new(2).next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut g = XorShift::new(0);
        assert_ne!(g.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut g = XorShift::new(42);
        for _ in 0..1000 {
            assert!(g.below(7) < 7);
            assert!((1..5).contains(&g.range(1, 5)));
            let f = g.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(g.below(0), 0);
        assert_eq!(g.range(5, 5), 5);
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut g = XorShift::new(3);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[*g.choose(&items)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
