//! A minimal, dependency-free JSON representation with a writer and a
//! strict recursive-descent parser.
//!
//! The workspace's offline-build policy (std-only runtime dependencies)
//! rules out `serde`, and the experiment harness only needs to emit and
//! re-read small, well-formed documents: run records, kernel traces,
//! sweep results. [`Json`] covers exactly that — build a tree, render it
//! compact or pretty, parse it back.
//!
//! Integers and floats are kept distinct ([`Json::Int`] vs [`Json::Num`])
//! so `u64` counters round-trip without the 2^53 precision cliff of an
//! all-`f64` representation.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (anything without a fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved — the writer emits keys in
    /// the order they were added, keeping output stable across runs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value's object fields, in insertion order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Strict object field access: the key must exist.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the missing key.
    pub fn req(&self, key: &str) -> Result<&Json, DecodeError> {
        self.get(key)
            .ok_or_else(|| DecodeError::missing(key, "field"))
    }

    /// Strict typed field access: the key must exist and hold a `u64`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the missing or mistyped key.
    pub fn req_u64(&self, key: &str) -> Result<u64, DecodeError> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| DecodeError::missing(key, "non-negative integer"))
    }

    /// Strict typed field access: the key must exist and hold a number.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the missing or mistyped key.
    pub fn req_f64(&self, key: &str) -> Result<f64, DecodeError> {
        self.req(key)?
            .as_f64()
            .ok_or_else(|| DecodeError::missing(key, "number"))
    }

    /// Strict typed field access: the key must exist and hold a string.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the missing or mistyped key.
    pub fn req_str(&self, key: &str) -> Result<&str, DecodeError> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| DecodeError::missing(key, "string"))
    }

    /// Strict typed field access: the key must exist and hold a bool.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the missing or mistyped key.
    pub fn req_bool(&self, key: &str) -> Result<bool, DecodeError> {
        self.req(key)?
            .as_bool()
            .ok_or_else(|| DecodeError::missing(key, "bool"))
    }

    /// Strict typed field access: the key must exist and hold an array.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the missing or mistyped key.
    pub fn req_arr(&self, key: &str) -> Result<&[Json], DecodeError> {
        self.req(key)?
            .as_arr()
            .ok_or_else(|| DecodeError::missing(key, "array"))
    }

    /// Renders the value as compact JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty JSON (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Keep integral floats distinguishable from Ints so a
                    // round trip preserves the variant.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{n:.1}"));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A schema-level decode failure: syntactically valid JSON whose shape
/// does not match the document a `from_json` decoder expects. Distinct
/// from [`ParseError`], which locates malformed *text*.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Human-readable description, e.g. ``missing field `cycles` ``.
    pub message: String,
}

impl DecodeError {
    /// A decode error with the given message.
    pub fn new(message: impl Into<String>) -> DecodeError {
        DecodeError {
            message: message.into(),
        }
    }

    /// Prefixes the message with a location, for nesting context as a
    /// decoder unwinds (`in `stats`: missing field `cycles``).
    pub fn context(mut self, what: &str) -> DecodeError {
        self.message = format!("in `{what}`: {}", self.message);
        self
    }

    fn missing(key: &str, expected: &str) -> DecodeError {
        DecodeError::new(format!("missing or mistyped field `{key}` ({expected})"))
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DecodeError {}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        c => return Err(self.err(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("bad number"))
        } else {
            // Integers that overflow i64 degrade to f64 rather than fail.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(v as f64),
        }
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::from("bow")),
            ("cycles", Json::from(123_456_789_012_345u64)),
            ("ipc", Json::from(1.25)),
            ("ok", Json::from(true)),
            ("tags", Json::arr([Json::from("a"), Json::from("b")])),
            ("nothing", Json::Null),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn large_u64_counters_survive() {
        let n = u64::MAX / 3; // comfortably above 2^53
        let v = Json::from(n);
        let back = parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(n));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::from("a\"b\\c\nd\te\u{1}f — π");
        let back = parse(&v.to_string_compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        let v = parse(r#""éA\n\/""#).unwrap();
        assert_eq!(v.as_str(), Some("éA\n/"));
        let pair = parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "[1] x",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"a": 1, "b": 2.5, "c": "s", "d": [1,2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("s"));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn numbers_with_exponents_parse() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
    }
}
