//! The device level: block dispatch across SMs and kernel launches.
//!
//! The GPU owns the device-wide probe subscribers: a [`PipeTrace`] fed
//! when `trace_pipeline` is set and the Fig. 3 [`BypassAnalyzer`] fed
//! when `analyze_windows` is non-empty. When neither is enabled the whole
//! launch runs against [`NullProbe`] — a separate monomorphization of the
//! SM pipeline with every trace point compiled out.

use crate::config::{GpuConfig, OracleCheck};
use crate::oracle::LockstepChecker;
use crate::parallel::{self, EventBuf};
use crate::pipetrace::PipeTrace;
use crate::probe::{NullProbe, PipeEvent, Probe};
use crate::sanitize::{Sanitizer, SanitizerReport};
use crate::sm::Sm;
use crate::stats::SimStats;
use crate::trace::{BypassAnalyzer, WindowReport};
use bow_isa::{Kernel, KernelDims};
use bow_mem::GlobalMemory;

/// The outcome of one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchResult {
    /// Device cycles from launch to the last SM going idle.
    pub cycles: u64,
    /// Aggregated statistics across all SMs.
    pub stats: SimStats,
    /// Per-SM statistics, indexed by SM id (memory counters folded in).
    pub per_sm: Vec<SimStats>,
    /// Fig. 3 window reports (empty unless the config enables the analyzer).
    pub windows: Vec<WindowReport>,
    /// False if the `max_cycles` watchdog fired before completion.
    pub completed: bool,
    /// Race-sanitizer report (`Some` only when the config set
    /// [`GpuConfig::sanitize`] and the launch ran through
    /// [`Gpu::launch`] with the oracle check off).
    pub sanitizer: Option<SanitizerReport>,
}

impl LaunchResult {
    /// Device-level instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stats.warp_instructions as f64 / self.cycles as f64
        }
    }
}

/// The instrumented launch probe: fans events out to the device trace
/// (when tracing is on) and the bypass analyzer.
struct LaunchProbe<'a, 'k> {
    trace: Option<&'a mut PipeTrace>,
    analyzer: &'a mut BypassAnalyzer,
    sanitizer: Option<&'a mut Sanitizer<'k>>,
}

impl Probe for LaunchProbe<'_, '_> {
    #[inline]
    fn on_event(&mut self, ev: &PipeEvent<'_>) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.on_event(ev);
        }
        self.analyzer.on_event(ev);
        if let Some(s) = self.sanitizer.as_deref_mut() {
            s.on_event(ev);
        }
    }
}

/// A whole simulated GPU: SMs plus device (global) memory.
///
/// Host code allocates buffers directly in [`Gpu::global_mut`], launches
/// kernels with [`Gpu::launch`] and reads results back from
/// [`Gpu::global`] — the usual device-memory programming model.
pub struct Gpu {
    config: GpuConfig,
    global: GlobalMemory,
    sms: Vec<Sm>,
    /// Device-wide pipeline trace (fed only when `trace_pipeline` is set).
    trace: PipeTrace,
}

impl Gpu {
    /// Creates a GPU per `config`.
    pub fn new(config: GpuConfig) -> Gpu {
        let sms = (0..config.num_sms as usize)
            .map(|i| Sm::new(i, &config))
            .collect();
        Gpu {
            config,
            global: GlobalMemory::new(),
            sms,
            trace: PipeTrace::new(),
        }
    }

    /// The configuration this GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Device memory (read side).
    pub fn global(&self) -> &GlobalMemory {
        &self.global
    }

    /// Device memory (host setup side).
    pub fn global_mut(&mut self) -> &mut GlobalMemory {
        &mut self.global
    }

    /// Drains the device-wide pipeline trace, ordered by
    /// `(cycle, sm, warp, seq)` (empty unless the config set
    /// `trace_pipeline`). Call after [`launch`](Self::launch).
    pub fn take_trace(&mut self) -> PipeTrace {
        let mut t = std::mem::take(&mut self.trace);
        t.sort();
        t
    }

    /// Launches `kernel` over `dims` with the given parameter words and
    /// runs the device to completion.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails validation or a block needs more warps
    /// than an SM can ever host.
    pub fn launch(&mut self, kernel: &Kernel, dims: KernelDims, params: &[u32]) -> LaunchResult {
        if self.config.oracle_check != OracleCheck::Off {
            return self.launch_checked(kernel, dims, params);
        }
        kernel
            .validate()
            .expect("kernel must validate before launch");
        let warps_per_block = dims.warps_per_block();
        assert!(
            warps_per_block <= self.config.max_warps_per_sm,
            "block needs {warps_per_block} warps, SM hosts {}",
            self.config.max_warps_per_sm
        );

        let mut analyzer = BypassAnalyzer::new(&self.config.analyze_windows);
        let mut sanitizer = self.config.sanitize.then(|| {
            Sanitizer::new(
                kernel,
                u64::from(warps_per_block),
                self.config.collector.window(),
            )
        });
        for sm in &mut self.sms {
            sm.reset_for_launch(params);
        }

        let instrumented =
            self.config.trace_pipeline || analyzer.is_enabled() || sanitizer.is_some();
        let (cycles, completed) = if instrumented {
            let mut probe = LaunchProbe {
                trace: self.config.trace_pipeline.then_some(&mut self.trace),
                analyzer: &mut analyzer,
                sanitizer: sanitizer.as_mut(),
            };
            run_device(
                &mut self.sms,
                &mut self.global,
                kernel,
                dims,
                warps_per_block,
                &self.config,
                &mut probe,
            )
        } else {
            run_device(
                &mut self.sms,
                &mut self.global,
                kernel,
                dims,
                warps_per_block,
                &self.config,
                &mut NullProbe,
            )
        };

        let per_sm: Vec<SimStats> = self.sms.iter().map(Sm::stats).collect();
        let mut stats = SimStats::default();
        for s in &per_sm {
            stats.merge(s);
        }
        stats.cycles = cycles;
        LaunchResult {
            cycles,
            stats,
            per_sm,
            windows: analyzer.reports().to_vec(),
            completed,
            sanitizer: sanitizer.map(Sanitizer::finish),
        }
    }

    /// Launches `kernel` with a caller-supplied probe subscribed to the
    /// whole device's event stream (in addition to the always-on
    /// statistics). The config's own trace/analyzer subscribers are *not*
    /// attached on this path — the caller's probe is the instrumentation.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`launch`](Self::launch).
    pub fn launch_with_probe<P: Probe>(
        &mut self,
        kernel: &Kernel,
        dims: KernelDims,
        params: &[u32],
        probe: &mut P,
    ) -> LaunchResult {
        kernel
            .validate()
            .expect("kernel must validate before launch");
        let warps_per_block = dims.warps_per_block();
        assert!(
            warps_per_block <= self.config.max_warps_per_sm,
            "block needs {warps_per_block} warps, SM hosts {}",
            self.config.max_warps_per_sm
        );
        for sm in &mut self.sms {
            sm.reset_for_launch(params);
        }
        let (cycles, completed) = run_device(
            &mut self.sms,
            &mut self.global,
            kernel,
            dims,
            warps_per_block,
            &self.config,
            probe,
        );
        let per_sm: Vec<SimStats> = self.sms.iter().map(Sm::stats).collect();
        let mut stats = SimStats::default();
        for s in &per_sm {
            stats.merge(s);
        }
        stats.cycles = cycles;
        LaunchResult {
            cycles,
            stats,
            per_sm,
            windows: Vec::new(),
            completed,
            sanitizer: None,
        }
    }

    /// The `oracle_check` launch path: runs the architectural oracle over
    /// a snapshot of device memory, then the pipelined launch. In
    /// [`OracleCheck::Lockstep`] mode every instruction's destination
    /// values are checked against the oracle's write log (panicking at the
    /// first divergence); in [`OracleCheck::Memory`] mode only the final
    /// global-memory fingerprints are compared.
    fn launch_checked(
        &mut self,
        kernel: &Kernel,
        dims: KernelDims,
        params: &[u32],
    ) -> LaunchResult {
        let lockstep = self.config.oracle_check == OracleCheck::Lockstep;
        let oracle = crate::oracle::run_oracle(kernel, dims, params, self.global.clone(), lockstep);
        let result = if lockstep {
            let mut checker = LockstepChecker::new(&oracle.log);
            let result = self.launch_with_probe(kernel, dims, params, &mut checker);
            if let Some(d) = &checker.divergence {
                panic!("oracle check failed for kernel `{}`: {d}", kernel.name);
            }
            if result.completed && oracle.completed {
                assert_eq!(
                    checker.checked,
                    oracle.log.len() as u64,
                    "oracle check for kernel `{}`: pipeline executed {} data \
                     instructions, oracle executed {}",
                    kernel.name,
                    checker.checked,
                    oracle.log.len()
                );
            }
            result
        } else {
            self.launch_with_probe(kernel, dims, params, &mut NullProbe)
        };
        if result.completed && oracle.completed {
            assert_eq!(
                self.global.fingerprint(),
                oracle.global.fingerprint(),
                "oracle check for kernel `{}`: final global memory diverges \
                 from the architectural oracle",
                kernel.name
            );
        }
        result
    }
}

/// Routes a launch to the right execution engine.
///
/// A single-SM device runs the legacy serial loop ([`run_blocks`]) — with
/// no cross-SM state the windowed protocol degenerates to it exactly, so
/// the two are bit-identical and the serial loop is cheaper. Multi-SM
/// devices run the windowed engine ([`crate::parallel`]) at the
/// configured thread count; the per-SM probe recorder is [`EventBuf`]
/// when the caller's probe consumes events and the zero-cost
/// [`NullProbe`] otherwise (both branches are resolved at compile time
/// via `P::ACTIVE`).
fn run_device<P: Probe>(
    sms: &mut [Sm],
    global: &mut GlobalMemory,
    kernel: &Kernel,
    dims: KernelDims,
    warps_per_block: u32,
    config: &GpuConfig,
    probe: &mut P,
) -> (u64, bool) {
    if sms.len() <= 1 {
        return run_blocks(
            sms,
            global,
            kernel,
            dims,
            warps_per_block,
            config.max_cycles,
            probe,
        );
    }
    let ep = parallel::EngineParams {
        warps_per_block,
        max_cycles: config.max_cycles,
        window: u64::from(config.sim_window.max(1)),
        threads: config.resolved_sim_threads(),
    };
    if P::ACTIVE {
        parallel::run_windowed::<EventBuf, P>(sms, global, kernel, dims, &ep, probe)
    } else {
        parallel::run_windowed::<NullProbe, P>(sms, global, kernel, dims, &ep, probe)
    }
}

/// The device run loop: dispatches queued blocks to free SMs and ticks
/// every busy SM until the grid drains (or the watchdog fires). Generic
/// over the probe so the uninstrumented launch monomorphizes to a loop
/// with no trace plumbing at all.
fn run_blocks<P: Probe>(
    sms: &mut [Sm],
    global: &mut GlobalMemory,
    kernel: &Kernel,
    dims: KernelDims,
    warps_per_block: u32,
    max_cycles: u64,
    probe: &mut P,
) -> (u64, bool) {
    // Block queue in row-major launch order.
    let total = u64::from(dims.total_blocks());
    let mut next_block = 0u64;
    let mut cycles = 0u64;
    let watchdog = if max_cycles == 0 {
        u64::MAX
    } else {
        max_cycles
    };
    let mut completed = true;

    loop {
        // Dispatch as many queued blocks as fit this cycle.
        while next_block < total {
            let Some(sm) = sms
                .iter_mut()
                .find(|sm| sm.can_host_block(kernel, warps_per_block))
            else {
                break;
            };
            let bx = (next_block % u64::from(dims.grid.0)) as u32;
            let by = (next_block / u64::from(dims.grid.0)) as u32;
            sm.assign_block(kernel, (bx, by), dims, next_block);
            next_block += 1;
        }

        if next_block >= total && sms.iter().all(|sm| !sm.busy()) {
            break;
        }
        if cycles >= watchdog {
            completed = false;
            break;
        }
        cycles += 1;
        for sm in sms.iter_mut() {
            if sm.busy() {
                sm.tick(kernel, global, probe);
            }
        }
    }
    (cycles, completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;
    use bow_isa::{KernelBuilder, Operand, Reg, Special};

    fn saxpy_kernel() -> Kernel {
        let r = Reg::r;
        KernelBuilder::new("saxpy")
            .s2r(r(0), Special::TidX)
            .s2r(r(1), Special::CtaidX)
            .s2r(r(2), Special::NtidX)
            .imad(r(0), r(1).into(), r(2).into(), r(0).into())
            .shl(r(3), r(0).into(), Operand::Imm(2))
            .ldc(r(4), 0)
            .iadd(r(4), r(4).into(), r(3).into())
            .ldg(r(5), r(4), 0)
            .ldc(r(6), 4)
            .iadd(r(6), r(6).into(), r(3).into())
            .ldg(r(7), r(6), 0)
            .ldc(r(8), 8)
            .ffma(r(5), r(5).into(), r(8).into(), r(7).into())
            .stg(r(6), 0, r(5).into())
            .exit()
            .build()
            .unwrap()
    }

    fn run_saxpy(kind: CollectorKind, n: u32) -> (Vec<f32>, LaunchResult) {
        let mut gpu = Gpu::new(GpuConfig::scaled(kind));
        let (xa, ya) = (0x1_0000u64, 0x2_0000u64);
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
        gpu.global_mut().write_slice_f32(xa, &x);
        gpu.global_mut().write_slice_f32(ya, &y);
        let dims = KernelDims::linear(n / 64, 64);
        let res = gpu.launch(
            &saxpy_kernel(),
            dims,
            &[xa as u32, ya as u32, 3.0f32.to_bits()],
        );
        (gpu.global().read_vec_f32(ya, n as usize), res)
    }

    #[test]
    fn saxpy_matches_reference_on_all_collectors() {
        let n = 256;
        let expect: Vec<f32> = (0..n).map(|i| 3.0 * i as f32 + (2 * i) as f32).collect();
        for kind in [
            CollectorKind::Baseline,
            CollectorKind::bow(2),
            CollectorKind::bow(3),
            CollectorKind::bow_wr(3),
            CollectorKind::BowWr {
                window: 3,
                half_size: true,
            },
            CollectorKind::rfc6(),
        ] {
            let (got, res) = run_saxpy(kind, n as u32);
            assert!(res.completed);
            assert_eq!(got, expect, "wrong result under {kind:?}");
        }
    }

    #[test]
    fn bow_improves_ipc_over_baseline() {
        let (_, base) = run_saxpy(CollectorKind::Baseline, 2048);
        let (_, bow) = run_saxpy(CollectorKind::bow(3), 2048);
        assert!(
            bow.ipc() > base.ipc(),
            "BOW {} should beat baseline {}",
            bow.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn bow_wr_cuts_rf_traffic() {
        let (_, base) = run_saxpy(CollectorKind::Baseline, 1024);
        let (_, wr) = run_saxpy(CollectorKind::bow_wr(3), 1024);
        let base_total = base.stats.rf.reads + base.stats.rf.writes;
        let wr_total = wr.stats.rf.reads + wr.stats.rf.writes;
        assert!(
            (wr_total as f64) < 0.8 * base_total as f64,
            "RF traffic {wr_total} vs baseline {base_total}"
        );
    }

    #[test]
    fn analyzer_reports_window_sweep() {
        let mut gpu =
            Gpu::new(GpuConfig::scaled(CollectorKind::Baseline).with_analyzer(&[2, 3, 7]));
        let out = 0x3_0000u64;
        gpu.global_mut().write_slice_f32(0x1_0000, &[0.0; 64]);
        gpu.global_mut().write_slice_f32(0x2_0000, &[0.0; 64]);
        let res = gpu.launch(
            &saxpy_kernel(),
            KernelDims::linear(1, 64),
            &[0x1_0000, 0x2_0000, 0],
        );
        let _ = out;
        assert_eq!(res.windows.len(), 3);
        assert!(res.windows[0].total_reads > 0);
        assert!(res.windows[2].read_rate() >= res.windows[0].read_rate());
    }

    #[test]
    fn multi_sm_distributes_blocks() {
        let mut cfg = GpuConfig::scaled(CollectorKind::Baseline);
        cfg.num_sms = 4;
        let mut gpu = Gpu::new(cfg);
        gpu.global_mut().write_slice_f32(0x1_0000, &vec![1.0; 1024]);
        gpu.global_mut().write_slice_f32(0x2_0000, &vec![1.0; 1024]);
        let res = gpu.launch(
            &saxpy_kernel(),
            KernelDims::linear(16, 64),
            &[0x1_0000, 0x2_0000, 1.0f32.to_bits()],
        );
        assert!(res.completed);
        // 16 blocks x 2 warps x 15 instructions.
        assert_eq!(res.stats.warp_instructions, 16 * 2 * 15);
    }

    #[test]
    fn per_sm_stats_sum_to_device_totals() {
        let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
        cfg.num_sms = 4;
        let mut gpu = Gpu::new(cfg);
        gpu.global_mut().write_slice_f32(0x1_0000, &vec![1.0; 1024]);
        gpu.global_mut().write_slice_f32(0x2_0000, &vec![1.0; 1024]);
        let res = gpu.launch(
            &saxpy_kernel(),
            KernelDims::linear(16, 64),
            &[0x1_0000, 0x2_0000, 1.0f32.to_bits()],
        );
        assert_eq!(res.per_sm.len(), 4);
        assert!(
            res.per_sm.iter().any(|s| s.warp_instructions > 0),
            "some SM must have executed the grid"
        );
        let sums: (u64, u64, u64) = res.per_sm.iter().fold((0, 0, 0), |acc, s| {
            (
                acc.0 + s.warp_instructions,
                acc.1 + s.rf.reads,
                acc.2 + s.bypassed_writes,
            )
        });
        assert_eq!(sums.0, res.stats.warp_instructions);
        assert_eq!(sums.1, res.stats.rf.reads);
        assert_eq!(sums.2, res.stats.bypassed_writes);
    }

    #[test]
    fn oracle_check_launch_passes_on_all_collectors() {
        let n = 256u32;
        for kind in [
            CollectorKind::Baseline,
            CollectorKind::bow(3),
            CollectorKind::bow_wr(3),
            CollectorKind::rfc6(),
        ] {
            let mut cfg = GpuConfig::scaled(kind);
            cfg.oracle_check = OracleCheck::Lockstep;
            let mut gpu = Gpu::new(cfg);
            let (xa, ya) = (0x1_0000u64, 0x2_0000u64);
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let y: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();
            gpu.global_mut().write_slice_f32(xa, &x);
            gpu.global_mut().write_slice_f32(ya, &y);
            // A divergence or memory mismatch panics inside launch.
            let res = gpu.launch(
                &saxpy_kernel(),
                KernelDims::linear(n / 64, 64),
                &[xa as u32, ya as u32, 3.0f32.to_bits()],
            );
            assert!(res.completed, "under {kind:?}");
        }
    }

    /// A kernel whose `r1` hint is a caller-chosen policy: with `BocOnly`
    /// the value is dropped at eviction (distance to the store exceeds the
    /// window), so the store reads whatever the *banks* hold. The dependent
    /// chain on `r2` keeps issue slow enough that `r1`'s write-back lands
    /// while still window-resident (dirty), then the chain slides it out.
    fn stale_hint_kernel(hint: bow_isa::WritebackHint) -> Kernel {
        let r = Reg::r;
        let mut b = KernelBuilder::new("stale")
            .ldc(r(0), 0)
            .mov_imm(r(1), 42)
            .hint(hint);
        for _ in 0..4 {
            b = b.iadd(r(2), r(2).into(), Operand::Imm(1));
        }
        b.stg(r(0), 0, r(1).into())
            .iadd(r(3), r(1).into(), Operand::Imm(1))
            .exit()
            .build()
            .unwrap()
    }

    fn run_stale(hint: bow_isa::WritebackHint, shadow: bool, check: OracleCheck) -> u32 {
        let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
        cfg.shadow_rf = shadow;
        cfg.oracle_check = check;
        let mut gpu = Gpu::new(cfg);
        let addr = 0x1_0000u64;
        gpu.global_mut().write_u32(addr, u32::MAX);
        let res = gpu.launch(
            &stale_hint_kernel(hint),
            KernelDims::linear(1, 32),
            &[addr as u32],
        );
        assert!(res.completed);
        gpu.global().read_u32(addr)
    }

    #[test]
    fn shadow_rf_makes_a_dropped_boc_only_value_architecturally_visible() {
        use bow_isa::WritebackHint;
        // The value-less timing model silently hides the unsound hint...
        assert_eq!(
            run_stale(WritebackHint::BocOnly, false, OracleCheck::Off),
            42
        );
        // ...the shadow RF surfaces it: the store fetches the stale bank
        // contents (spawn-state zero) instead of the dropped 42.
        assert_eq!(run_stale(WritebackHint::BocOnly, true, OracleCheck::Off), 0);
        // A sound policy commits at eviction, so the shadow agrees.
        assert_eq!(run_stale(WritebackHint::Both, true, OracleCheck::Off), 42);
    }

    #[test]
    #[should_panic(expected = "oracle check failed")]
    fn lockstep_oracle_catches_unsound_hint_under_shadow_rf() {
        run_stale(bow_isa::WritebackHint::BocOnly, true, OracleCheck::Lockstep);
    }

    #[test]
    fn watchdog_fires_on_infinite_loops() {
        let r = Reg::r;
        let spin = KernelBuilder::new("spin")
            .label("top")
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .bra("top")
            .exit()
            .build()
            .unwrap();
        let mut cfg = GpuConfig::scaled(CollectorKind::Baseline);
        cfg.max_cycles = 5_000;
        let mut gpu = Gpu::new(cfg);
        let res = gpu.launch(&spin, KernelDims::linear(1, 32), &[]);
        assert!(!res.completed);
    }
}
