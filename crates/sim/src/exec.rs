//! Functional execution of instructions over warp state.
//!
//! The pipeline models *timing*; this module provides the *semantics*.
//! Control instructions execute at issue ([`execute_control`]); data and
//! memory instructions execute when the operand collector dispatches them
//! ([`execute_data`]), reading architectural registers directly — the
//! scoreboard guarantees those equal the values the collector gathered.

use crate::warp::{Split, StackEntry, StackKind, Warp};
use bow_isa::{Instruction, Opcode, Operand, Special, NUM_CBARS, WARP_SIZE};
use bow_mem::{GlobalAccess, GlobalMemory, SharedMemory};

/// Geometry context a warp needs to evaluate special registers.
#[derive(Clone, Copy, Debug)]
pub struct BlockInfo {
    /// This block's coordinates in the grid.
    pub ctaid: (u32, u32),
    /// Threads per block.
    pub ntid: (u32, u32),
    /// Blocks per grid.
    pub nctaid: (u32, u32),
}

/// Everything [`execute_data`] may touch besides the warp itself.
///
/// Generic over the device-memory view: the serial engine passes the
/// bare [`GlobalMemory`], the windowed parallel engine passes an SM's
/// [`WindowedGlobal`](bow_mem::WindowedGlobal) overlay view.
pub struct ExecCtx<'a, G: GlobalAccess = GlobalMemory> {
    /// Device global memory.
    pub global: &'a mut G,
    /// The warp's block's shared memory.
    pub shared: &'a mut SharedMemory,
    /// Kernel parameters (`ldc` source).
    pub params: &'a [u32],
    /// Block geometry (`s2r` source).
    pub block: BlockInfo,
}

/// Memory space an access touched, for the timing model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Space {
    /// Global memory — goes through the cache hierarchy.
    Global,
    /// Shared memory — fixed latency plus bank conflicts.
    Shared,
    /// Parameter/constant space — fixed small latency.
    Param,
}

/// Description of a memory access for the timing model.
#[derive(Clone, Debug)]
pub struct MemAccess {
    /// Load or store.
    pub is_store: bool,
    /// Which space.
    pub space: Space,
    /// Byte addresses of the active lanes.
    pub addrs: Vec<u64>,
}

/// What a control instruction did, so the SM can update barrier state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlOutcome {
    /// Plain control flow (branch, ssy, sync, nop) — warp continues.
    Plain,
    /// The warp reached a block-wide barrier.
    Barrier,
    /// Active lanes exited (the warp may or may not be done).
    Exit,
}

fn as_f32(v: u32) -> f32 {
    f32::from_bits(v)
}

/// The canonical f32 quiet NaN all float results collapse to, matching
/// NVIDIA hardware (PTX: "single-precision NaN payloads are not
/// preserved; the canonical NaN 0x7fffffff is returned"). Besides
/// fidelity, this keeps the model deterministic: Rust/LLVM make no
/// promise about which payload survives a two-NaN operation, so without
/// canonicalization identical source code can produce different NaN bits
/// in different compilation contexts.
pub const CANONICAL_NAN: u32 = 0x7fff_ffff;

fn from_f32(v: f32) -> u32 {
    if v.is_nan() {
        CANONICAL_NAN
    } else {
        v.to_bits()
    }
}

/// Evaluates a source operand for one lane.
pub(crate) fn operand_value(warp: &Warp, lane: usize, op: Operand, block: &BlockInfo) -> u32 {
    match op {
        Operand::Reg(r) => warp.read_reg(lane, r),
        Operand::Imm(v) => v,
        Operand::Pred(p) => u32::from(warp.read_pred(lane, p)),
        Operand::Special(s) => special_value(warp, lane, s, block),
    }
}

fn special_value(warp: &Warp, lane: usize, s: Special, block: &BlockInfo) -> u32 {
    let flat = warp.warp_in_block * WARP_SIZE as u32 + lane as u32;
    match s {
        Special::TidX => flat % block.ntid.0,
        Special::TidY => flat / block.ntid.0,
        Special::CtaidX => block.ctaid.0,
        Special::CtaidY => block.ctaid.1,
        Special::NtidX => block.ntid.0,
        Special::NtidY => block.ntid.1,
        Special::NctaidX => block.nctaid.0,
        Special::NctaidY => block.nctaid.1,
        Special::LaneId => lane as u32,
        Special::WarpId => warp.warp_in_block,
    }
}

/// Executes a data or memory instruction for the lanes in `mask`
/// (captured at issue time), applying all register/predicate/memory
/// effects. Returns the memory-access description for memory opcodes.
///
/// # Panics
///
/// Panics if called with a control opcode — those go through
/// [`execute_control`] at issue.
pub fn execute_data<G: GlobalAccess>(
    warp: &mut Warp,
    inst: &Instruction,
    mask: u32,
    ctx: &mut ExecCtx<'_, G>,
) -> Option<MemAccess> {
    use Opcode::*;
    assert!(
        !inst.op.is_control(),
        "control op {} in execute_data",
        inst.op
    );

    if inst.op.is_memory() {
        return Some(execute_memory(warp, inst, mask, ctx));
    }

    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let s = |i: usize| operand_value(warp, lane, inst.srcs[i], &ctx.block);
        match inst.op {
            IAdd => write(warp, lane, inst, s(0).wrapping_add(s(1))),
            ISub => write(warp, lane, inst, s(0).wrapping_sub(s(1))),
            IMul => write(warp, lane, inst, s(0).wrapping_mul(s(1))),
            IMad => write(warp, lane, inst, s(0).wrapping_mul(s(1)).wrapping_add(s(2))),
            IMin => write(warp, lane, inst, (s(0) as i32).min(s(1) as i32) as u32),
            IMax => write(warp, lane, inst, (s(0) as i32).max(s(1) as i32) as u32),
            IAbs => write(warp, lane, inst, (s(0) as i32).unsigned_abs()),
            ISad => {
                let d = (s(0) as i32).abs_diff(s(1) as i32);
                write(warp, lane, inst, d.wrapping_add(s(2)));
            }
            And => write(warp, lane, inst, s(0) & s(1)),
            Or => write(warp, lane, inst, s(0) | s(1)),
            Xor => write(warp, lane, inst, s(0) ^ s(1)),
            Not => write(warp, lane, inst, !s(0)),
            Shl => write(warp, lane, inst, s(0).wrapping_shl(s(1))),
            Shr => write(warp, lane, inst, s(0).wrapping_shr(s(1))),
            Sar => write(warp, lane, inst, (s(0) as i32).wrapping_shr(s(1)) as u32),
            FAdd => write(warp, lane, inst, from_f32(as_f32(s(0)) + as_f32(s(1)))),
            FSub => write(warp, lane, inst, from_f32(as_f32(s(0)) - as_f32(s(1)))),
            FMul => write(warp, lane, inst, from_f32(as_f32(s(0)) * as_f32(s(1)))),
            FFma => write(
                warp,
                lane,
                inst,
                from_f32(as_f32(s(0)).mul_add(as_f32(s(1)), as_f32(s(2)))),
            ),
            FMin => write(warp, lane, inst, from_f32(as_f32(s(0)).min(as_f32(s(1))))),
            FMax => write(warp, lane, inst, from_f32(as_f32(s(0)).max(as_f32(s(1))))),
            FRcp => write(warp, lane, inst, from_f32(1.0 / as_f32(s(0)))),
            FSqrt => write(warp, lane, inst, from_f32(as_f32(s(0)).sqrt())),
            FLog2 => write(warp, lane, inst, from_f32(as_f32(s(0)).log2())),
            FExp2 => write(warp, lane, inst, from_f32(as_f32(s(0)).exp2())),
            I2F => write(warp, lane, inst, from_f32(s(0) as i32 as f32)),
            F2I => write(warp, lane, inst, (as_f32(s(0)) as i32) as u32),
            Mov | S2R => write(warp, lane, inst, s(0)),
            Sel => {
                let Operand::Pred(p) = inst.srcs[2] else {
                    unreachable!("validated sel has predicate third source")
                };
                let v = if warp.read_pred(lane, p) { s(0) } else { s(1) };
                write(warp, lane, inst, v);
            }
            ISetp(c) => {
                let v = c.eval_i32(s(0) as i32, s(1) as i32);
                write_pred(warp, lane, inst, v);
            }
            FSetp(c) => {
                let v = c.eval_f32(as_f32(s(0)), as_f32(s(1)));
                write_pred(warp, lane, inst, v);
            }
            Ldg | Stg | Lds | Sts | Ldc | Bra | Ssy | Sync | Bar | Exit | Nop | Bssy | Bsync => {
                unreachable!()
            }
        }
    }
    None
}

fn write(warp: &mut Warp, lane: usize, inst: &Instruction, v: u32) {
    if let bow_isa::Dst::Reg(r) = inst.dst {
        warp.write_reg(lane, r, v);
    }
}

fn write_pred(warp: &mut Warp, lane: usize, inst: &Instruction, v: bool) {
    if let bow_isa::Dst::Pred(p) = inst.dst {
        warp.write_pred(lane, p, v);
    }
}

fn execute_memory<G: GlobalAccess>(
    warp: &mut Warp,
    inst: &Instruction,
    mask: u32,
    ctx: &mut ExecCtx<'_, G>,
) -> MemAccess {
    use Opcode::*;
    let mem = inst.mem.expect("validated memory op has a MemRef");
    let mut addrs = Vec::new();
    for lane in 0..WARP_SIZE {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let addr = if inst.op == Ldc {
            mem.offset as u64
        } else {
            (warp.read_reg(lane, mem.base) as u64).wrapping_add(mem.offset as i64 as u64)
        };
        addrs.push(addr);
        match inst.op {
            Ldg => {
                let v = ctx.global.read_u32(addr);
                write(warp, lane, inst, v);
            }
            Stg => {
                let v = operand_value(warp, lane, inst.srcs[0], &ctx.block);
                ctx.global.write_u32(addr, v);
            }
            Lds => {
                let v = ctx.shared.read_u32(addr);
                write(warp, lane, inst, v);
            }
            Sts => {
                let v = operand_value(warp, lane, inst.srcs[0], &ctx.block);
                ctx.shared.write_u32(addr, v);
            }
            Ldc => {
                let idx = (addr / 4) as usize;
                let v = ctx.params.get(idx).copied().unwrap_or(0);
                write(warp, lane, inst, v);
            }
            _ => unreachable!(),
        }
    }
    let (is_store, space) = match inst.op {
        Ldg => (false, Space::Global),
        Stg => (true, Space::Global),
        Lds => (false, Space::Shared),
        Sts => (true, Space::Shared),
        Ldc => (false, Space::Param),
        _ => unreachable!(),
    };
    MemAccess {
        is_store,
        space,
        addrs,
    }
}

/// Executes a control instruction at issue time, updating the PC, SIMT
/// stack and barrier/exit state.
///
/// # Panics
///
/// Panics if called with a non-control opcode.
pub fn execute_control(warp: &mut Warp, inst: &Instruction) -> ControlOutcome {
    use Opcode::*;
    assert!(
        inst.op.is_control(),
        "data op {} in execute_control",
        inst.op
    );
    match inst.op {
        Nop => {
            warp.pc += 1;
            ControlOutcome::Plain
        }
        Bar => {
            warp.pc += 1;
            warp.at_barrier = true;
            ControlOutcome::Barrier
        }
        Exit => {
            warp.retire_active();
            ControlOutcome::Exit
        }
        Ssy => {
            let target = inst.target.expect("validated ssy has a target");
            warp.stack.push(StackEntry {
                kind: StackKind::Sync,
                pc: target,
                mask: warp.active,
            });
            warp.pc += 1;
            ControlOutcome::Plain
        }
        Sync => {
            match warp.stack.pop() {
                Some(e) if e.kind == StackKind::Div => {
                    // Switch to the deferred not-taken path; the sync entry
                    // beneath stays for the final reconvergence.
                    warp.active = e.mask & !warp.exited;
                    warp.pc = e.pc;
                }
                Some(e) => {
                    // Reconverge: restore the pre-divergence mask, continue
                    // past the sync point.
                    warp.active = e.mask & !warp.exited;
                    warp.pc += 1;
                }
                None => {
                    // Sync without ssy: treat as nop (uniform code path).
                    warp.pc += 1;
                }
            }
            ControlOutcome::Plain
        }
        Bra => {
            let target = inst.target.expect("validated bra has a target");
            let taken = warp.guard_mask(inst.guard);
            let not_taken = warp.active & !taken;
            if not_taken == 0 {
                warp.pc = target;
            } else if taken == 0 {
                warp.pc += 1;
            } else if warp.barrier_mode {
                // Divergence, stack-less model: park the not-taken lanes as
                // a runnable split. LIFO resume keeps the stack model's
                // taken-arm-first serialization order.
                warp.splits.push(Split {
                    pc: warp.pc + 1,
                    mask: not_taken,
                    waiting_on: None,
                });
                warp.active = taken;
                warp.pc = target;
            } else {
                // Divergence: run the taken side first, queue the rest.
                warp.stack.push(StackEntry {
                    kind: StackKind::Div,
                    pc: warp.pc + 1,
                    mask: not_taken,
                });
                warp.active = taken;
                warp.pc = target;
            }
            ControlOutcome::Plain
        }
        Bssy => {
            // Arm the convergence barrier: the current group participates;
            // nobody has arrived yet. The reconvergence target is implied by
            // the matching `bsync`'s position, so it needs no recording.
            let b = cbar_index(inst);
            warp.cbar_part[b] = warp.active;
            warp.cbar_arrived[b] = 0;
            warp.pc += 1;
            ControlOutcome::Plain
        }
        Bsync => {
            let b = cbar_index(inst);
            let pending = warp.cbar_part[b] & !warp.exited;
            if warp.cbar_part[b] == 0 || pending == 0 {
                // Unarmed (or all participants dead): behaves like a nop,
                // mirroring sync-without-ssy in the stack model.
                warp.cbar_part[b] = 0;
                warp.cbar_arrived[b] = 0;
                warp.pc += 1;
                return ControlOutcome::Plain;
            }
            let arrived = warp.cbar_arrived[b] | warp.active;
            if pending & !arrived == 0 {
                // Every live participant has arrived: reconverge. Waiting
                // splits on this barrier are absorbed into the released
                // group (their lanes are in `pending`).
                warp.splits.retain(|s| s.waiting_on != Some(b as u8));
                warp.cbar_part[b] = 0;
                warp.cbar_arrived[b] = 0;
                warp.active = (pending | warp.active) & !warp.exited;
                warp.pc += 1;
                return ControlOutcome::Plain;
            }
            // Some participants are still on the way: park this group at
            // the bsync and switch to another split.
            warp.cbar_arrived[b] = arrived;
            warp.splits.push(Split {
                pc: warp.pc,
                mask: warp.active,
                waiting_on: Some(b as u8),
            });
            warp.active = 0;
            if warp.schedule_next_group() {
                ControlOutcome::Plain
            } else {
                // Every live lane waits on a barrier that cannot release:
                // a convergence deadlock (malformed kernel). Terminate the
                // warp like the stack model's malformed-kernel path so the
                // pipeline can drain and finalize it.
                debug_assert!(
                    false,
                    "convergence deadlock: live lanes {:#x} all parked",
                    warp.valid & !warp.exited
                );
                warp.done = true;
                ControlOutcome::Exit
            }
        }
        _ => unreachable!(),
    }
}

fn cbar_index(inst: &Instruction) -> usize {
    inst.cbar()
        .expect("validated bssy/bsync carries a barrier id") as usize
        % NUM_CBARS
}

/// Whether executing `inst` on `warp` *now* would be a reconvergence
/// underflow: a `sync` with an empty SIMT stack or a `bsync` on an unarmed
/// convergence barrier. Both execute as nops; the sanitizer reports them as
/// broken reconvergence structure. Must be evaluated *before*
/// [`execute_control`].
pub fn sync_underflows(warp: &Warp, inst: &Instruction) -> bool {
    match inst.op {
        Opcode::Sync => warp.stack.is_empty(),
        Opcode::Bsync => warp.cbar_part[cbar_index(inst)] == 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_isa::{Dst, KernelBuilder, MemRef, Pred, Reg};

    fn ctx<'a>(
        global: &'a mut GlobalMemory,
        shared: &'a mut SharedMemory,
        params: &'a [u32],
    ) -> ExecCtx<'a> {
        ExecCtx {
            global,
            shared,
            params,
            block: BlockInfo {
                ctaid: (2, 0),
                ntid: (64, 1),
                nctaid: (4, 1),
            },
        }
    }

    fn run_one(warp: &mut Warp, inst: &Instruction) {
        let mut g = GlobalMemory::new();
        let mut s = SharedMemory::new(64);
        let mask = warp.active;
        execute_data(warp, inst, mask, &mut ctx(&mut g, &mut s, &[]));
    }

    #[test]
    fn integer_alu_semantics() {
        let mut w = Warp::new(0, 0, 0, 32, 8);
        w.write_reg(0, Reg::r(1), 10);
        w.write_reg(0, Reg::r(2), 3);
        let k = KernelBuilder::new("t")
            .imad(
                Reg::r(3),
                Reg::r(1).into(),
                Reg::r(2).into(),
                Operand::Imm(5),
            )
            .isad(
                Reg::r(4),
                Reg::r(1).into(),
                Reg::r(2).into(),
                Operand::Imm(1),
            )
            .sar(Reg::r(5), Operand::simm(-8), Operand::Imm(1))
            .exit()
            .build()
            .unwrap();
        run_one(&mut w, &k.insts[0]);
        run_one(&mut w, &k.insts[1]);
        run_one(&mut w, &k.insts[2]);
        assert_eq!(w.read_reg(0, Reg::r(3)), 35);
        assert_eq!(w.read_reg(0, Reg::r(4)), 8); // |10-3| + 1
        assert_eq!(w.read_reg(0, Reg::r(5)) as i32, -4);
    }

    #[test]
    fn float_semantics_via_bits() {
        let mut w = Warp::new(0, 0, 0, 32, 8);
        w.write_reg(0, Reg::r(1), 2.5f32.to_bits());
        let k = KernelBuilder::new("t")
            .ffma(
                Reg::r(2),
                Reg::r(1).into(),
                Operand::fimm(2.0),
                Operand::fimm(1.0),
            )
            .fsqrt(Reg::r(3), Operand::fimm(9.0))
            .exit()
            .build()
            .unwrap();
        run_one(&mut w, &k.insts[0]);
        run_one(&mut w, &k.insts[1]);
        assert_eq!(f32::from_bits(w.read_reg(0, Reg::r(2))), 6.0);
        assert_eq!(f32::from_bits(w.read_reg(0, Reg::r(3))), 3.0);
    }

    #[test]
    fn setp_and_sel() {
        let mut w = Warp::new(0, 0, 0, 32, 8);
        w.write_reg(0, Reg::r(1), 5);
        let k = KernelBuilder::new("t")
            .isetp(
                bow_isa::CmpOp::Gt,
                Pred::p(0),
                Reg::r(1).into(),
                Operand::Imm(3),
            )
            .sel(Reg::r(2), Operand::Imm(111), Operand::Imm(222), Pred::p(0))
            .exit()
            .build()
            .unwrap();
        run_one(&mut w, &k.insts[0]);
        run_one(&mut w, &k.insts[1]);
        assert!(w.read_pred(0, Pred::p(0)));
        assert_eq!(w.read_reg(0, Reg::r(2)), 111);
        // Lane 1 has r1 == 0, so the predicate is false there.
        assert!(!w.read_pred(1, Pred::p(0)));
        assert_eq!(w.read_reg(1, Reg::r(2)), 222);
    }

    #[test]
    fn special_registers_follow_geometry() {
        let mut w = Warp::new(0, 0, 1, 32, 4); // second warp of the block
        let k = KernelBuilder::new("t")
            .s2r(Reg::r(0), Special::TidX)
            .s2r(Reg::r(1), Special::CtaidX)
            .s2r(Reg::r(2), Special::TidY)
            .exit()
            .build()
            .unwrap();
        let mut g = GlobalMemory::new();
        let mut s = SharedMemory::new(0);
        let mut c = ctx(&mut g, &mut s, &[]);
        let mask = w.active;
        execute_data(&mut w, &k.insts[0], mask, &mut c);
        execute_data(&mut w, &k.insts[1], mask, &mut c);
        execute_data(&mut w, &k.insts[2], mask, &mut c);
        // warp 1 lane 0 = flat thread 32; ntid.x = 64 so tid.x = 32, tid.y = 0.
        assert_eq!(w.read_reg(0, Reg::r(0)), 32);
        assert_eq!(w.read_reg(0, Reg::r(1)), 2);
        assert_eq!(w.read_reg(0, Reg::r(2)), 0);
    }

    #[test]
    fn global_load_store_roundtrip() {
        let mut w = Warp::new(0, 0, 0, 32, 8);
        for lane in 0..32 {
            w.write_reg(lane, Reg::r(1), 0x100 + 4 * lane as u32);
            w.write_reg(lane, Reg::r(2), lane as u32 * 7);
        }
        let mut g = GlobalMemory::new();
        let mut s = SharedMemory::new(0);
        let mut store = Instruction::new(Opcode::Stg, Dst::None, vec![Reg::r(2).into()]);
        store.mem = Some(MemRef {
            base: Reg::r(1),
            offset: 0,
        });
        let mut load = Instruction::new(Opcode::Ldg, Dst::Reg(Reg::r(3)), vec![]);
        load.mem = Some(MemRef {
            base: Reg::r(1),
            offset: 0,
        });

        let mask = w.active;
        let acc = execute_data(&mut w, &store, mask, &mut ctx(&mut g, &mut s, &[])).unwrap();
        assert!(acc.is_store);
        assert_eq!(acc.addrs.len(), 32);
        execute_data(&mut w, &load, mask, &mut ctx(&mut g, &mut s, &[]));
        for lane in 0..32 {
            assert_eq!(w.read_reg(lane, Reg::r(3)), lane as u32 * 7);
        }
    }

    #[test]
    fn masked_lanes_do_nothing() {
        let mut w = Warp::new(0, 0, 0, 32, 8);
        let k = KernelBuilder::new("t")
            .mov_imm(Reg::r(0), 9)
            .exit()
            .build()
            .unwrap();
        let mut g = GlobalMemory::new();
        let mut s = SharedMemory::new(0);
        execute_data(&mut w, &k.insts[0], 0b1, &mut ctx(&mut g, &mut s, &[]));
        assert_eq!(w.read_reg(0, Reg::r(0)), 9);
        assert_eq!(w.read_reg(1, Reg::r(0)), 0);
    }

    #[test]
    fn ldc_reads_params() {
        let mut w = Warp::new(0, 0, 0, 32, 4);
        let k = KernelBuilder::new("t")
            .ldc(Reg::r(0), 4)
            .exit()
            .build()
            .unwrap();
        let mut g = GlobalMemory::new();
        let mut s = SharedMemory::new(0);
        let params = [11, 22, 33];
        execute_data(&mut w, &k.insts[0], 1, &mut ctx(&mut g, &mut s, &params));
        assert_eq!(w.read_reg(0, Reg::r(0)), 22);
    }

    #[test]
    fn uniform_branch_jumps_without_divergence() {
        let mut w = Warp::new(0, 0, 0, 32, 4);
        let mut bra = Instruction::new(Opcode::Bra, Dst::None, vec![]);
        bra.target = Some(7);
        execute_control(&mut w, &bra);
        assert_eq!(w.pc, 7);
        assert!(w.stack.is_empty());
    }

    #[test]
    fn divergent_branch_pushes_and_reconverges() {
        let mut w = Warp::new(0, 0, 0, 32, 4);
        // Lanes 0..16 have p0 = true.
        for lane in 0..16 {
            w.write_pred(lane, Pred::p(0), true);
        }
        // ssy to the sync at pc 5.
        let mut ssy = Instruction::new(Opcode::Ssy, Dst::None, vec![]);
        ssy.target = Some(5);
        execute_control(&mut w, &ssy);
        assert_eq!(w.pc, 1);

        let mut bra = Instruction::new(Opcode::Bra, Dst::None, vec![]);
        bra.target = Some(3);
        bra.guard = Some(bow_isa::PredGuard {
            pred: Pred::p(0),
            negated: false,
        });
        execute_control(&mut w, &bra);
        // Taken side first.
        assert_eq!(w.pc, 3);
        assert_eq!(w.active, 0x0000_ffff);
        assert_eq!(w.stack.len(), 2);

        // Taken side reaches the sync at 5: switch to the deferred path.
        w.pc = 5;
        let sync = Instruction::new(Opcode::Sync, Dst::None, vec![]);
        execute_control(&mut w, &sync);
        assert_eq!(w.pc, 2); // fallthrough of the branch
        assert_eq!(w.active, 0xffff_0000);

        // Other side reaches the sync too: reconverge past it.
        w.pc = 5;
        execute_control(&mut w, &sync);
        assert_eq!(w.pc, 6);
        assert_eq!(w.active, u32::MAX);
        assert!(w.stack.is_empty());
    }

    /// Runs a kernel's control/ALU skeleton on one warp of the functional
    /// model until done, returning the trace of (pc, active) per step.
    fn run_barrier_kernel(k: &bow_isa::Kernel, preds: &[(usize, Pred, bool)]) -> Vec<(usize, u32)> {
        let mut w = Warp::new(0, 0, 0, 32, k.num_regs.max(1));
        w.barrier_mode = k.uses_convergence_barriers();
        for &(lane, p, v) in preds {
            w.write_pred(lane, p, v);
        }
        let mut g = GlobalMemory::new();
        let mut s = SharedMemory::new(0);
        let mut trace = Vec::new();
        let mut steps = 0;
        while !w.done {
            assert!(steps < 10_000, "kernel did not terminate");
            steps += 1;
            let inst = &k.insts[w.pc];
            trace.push((w.pc, w.active));
            if inst.op.is_control() {
                execute_control(&mut w, inst);
            } else {
                let mask = w.guard_mask(inst.guard);
                w.pc += 1;
                execute_data(&mut w, inst, mask, &mut ctx(&mut g, &mut s, &[]));
            }
        }
        trace
    }

    #[test]
    fn barrier_diamond_reconverges() {
        // if (p0) { r0 = 1 } else { r0 = 2 }; join
        let k = KernelBuilder::new("diamond")
            .bssy(0, "join")
            .bra_if(Pred::p(0), false, "then")
            .mov_imm(Reg::r(0), 2)
            .bra("join_sync")
            .label("then")
            .mov_imm(Reg::r(0), 1)
            .label("join_sync")
            .bsync(0)
            .label("join")
            .mov_imm(Reg::r(1), 3)
            .exit()
            .build()
            .unwrap();
        let low = 0x0000_ffffu32;
        let preds: Vec<_> = (0..16).map(|l| (l, Pred::p(0), true)).collect();
        let trace = run_barrier_kernel(&k, &preds);
        // Taken arm runs first (lanes 0..16), then the not-taken arm, then
        // both bsync executions, then the reconverged join with a full mask.
        let then_pc = 4; // mov r0, 1
        let else_pc = 2; // mov r0, 2
        let then_pos = trace.iter().position(|&(pc, _)| pc == then_pc).unwrap();
        let else_pos = trace.iter().position(|&(pc, _)| pc == else_pc).unwrap();
        assert!(then_pos < else_pos, "taken arm serializes first");
        assert_eq!(trace[then_pos].1, low);
        assert_eq!(trace[else_pos].1, !low);
        let join = trace.iter().find(|&&(pc, _)| pc == 6).unwrap();
        assert_eq!(join.1, u32::MAX, "join runs with the reconverged mask");
    }

    #[test]
    fn barrier_nested_diamonds_reconverge_inside_out() {
        // Outer diamond on p0; the taken arm contains an inner diamond on p1.
        let k = KernelBuilder::new("nested")
            .bssy(0, "ojoin")
            .bra_if(Pred::p(0), false, "othen")
            .mov_imm(Reg::r(0), 9)
            .bra("osync")
            .label("othen")
            .bssy(1, "ijoin")
            .bra_if(Pred::p(1), false, "ithen")
            .mov_imm(Reg::r(1), 8)
            .bra("isync")
            .label("ithen")
            .mov_imm(Reg::r(1), 7)
            .label("isync")
            .bsync(1)
            .label("ijoin")
            .label("osync")
            .bsync(0)
            .label("ojoin")
            .mov_imm(Reg::r(2), 1)
            .exit()
            .build()
            .unwrap();
        // p0 true on lanes 0..16; within those, p1 true on lanes 0..8.
        let mut preds: Vec<_> = (0..16).map(|l| (l, Pred::p(0), true)).collect();
        preds.extend((0..8).map(|l| (l, Pred::p(1), true)));
        let trace = run_barrier_kernel(&k, &preds);
        let at = |pc: usize| trace.iter().find(|&&(p, _)| p == pc).unwrap().1;
        assert_eq!(at(8), 0x0000_00ff, "inner taken arm: p0 & p1 lanes");
        assert_eq!(at(6), 0x0000_ff00, "inner not-taken arm");
        assert_eq!(at(2), 0xffff_0000, "outer not-taken arm");
        // First arrival at the outer bsync is the fully reconverged inner
        // group: the inner diamond joined before the outer sync.
        assert_eq!(at(10), 0x0000_ffff, "inner join completes first");
        assert_eq!(at(11), u32::MAX, "outer join reconverges everyone");
    }

    #[test]
    fn barrier_exit_in_arm_releases_waiters() {
        // The not-taken arm exits without ever reaching the bsync; the
        // waiting taken arm must still be released.
        let k = KernelBuilder::new("armexit")
            .bssy(0, "join")
            .bra_if(Pred::p(0), false, "then")
            .exit()
            .label("then")
            .mov_imm(Reg::r(0), 1)
            .bsync(0)
            .label("join")
            .mov_imm(Reg::r(1), 2)
            .exit()
            .build()
            .unwrap();
        let preds: Vec<_> = (0..16).map(|l| (l, Pred::p(0), true)).collect();
        let trace = run_barrier_kernel(&k, &preds);
        let join = trace.iter().find(|&&(pc, _)| pc == 5).unwrap();
        assert_eq!(join.1, 0x0000_ffff, "survivors continue past the join");
    }

    #[test]
    fn bsync_on_unarmed_barrier_is_a_nop_and_flagged() {
        let mut w = Warp::new(0, 0, 0, 32, 4);
        w.barrier_mode = true;
        let k = KernelBuilder::new("t").bsync(3).exit().build().unwrap();
        assert!(sync_underflows(&w, &k.insts[0]));
        execute_control(&mut w, &k.insts[0]);
        assert_eq!(w.pc, 1);
        assert_eq!(w.active, u32::MAX);
    }

    #[test]
    fn exit_and_barrier_outcomes() {
        let mut w = Warp::new(0, 0, 0, 32, 4);
        let bar = Instruction::new(Opcode::Bar, Dst::None, vec![]);
        assert_eq!(execute_control(&mut w, &bar), ControlOutcome::Barrier);
        assert!(w.at_barrier);
        let exit = Instruction::new(Opcode::Exit, Dst::None, vec![]);
        assert_eq!(execute_control(&mut w, &exit), ControlOutcome::Exit);
        assert!(w.done);
    }
}
