//! Trace capture and offline replay.
//!
//! Architecture studies often separate *trace collection* (run the slow
//! functional/timing simulator once) from *characterization* (re-analyze
//! the trace under many parameters instantly). This module provides that
//! split for the bypass study: [`TraceRecorder`] captures each warp's
//! dynamic operand stream during a launch into a serializable
//! [`KernelTrace`]; [`replay`] then runs the Fig. 3 sliding-window
//! analysis over the stored trace for any set of window sizes without
//! touching the simulator again.
//!
//! The invariant tying the two worlds together — replaying a captured
//! trace must produce exactly the same [`WindowReport`]s as the online
//! analyzer — is asserted by an integration test.

use crate::trace::{BypassAnalyzer, WindowReport};
use bow_isa::{Instruction, Kernel};
use bow_util::json::{self, Json};

/// One dynamic instruction in a warp's stream: just the operand identity
/// the window analysis needs (registers, not values).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// Program counter (for mapping back to the kernel text).
    pub pc: u32,
    /// Unique source registers read.
    pub srcs: Vec<u8>,
    /// Destination register written, if any.
    pub dst: Option<u8>,
}

impl TraceStep {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pc", Json::from(self.pc)),
            (
                "srcs",
                Json::Arr(
                    self.srcs
                        .iter()
                        .map(|&r| Json::from(u32::from(r)))
                        .collect(),
                ),
            ),
            (
                "dst",
                self.dst.map_or(Json::Null, |r| Json::from(u32::from(r))),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<TraceStep, String> {
        let reg = |j: &Json| -> Result<u8, String> {
            j.as_u64()
                .and_then(|r| u8::try_from(r).ok())
                .ok_or_else(|| "bad register index".to_string())
        };
        Ok(TraceStep {
            pc: v
                .get("pc")
                .and_then(Json::as_u64)
                .and_then(|p| u32::try_from(p).ok())
                .ok_or("missing step `pc`")?,
            srcs: v
                .get("srcs")
                .and_then(Json::as_arr)
                .ok_or("missing step `srcs`")?
                .iter()
                .map(reg)
                .collect::<Result<Vec<_>, _>>()?,
            dst: match v.get("dst") {
                None | Some(Json::Null) => None,
                Some(j) => Some(reg(j)?),
            },
        })
    }
}

/// The dynamic operand streams of every warp of one launch.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KernelTrace {
    /// Kernel name the trace came from.
    pub kernel: String,
    /// Per-warp streams, keyed by a stable warp uid.
    pub warps: Vec<(u64, Vec<TraceStep>)>,
}

impl KernelTrace {
    /// Total dynamic instructions across all warps.
    pub fn len(&self) -> usize {
        self.warps.iter().map(|(_, s)| s.len()).sum()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes to JSON (hand-rolled — the workspace is offline-only and
    /// carries no serde).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("kernel", Json::from(self.kernel.as_str())),
            (
                "warps",
                Json::Arr(
                    self.warps
                        .iter()
                        .map(|(uid, steps)| {
                            Json::obj([
                                ("uid", Json::from(*uid)),
                                (
                                    "steps",
                                    Json::Arr(steps.iter().map(TraceStep::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_compact()
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json(s: &str) -> Result<KernelTrace, String> {
        let v = json::parse(s).map_err(|e| e.to_string())?;
        let kernel = v
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or("missing `kernel`")?
            .to_string();
        let mut warps = Vec::new();
        for w in v
            .get("warps")
            .and_then(Json::as_arr)
            .ok_or("missing `warps`")?
        {
            let uid = w
                .get("uid")
                .and_then(Json::as_u64)
                .ok_or("missing warp `uid`")?;
            let steps = w
                .get("steps")
                .and_then(Json::as_arr)
                .ok_or("missing warp `steps`")?
                .iter()
                .map(TraceStep::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            warps.push((uid, steps));
        }
        Ok(KernelTrace { kernel, warps })
    }
}

/// Captures a [`KernelTrace`] by functionally interpreting a kernel per
/// warp — no timing model involved, so capture is fast and exact. This
/// reuses the simulator's own issue stream: build it by running a launch
/// with the online analyzer's hook, or use [`record_straightline`] for
/// branch-free kernels in tests.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    trace: KernelTrace,
    open: std::collections::HashMap<u64, Vec<TraceStep>>,
}

impl TraceRecorder {
    /// Creates a recorder for `kernel`.
    pub fn new(kernel_name: &str) -> TraceRecorder {
        TraceRecorder {
            trace: KernelTrace {
                kernel: kernel_name.to_string(),
                warps: Vec::new(),
            },
            open: std::collections::HashMap::new(),
        }
    }

    /// Records one issued instruction for `warp_uid`.
    pub fn record(&mut self, warp_uid: u64, pc: usize, inst: &Instruction) {
        let step = TraceStep {
            pc: pc as u32,
            srcs: inst.unique_src_regs().iter().map(|r| r.index()).collect(),
            dst: inst.dst_reg().map(|r| r.index()),
        };
        self.open.entry(warp_uid).or_default().push(step);
    }

    /// Finishes a warp's stream.
    pub fn flush_warp(&mut self, warp_uid: u64) {
        if let Some(steps) = self.open.remove(&warp_uid) {
            self.trace.warps.push((warp_uid, steps));
        }
    }

    /// Finishes all warps and returns the trace.
    pub fn finish(mut self) -> KernelTrace {
        let mut open: Vec<_> = std::mem::take(&mut self.open).into_iter().collect();
        open.sort_by_key(|(uid, _)| *uid);
        self.trace.warps.extend(open);
        self.trace.warps.sort_by_key(|(uid, _)| *uid);
        self.trace
    }
}

/// Captures the trace of a *straight-line* kernel (no branches): every
/// warp executes every instruction once in order.
pub fn record_straightline(kernel: &Kernel, warps: u64) -> KernelTrace {
    let mut rec = TraceRecorder::new(&kernel.name);
    for uid in 0..warps {
        for (pc, inst) in kernel.iter() {
            if !inst.op.is_control() || inst.dst_reg().is_some() {
                rec.record(uid, pc, inst);
            }
        }
        rec.flush_warp(uid);
    }
    rec.finish()
}

/// Replays a trace through the sliding-window analysis for each window
/// size, producing the same reports the online analyzer would.
pub fn replay(trace: &KernelTrace, windows: &[u32]) -> Vec<WindowReport> {
    let mut analyzer = BypassAnalyzer::new(windows);
    for (uid, steps) in &trace.warps {
        for step in steps {
            analyzer.record_raw(*uid, &step.srcs, step.dst);
        }
        analyzer.flush_warp(*uid);
    }
    analyzer.reports().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_isa::{KernelBuilder, Operand, Reg};

    fn sample() -> Kernel {
        let r = Reg::r;
        KernelBuilder::new("t")
            .mov_imm(r(0), 1)
            .iadd(r(1), r(0).into(), Operand::Imm(2))
            .imul(r(2), r(1).into(), r(0).into())
            .exit()
            .build()
            .unwrap()
    }

    #[test]
    fn straightline_capture_counts_operands() {
        let t = record_straightline(&sample(), 2);
        assert_eq!(t.warps.len(), 2);
        assert_eq!(t.len(), 6, "3 data instructions x 2 warps");
    }

    #[test]
    fn json_roundtrip() {
        let t = record_straightline(&sample(), 1);
        let json = t.to_json();
        let back = KernelTrace::from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(KernelTrace::from_json("{").is_err());
        assert!(KernelTrace::from_json("{\"kernel\": \"k\"}").is_err());
        assert!(KernelTrace::from_json("{\"kernel\": \"k\", \"warps\": [{}]}").is_err());
    }

    #[test]
    fn replay_matches_online_analysis() {
        let k = sample();
        let windows = [2u32, 3, 5];
        // Online: feed the analyzer directly.
        let mut online = BypassAnalyzer::new(&windows);
        for uid in 0..3u64 {
            for (_, inst) in k.iter() {
                if !inst.op.is_control() {
                    online.record(uid, inst);
                }
            }
            online.flush_warp(uid);
        }
        // Offline: capture then replay.
        let trace = record_straightline(&k, 3);
        let offline = replay(&trace, &windows);
        assert_eq!(offline, online.reports().to_vec());
    }

    #[test]
    fn replay_is_cheap_to_resweep() {
        let trace = record_straightline(&sample(), 4);
        let narrow = replay(&trace, &[2]);
        let wide = replay(&trace, &[7]);
        assert!(wide[0].read_rate() >= narrow[0].read_rate());
    }
}
