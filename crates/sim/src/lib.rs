//! # bow-sim — cycle-level GPU model with bypassing operand collectors
//!
//! This crate is the heart of the BOW reproduction: a functional **and**
//! cycle-level model of a GPU streaming multiprocessor (SM) in the style the
//! paper simulates with GPGPU-Sim (NVIDIA TITAN X, Pascal — Table II):
//!
//! * four greedy-then-oldest (GTO) warp schedulers with dual issue;
//! * a scoreboard blocking RAW/WAW/WAR hazards per warp;
//! * a 32-bank, single-ported register file with a bank arbitrator;
//! * an operand-collection stage with four interchangeable models:
//!   the **baseline** OCUs, the paper's **BOW** (read bypassing,
//!   write-through), **BOW-WR** (read+write bypassing, write-back with
//!   compiler hints) and the **RFC** register-file-cache comparison point;
//! * pipelined SIMD execution units and an L1/L2/DRAM memory hierarchy
//!   (from [`bow_mem`]);
//! * SIMT divergence via an SSY/SYNC reconvergence stack, and block-wide
//!   barriers.
//!
//! Execution is functional: threads carry real register values and memory
//! holds real data, so every run can be checked against a host reference —
//! and the repository's central invariant, *bypassing never changes
//! architectural state*, is enforced by tests that compare final memory
//! fingerprints across all collector models.
//!
//! ## Quick start
//!
//! ```
//! use bow_sim::{Gpu, GpuConfig, CollectorKind};
//! use bow_isa::{KernelBuilder, Reg, Special, KernelDims};
//!
//! // d[i] = i  for 64 threads
//! let r = Reg::r;
//! let kernel = KernelBuilder::new("iota")
//!     .s2r(r(0), Special::TidX)
//!     .s2r(r(1), Special::CtaidX)
//!     .s2r(r(2), Special::NtidX)
//!     .imad(r(0), r(1).into(), r(2).into(), r(0).into())
//!     .ldc(r(3), 0)
//!     .shl(r(4), r(0).into(), 2.into())
//!     .iadd(r(3), r(3).into(), r(4).into())
//!     .stg(r(3), 0, r(0).into())
//!     .exit()
//!     .build()?;
//!
//! let mut gpu = Gpu::new(GpuConfig::scaled(CollectorKind::bow_wr(3)));
//! let out = 0x1000u64;
//! let run = gpu.launch(&kernel, KernelDims::linear(2, 32), &[out as u32]);
//! assert_eq!(gpu.global().read_u32(out + 4 * 63), 63);
//! assert!(run.stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod collector;
pub mod config;
pub mod core;
pub mod exec;
pub mod gpu;
pub mod oracle;
pub mod parallel;
pub mod pipetrace;
pub mod probe;
pub mod regfile;
pub mod replay;
pub mod sanitize;
pub mod scheduler;
pub mod scoreboard;
pub mod sm;
pub mod stage;
pub mod stats;
pub mod trace;
pub mod warp;

pub use collector::CollectorKind;
pub use config::{CoreModelKind, DivergenceModel, GpuConfig, OracleCheck, SchedPolicy};
pub use core::{CoreModel, CorePipeline, ModernCore, PascalCore};
pub use gpu::{Gpu, LaunchResult};
pub use oracle::{run_oracle, Divergence, LockstepChecker, OracleRun, WriteLog, WriteRecord};
pub use pipetrace::{Event, PipeTrace, Stage};
pub use probe::{emit, NullProbe, PipeEvent, Probe, StallKind};
pub use replay::{record_straightline, replay, KernelTrace, TraceRecorder, TraceStep};
pub use sanitize::{Sanitizer, SanitizerFinding, SanitizerReport};
pub use stage::{
    CollectStage, CompletionQueue, DispatchLatch, DispatchStage, IssueStage, Latches,
    PipelineStage, SmCtx, WritebackStage,
};
pub use stats::{SimStats, WriteDest};
pub use trace::{BypassAnalyzer, WindowReport};
