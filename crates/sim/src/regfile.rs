//! The banked register file: bank mapping, write queues and per-cycle port
//! accounting.
//!
//! Each of the (typically 32) banks has a single port serving one access per
//! cycle, writes taking priority over reads — the structural hazard at the
//! core of the paper's performance argument. Warp registers are swizzled
//! across banks with the standard `(warp + reg) % banks` mapping so
//! different warps' hot registers spread out.

use bow_isa::{Reg, WARP_SIZE};
use std::collections::{HashMap, VecDeque};

/// A queued register-file write (one warp-register, 128 B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingWrite {
    /// Warp slot that produced the value.
    pub warp: usize,
    /// Destination register.
    pub reg: Reg,
}

/// Register-file access counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegFileStats {
    /// Warp-register reads served by the banks.
    pub reads: u64,
    /// Warp-register writes performed on the banks.
    pub writes: u64,
    /// Read grants that had to wait at least one cycle for a port.
    pub read_conflicts: u64,
    /// Cycles any write sat queued behind a busy port.
    pub write_queue_cycles: u64,
}

/// An architectural shadow of the bank contents, maintained only when
/// [`RegFile::enable_shadow`] was called (the `shadow_rf` config knob).
///
/// The timing model does not store values: `Warp::regs` is the functional
/// state and is updated the moment an instruction executes, which makes
/// write-back *policy* invisible — a dropped `BocOnly` write-back can never
/// corrupt anything. The shadow closes that gap. Values produced at
/// write-back are *staged*; they commit to the shadow only when a write is
/// actually enqueued to a bank, so a dirty window entry dropped at eviction
/// simply never commits and the shadow keeps the stale bank value. Window
/// reads that miss (and therefore fetch from the banks) inject the shadow
/// value back into the functional state, making an unsound hint
/// architecturally visible to the lockstep oracle.
#[derive(Clone, Debug, Default)]
struct ShadowRf {
    /// Committed bank contents per warp slot; absent registers hold zeros,
    /// matching freshly spawned warp state.
    regs: Vec<HashMap<u8, [u32; WARP_SIZE]>>,
    /// Produced at write-back but not (yet) enqueued to a bank — the dirty
    /// window entries.
    staged: Vec<HashMap<u8, [u32; WARP_SIZE]>>,
}

/// The banked register file (timing side).
#[derive(Clone, Debug)]
pub struct RegFile {
    banks: usize,
    /// Bank groups. With one group (Pascal) every warp spreads over every
    /// bank; with `g` groups (the modern core's sub-core-private banks)
    /// warp `w` only ever touches the `banks / g` banks of group `w % g`,
    /// so sub-cores never contend for each other's ports.
    groups: usize,
    write_queues: Vec<VecDeque<PendingWrite>>,
    /// Banks whose port is consumed this cycle.
    busy: Vec<bool>,
    stats: RegFileStats,
    shadow: Option<ShadowRf>,
}

impl RegFile {
    /// Creates a register file with `banks` single-ported banks shared by
    /// all warps (one group).
    pub fn new(banks: usize) -> RegFile {
        RegFile::new_clustered(banks, 1)
    }

    /// Creates a register file whose banks are split into `groups`
    /// sub-core-private clusters; `banks` must divide evenly.
    pub fn new_clustered(banks: usize, groups: usize) -> RegFile {
        assert!(banks > 0, "at least one bank required");
        assert!(
            groups > 0 && banks.is_multiple_of(groups),
            "banks ({banks}) must split evenly into {groups} groups"
        );
        RegFile {
            banks,
            groups,
            write_queues: vec![VecDeque::new(); banks],
            busy: vec![false; banks],
            stats: RegFileStats::default(),
            shadow: None,
        }
    }

    /// Enables the architectural shadow for `warp_slots` warp slots.
    pub fn enable_shadow(&mut self, warp_slots: usize) {
        self.shadow = Some(ShadowRf {
            regs: vec![HashMap::new(); warp_slots],
            staged: vec![HashMap::new(); warp_slots],
        });
    }

    /// Whether the architectural shadow is maintained.
    pub fn shadow_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Records the lane values a completing instruction produced for
    /// `reg`, to be committed to the shadow if and when a bank write is
    /// enqueued. No-op while the shadow is disabled.
    pub fn shadow_stage(&mut self, warp: usize, reg: Reg, lanes: [u32; WARP_SIZE]) {
        if let Some(sh) = &mut self.shadow {
            sh.staged[warp].insert(reg.index(), lanes);
        }
    }

    /// What the banks hold for `warp`/`reg`: the last committed write, or
    /// zeros (spawn state) if none. `None` while the shadow is disabled.
    pub fn shadow_read(&self, warp: usize, reg: Reg) -> Option<[u32; WARP_SIZE]> {
        let sh = self.shadow.as_ref()?;
        Some(
            sh.regs[warp]
                .get(&reg.index())
                .copied()
                .unwrap_or([0; WARP_SIZE]),
        )
    }

    /// Clears shadow state for a warp slot being handed to a new warp.
    pub fn shadow_reset_warp(&mut self, warp: usize) {
        if let Some(sh) = &mut self.shadow {
            sh.regs[warp].clear();
            sh.staged[warp].clear();
        }
    }

    /// The bank a warp's register lives in: the standard
    /// `(warp + reg) % banks` swizzle within the warp's bank group. With
    /// one group this is exactly the flat Pascal mapping.
    pub fn bank_of(&self, warp: usize, reg: Reg) -> usize {
        let per = self.banks / self.groups;
        (warp % self.groups) * per + (warp + usize::from(reg.index())) % per
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RegFileStats {
        self.stats
    }

    /// Queues a write-back to the banks. This is the single point where
    /// values become architecturally visible in the banks, so the staged
    /// shadow value (if any) commits here.
    pub fn enqueue_write(&mut self, warp: usize, reg: Reg) {
        if let Some(sh) = &mut self.shadow {
            if let Some(lanes) = sh.staged[warp].remove(&reg.index()) {
                sh.regs[warp].insert(reg.index(), lanes);
            }
        }
        let b = self.bank_of(warp, reg);
        self.write_queues[b].push_back(PendingWrite { warp, reg });
    }

    /// Starts a new cycle: drains one queued write per bank (consuming that
    /// bank's port) and resets port availability for reads.
    pub fn begin_cycle(&mut self) {
        for b in 0..self.banks {
            let q = &mut self.write_queues[b];
            if let Some(_w) = q.pop_front() {
                self.busy[b] = true;
                self.stats.writes += 1;
            } else {
                self.busy[b] = false;
            }
            self.stats.write_queue_cycles += q.len() as u64;
        }
    }

    /// Tries to claim `warp`/`reg`'s bank port for a read this cycle.
    /// Returns true (and counts the read) on success.
    pub fn try_read(&mut self, warp: usize, reg: Reg) -> bool {
        let b = self.bank_of(warp, reg);
        if self.busy[b] {
            self.stats.read_conflicts += 1;
            false
        } else {
            self.busy[b] = true;
            self.stats.reads += 1;
            true
        }
    }

    /// Outstanding queued writes across all banks.
    pub fn queued_writes(&self) -> usize {
        self.write_queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_mapping_swizzles_by_warp() {
        let rf = RegFile::new(32);
        assert_eq!(rf.bank_of(0, Reg::r(0)), 0);
        assert_eq!(rf.bank_of(1, Reg::r(0)), 1);
        assert_eq!(rf.bank_of(0, Reg::r(33)), 1);
    }

    #[test]
    fn clustered_mapping_confines_warps_to_their_group() {
        let rf = RegFile::new_clustered(32, 4);
        for warp in 0..16 {
            let group = warp % 4;
            for r in 0..32u8 {
                let b = rf.bank_of(warp, Reg::r(r));
                assert_eq!(b / 8, group, "warp {warp} reg {r} left its group");
            }
        }
        // Within a group the swizzle still spreads registers over banks.
        let banks: std::collections::HashSet<_> =
            (0..8u8).map(|r| rf.bank_of(0, Reg::r(r))).collect();
        assert_eq!(banks.len(), 8);
    }

    #[test]
    fn one_group_matches_flat_mapping() {
        let flat = RegFile::new(32);
        let clustered = RegFile::new_clustered(32, 1);
        for warp in 0..64 {
            for r in 0..64u8 {
                assert_eq!(
                    flat.bank_of(warp, Reg::r(r)),
                    clustered.bank_of(warp, Reg::r(r))
                );
            }
        }
    }

    #[test]
    fn one_read_per_bank_per_cycle() {
        let mut rf = RegFile::new(4);
        rf.begin_cycle();
        assert!(rf.try_read(0, Reg::r(0)));
        assert!(!rf.try_read(4, Reg::r(0)), "same bank, port taken");
        assert!(rf.try_read(0, Reg::r(1)), "different bank is fine");
        assert_eq!(rf.stats().reads, 2);
        assert_eq!(rf.stats().read_conflicts, 1);
    }

    #[test]
    fn writes_beat_reads() {
        let mut rf = RegFile::new(4);
        rf.enqueue_write(0, Reg::r(0));
        rf.begin_cycle();
        assert!(!rf.try_read(0, Reg::r(0)), "write drained first");
        assert_eq!(rf.stats().writes, 1);
        rf.begin_cycle();
        assert!(rf.try_read(0, Reg::r(0)), "port free next cycle");
    }

    #[test]
    fn all_banks_serve_reads_in_the_same_cycle() {
        // Bank-level parallelism: with no conflicts, N banks serve N reads
        // per cycle — the baseline the conflict cases degrade from.
        let mut rf = RegFile::new(8);
        rf.begin_cycle();
        for i in 0..8 {
            assert!(rf.try_read(0, Reg::r(i)), "bank {i}");
        }
        assert_eq!(rf.stats().reads, 8);
        assert_eq!(rf.stats().read_conflicts, 0);
    }

    #[test]
    fn queued_writes_starve_reads_for_their_full_depth() {
        // Three writes queued to one bank consume that bank's port for
        // three consecutive cycles; a read attempt each cycle loses the
        // arbitration every time until the queue drains.
        let mut rf = RegFile::new(4);
        for _ in 0..3 {
            rf.enqueue_write(0, Reg::r(0));
        }
        let mut denied = 0;
        for _ in 0..3 {
            rf.begin_cycle();
            if !rf.try_read(4, Reg::r(0)) {
                denied += 1;
            }
        }
        assert_eq!(denied, 3, "write priority holds for the queue depth");
        rf.begin_cycle();
        assert!(rf.try_read(4, Reg::r(0)), "port free once drained");
        assert_eq!(rf.stats().read_conflicts, 3);
        assert_eq!(rf.stats().writes, 3);
        // Queue-occupancy integral: 2 behind the first drain + 1 behind
        // the second + 0 behind the third.
        assert_eq!(rf.stats().write_queue_cycles, 3);
    }

    #[test]
    fn conflicts_count_per_denied_attempt() {
        let mut rf = RegFile::new(2);
        rf.begin_cycle();
        assert!(rf.try_read(0, Reg::r(0)));
        assert!(!rf.try_read(2, Reg::r(0)), "same bank via warp swizzle");
        assert!(!rf.try_read(0, Reg::r(2)), "same bank via reg swizzle");
        assert_eq!(rf.stats().read_conflicts, 2);
        assert_eq!(rf.stats().reads, 1);
    }

    #[test]
    fn shadow_commits_only_on_enqueue() {
        let mut rf = RegFile::new(4);
        assert!(!rf.shadow_enabled());
        assert_eq!(rf.shadow_read(0, Reg::r(1)), None, "disabled => None");
        rf.enable_shadow(2);
        assert_eq!(
            rf.shadow_read(0, Reg::r(1)),
            Some([0; WARP_SIZE]),
            "spawn state is zeros"
        );
        let lanes = [7; WARP_SIZE];
        rf.shadow_stage(0, Reg::r(1), lanes);
        assert_eq!(
            rf.shadow_read(0, Reg::r(1)),
            Some([0; WARP_SIZE]),
            "staged but not enqueued: banks unchanged"
        );
        rf.enqueue_write(0, Reg::r(1));
        assert_eq!(rf.shadow_read(0, Reg::r(1)), Some(lanes));
    }

    #[test]
    fn dropped_staged_value_leaves_shadow_stale() {
        // A dirty BocOnly window entry that is evicted without write-back
        // never enqueues; the shadow must keep the old bank value.
        let mut rf = RegFile::new(4);
        rf.enable_shadow(1);
        rf.shadow_stage(0, Reg::r(2), [1; WARP_SIZE]);
        rf.enqueue_write(0, Reg::r(2));
        rf.shadow_stage(0, Reg::r(2), [2; WARP_SIZE]); // dropped: no enqueue
        assert_eq!(rf.shadow_read(0, Reg::r(2)), Some([1; WARP_SIZE]));
        // A later unrelated enqueue of the same register (e.g. a fresh
        // write) commits only what is staged at that point.
        rf.shadow_stage(0, Reg::r(2), [3; WARP_SIZE]);
        rf.enqueue_write(0, Reg::r(2));
        assert_eq!(rf.shadow_read(0, Reg::r(2)), Some([3; WARP_SIZE]));
    }

    #[test]
    fn shadow_reset_clears_one_warp_slot() {
        let mut rf = RegFile::new(4);
        rf.enable_shadow(2);
        for w in 0..2 {
            rf.shadow_stage(w, Reg::r(5), [9; WARP_SIZE]);
            rf.enqueue_write(w, Reg::r(5));
        }
        rf.shadow_reset_warp(0);
        assert_eq!(rf.shadow_read(0, Reg::r(5)), Some([0; WARP_SIZE]));
        assert_eq!(rf.shadow_read(1, Reg::r(5)), Some([9; WARP_SIZE]));
    }

    #[test]
    fn write_queue_drains_one_per_cycle() {
        let mut rf = RegFile::new(2);
        for _ in 0..3 {
            rf.enqueue_write(0, Reg::r(0)); // all to bank 0
        }
        assert_eq!(rf.queued_writes(), 3);
        rf.begin_cycle();
        assert_eq!(rf.queued_writes(), 2);
        rf.begin_cycle();
        rf.begin_cycle();
        assert_eq!(rf.queued_writes(), 0);
        assert_eq!(rf.stats().writes, 3);
        assert!(rf.stats().write_queue_cycles > 0);
    }
}
