//! Simulation statistics: every counter a paper figure needs.
//!
//! Counters accumulate exclusively through the probe bus: stages and
//! collectors emit [`PipeEvent`]s and [`SimStats::apply`] folds each one
//! into its counter. [`SimStats`] also implements [`Probe`], so a stats
//! block can sit on any probe composition like every other subscriber.

use crate::probe::{PipeEvent, Probe, StallKind};
use crate::regfile::RegFileStats;
use bow_energy::AccessCounts;
use bow_mem::MemStats;
use bow_util::json::{DecodeError, Json};

/// The three write-destination classes of Fig. 7 (§IV-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteDest {
    /// Written straight to the register-file banks (no reuse in window).
    RfOnly,
    /// Written to the operand collector, then the banks (persistent reuse).
    BocThenRf,
    /// Written only to the operand collector (transient value).
    BocOnly,
}

/// Counters accumulated by one SM (merge across SMs with
/// [`SimStats::merge`]).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SimStats {
    /// Cycles this SM ran.
    pub cycles: u64,
    /// Warp instructions committed (including control instructions).
    pub warp_instructions: u64,
    /// Thread instructions committed (warp instructions × active lanes).
    pub thread_instructions: u64,
    /// Register-file port/traffic counters.
    pub rf: RegFileStats,
    /// Source-operand reads satisfied by the bypass buffers instead of the
    /// register file (BOW's "eliminated read requests").
    pub bypassed_reads: u64,
    /// Values written into the bypass buffers (BOC) at writeback.
    pub boc_writes: u64,
    /// Register writebacks produced by the pipeline (before routing).
    pub writes_total: u64,
    /// Writebacks that reached the register-file banks.
    pub rf_writes_routed: u64,
    /// Writebacks that never reached the banks ("eliminated writes").
    pub bypassed_writes: u64,
    /// Fig. 7 classification: `[RfOnly, BocThenRf, BocOnly]` dynamic counts.
    pub write_dest: [u64; 3],
    /// Dirty window entries evicted early because the (half-size) buffer
    /// was full.
    pub forced_evictions: u64,
    /// Fig. 8: instructions by number of unique register sources (0..=3).
    pub src_count_hist: [u64; 4],
    /// Fig. 9: cycles observed at each BOC entry-occupancy level
    /// (index = number of live entries; saturates at the last bucket).
    pub boc_occupancy_hist: Vec<u64>,
    /// Number of (cycle × active-BOC) occupancy samples taken.
    pub occupancy_samples: u64,
    /// RFC baseline: reads served by the register-file cache.
    pub rfc_reads: u64,
    /// RFC baseline: writes into the register-file cache.
    pub rfc_writes: u64,
    /// Cycles memory instructions spent in the operand-collection stage.
    pub oc_cycles_mem: u64,
    /// Cycles non-memory instructions spent in the operand-collection stage.
    pub oc_cycles_nonmem: u64,
    /// Issue→writeback cycles of memory instructions.
    pub exec_cycles_mem: u64,
    /// Issue→writeback cycles of non-memory instructions.
    pub exec_cycles_nonmem: u64,
    /// Memory instructions dispatched.
    pub insts_mem: u64,
    /// Non-memory (data) instructions dispatched.
    pub insts_nonmem: u64,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Issue attempts rejected because no collector slot was free.
    pub stall_no_collector: u64,
    /// Issue attempts rejected by the scoreboard.
    pub stall_scoreboard: u64,
    /// Completions that arrived for a warp slot already retired. Should be
    /// zero in a well-formed pipeline; counted (not silently dropped) so a
    /// model bug is visible in release statistics.
    pub retired_completions: u64,
}

impl SimStats {
    /// Folds one pipeline event into the counter block. Every variant a
    /// counter cares about is matched here; milestone events that only
    /// exist for the trace/analyzer subscribers fall through unchanged.
    #[inline(always)]
    pub fn apply(&mut self, ev: &PipeEvent<'_>) {
        match *ev {
            PipeEvent::Issued { active, .. } => {
                self.warp_instructions += 1;
                self.thread_instructions += u64::from(active);
            }
            PipeEvent::Dispatch {
                oc_cycles, is_mem, ..
            } => {
                if is_mem {
                    self.oc_cycles_mem += oc_cycles;
                    self.insts_mem += 1;
                } else {
                    self.oc_cycles_nonmem += oc_cycles;
                    self.insts_nonmem += 1;
                }
            }
            PipeEvent::ExecSpan { is_mem, span } => {
                if is_mem {
                    self.exec_cycles_mem += span;
                } else {
                    self.exec_cycles_nonmem += span;
                }
            }
            PipeEvent::RetiredCompletion { .. } => self.retired_completions += 1,
            PipeEvent::Stall(StallKind::NoCollector) => self.stall_no_collector += 1,
            PipeEvent::Stall(StallKind::Scoreboard) => self.stall_scoreboard += 1,
            PipeEvent::SrcRegs(n) => self.src_count_hist[n.min(3)] += 1,
            PipeEvent::BypassedRead => self.bypassed_reads += 1,
            PipeEvent::RfcRead => self.rfc_reads += 1,
            PipeEvent::RfcWrite => self.rfc_writes += 1,
            PipeEvent::WriteProduced => self.writes_total += 1,
            PipeEvent::RfWriteRouted => self.rf_writes_routed += 1,
            PipeEvent::BypassedWrite => self.bypassed_writes += 1,
            PipeEvent::BocWrite => self.boc_writes += 1,
            PipeEvent::WriteDestClass(dest) => self.count_write_dest(dest),
            PipeEvent::ForcedEviction => self.forced_evictions += 1,
            PipeEvent::OccupancySample { live, cap } => self.sample_occupancy(live, cap),
            PipeEvent::Issue { .. }
            | PipeEvent::Control { .. }
            | PipeEvent::Writeback { .. }
            | PipeEvent::WarpExit { .. }
            | PipeEvent::ExecResult { .. }
            | PipeEvent::CtrlTrace { .. }
            | PipeEvent::MemTrace { .. } => {}
        }
    }

    /// Records a Fig. 7 classification.
    pub fn count_write_dest(&mut self, dest: WriteDest) {
        let i = match dest {
            WriteDest::RfOnly => 0,
            WriteDest::BocThenRf => 1,
            WriteDest::BocOnly => 2,
        };
        self.write_dest[i] += 1;
    }

    /// Records a BOC occupancy sample (Fig. 9).
    pub fn sample_occupancy(&mut self, entries: usize, max_entries: usize) {
        if self.boc_occupancy_hist.len() <= max_entries {
            self.boc_occupancy_hist.resize(max_entries + 1, 0);
        }
        self.boc_occupancy_hist[entries.min(max_entries)] += 1;
        self.occupancy_samples += 1;
    }

    /// Instructions per cycle (warp granularity).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of source-register reads served by bypassing.
    pub fn read_bypass_rate(&self) -> f64 {
        let total = self.bypassed_reads + self.rf.reads;
        if total == 0 {
            0.0
        } else {
            self.bypassed_reads as f64 / total as f64
        }
    }

    /// Fraction of register writebacks that never reached the RF banks.
    pub fn write_bypass_rate(&self) -> f64 {
        if self.writes_total == 0 {
            0.0
        } else {
            self.bypassed_writes as f64 / self.writes_total as f64
        }
    }

    /// Total operand-collection-stage cycles (mem + non-mem).
    pub fn oc_cycles(&self) -> u64 {
        self.oc_cycles_mem + self.oc_cycles_nonmem
    }

    /// The access counts the energy model consumes.
    pub fn access_counts(&self) -> AccessCounts {
        AccessCounts {
            rf_reads: self.rf.reads,
            rf_writes: self.rf.writes,
            boc_reads: self.bypassed_reads,
            boc_writes: self.boc_writes,
            rfc_reads: self.rfc_reads,
            rfc_writes: self.rfc_writes,
        }
    }

    /// The full counter block as a JSON object — the machine-readable form
    /// every experiment binary writes next to its textual tables.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("warp_instructions", Json::from(self.warp_instructions)),
            ("thread_instructions", Json::from(self.thread_instructions)),
            (
                "rf",
                Json::obj([
                    ("reads", Json::from(self.rf.reads)),
                    ("writes", Json::from(self.rf.writes)),
                    ("read_conflicts", Json::from(self.rf.read_conflicts)),
                    ("write_queue_cycles", Json::from(self.rf.write_queue_cycles)),
                ]),
            ),
            ("bypassed_reads", Json::from(self.bypassed_reads)),
            ("boc_writes", Json::from(self.boc_writes)),
            ("writes_total", Json::from(self.writes_total)),
            ("rf_writes_routed", Json::from(self.rf_writes_routed)),
            ("bypassed_writes", Json::from(self.bypassed_writes)),
            (
                "write_dest",
                Json::Arr(self.write_dest.iter().map(|&n| Json::from(n)).collect()),
            ),
            ("forced_evictions", Json::from(self.forced_evictions)),
            (
                "src_count_hist",
                Json::Arr(self.src_count_hist.iter().map(|&n| Json::from(n)).collect()),
            ),
            (
                "boc_occupancy_hist",
                Json::Arr(
                    self.boc_occupancy_hist
                        .iter()
                        .map(|&n| Json::from(n))
                        .collect(),
                ),
            ),
            ("occupancy_samples", Json::from(self.occupancy_samples)),
            ("rfc_reads", Json::from(self.rfc_reads)),
            ("rfc_writes", Json::from(self.rfc_writes)),
            ("oc_cycles_mem", Json::from(self.oc_cycles_mem)),
            ("oc_cycles_nonmem", Json::from(self.oc_cycles_nonmem)),
            ("exec_cycles_mem", Json::from(self.exec_cycles_mem)),
            ("exec_cycles_nonmem", Json::from(self.exec_cycles_nonmem)),
            ("insts_mem", Json::from(self.insts_mem)),
            ("insts_nonmem", Json::from(self.insts_nonmem)),
            (
                "mem",
                Json::obj([
                    ("loads", Json::from(self.mem.loads)),
                    ("stores", Json::from(self.mem.stores)),
                    ("transactions", Json::from(self.mem.transactions)),
                    ("l1_hits", Json::from(self.mem.l1.hits)),
                    ("l1_misses", Json::from(self.mem.l1.misses)),
                    ("l2_hits", Json::from(self.mem.l2.hits)),
                    ("l2_misses", Json::from(self.mem.l2.misses)),
                    ("dram_accesses", Json::from(self.mem.dram_accesses)),
                    ("dram_writebacks", Json::from(self.mem.dram_writebacks)),
                    ("total_latency", Json::from(self.mem.total_latency)),
                ]),
            ),
            ("stall_no_collector", Json::from(self.stall_no_collector)),
            ("stall_scoreboard", Json::from(self.stall_scoreboard)),
            ("retired_completions", Json::from(self.retired_completions)),
        ])
    }

    /// Decodes a counter block from the object [`SimStats::to_json`]
    /// writes. Strict: every counter field must be present, so a decoded
    /// block re-serializes byte-identically (the schema-v1 round-trip
    /// contract).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] naming the first missing or mistyped
    /// field.
    pub fn from_json(v: &Json) -> Result<SimStats, DecodeError> {
        let u64_arr = |key: &str| -> Result<Vec<u64>, DecodeError> {
            v.req_arr(key)?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .ok_or_else(|| DecodeError::new(format!("non-integer entry in `{key}`")))
                })
                .collect()
        };
        let write_dest_v = u64_arr("write_dest")?;
        let write_dest: [u64; 3] = write_dest_v
            .try_into()
            .map_err(|_| DecodeError::new("`write_dest` must have 3 entries"))?;
        let src_hist_v = u64_arr("src_count_hist")?;
        let src_count_hist: [u64; 4] = src_hist_v
            .try_into()
            .map_err(|_| DecodeError::new("`src_count_hist` must have 4 entries"))?;
        let rf = v.req("rf")?;
        let mem = v.req("mem")?;
        Ok(SimStats {
            cycles: v.req_u64("cycles")?,
            warp_instructions: v.req_u64("warp_instructions")?,
            thread_instructions: v.req_u64("thread_instructions")?,
            rf: RegFileStats {
                reads: rf.req_u64("reads").map_err(|e| e.context("rf"))?,
                writes: rf.req_u64("writes").map_err(|e| e.context("rf"))?,
                read_conflicts: rf.req_u64("read_conflicts").map_err(|e| e.context("rf"))?,
                write_queue_cycles: rf
                    .req_u64("write_queue_cycles")
                    .map_err(|e| e.context("rf"))?,
            },
            bypassed_reads: v.req_u64("bypassed_reads")?,
            boc_writes: v.req_u64("boc_writes")?,
            writes_total: v.req_u64("writes_total")?,
            rf_writes_routed: v.req_u64("rf_writes_routed")?,
            bypassed_writes: v.req_u64("bypassed_writes")?,
            write_dest,
            forced_evictions: v.req_u64("forced_evictions")?,
            src_count_hist,
            boc_occupancy_hist: u64_arr("boc_occupancy_hist")?,
            occupancy_samples: v.req_u64("occupancy_samples")?,
            rfc_reads: v.req_u64("rfc_reads")?,
            rfc_writes: v.req_u64("rfc_writes")?,
            oc_cycles_mem: v.req_u64("oc_cycles_mem")?,
            oc_cycles_nonmem: v.req_u64("oc_cycles_nonmem")?,
            exec_cycles_mem: v.req_u64("exec_cycles_mem")?,
            exec_cycles_nonmem: v.req_u64("exec_cycles_nonmem")?,
            insts_mem: v.req_u64("insts_mem")?,
            insts_nonmem: v.req_u64("insts_nonmem")?,
            mem: {
                let m = |key: &str| mem.req_u64(key).map_err(|e| e.context("mem"));
                bow_mem::MemStats {
                    loads: m("loads")?,
                    stores: m("stores")?,
                    transactions: m("transactions")?,
                    l1: bow_mem::CacheStats {
                        hits: m("l1_hits")?,
                        misses: m("l1_misses")?,
                    },
                    l2: bow_mem::CacheStats {
                        hits: m("l2_hits")?,
                        misses: m("l2_misses")?,
                    },
                    dram_accesses: m("dram_accesses")?,
                    dram_writebacks: m("dram_writebacks")?,
                    total_latency: m("total_latency")?,
                }
            },
            stall_no_collector: v.req_u64("stall_no_collector")?,
            stall_scoreboard: v.req_u64("stall_scoreboard")?,
            retired_completions: v.req_u64("retired_completions")?,
        })
    }

    /// A deterministic 64-bit digest of every counter in the block, used by
    /// the golden-fingerprint regression suite. FNV-1a over the fields in
    /// declaration order — integers only, so the digest is identical across
    /// debug/release builds and platforms. Any new counter must be folded in
    /// here (and the goldens re-blessed) to stay visible to the suite.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.cycles);
        fold(self.warp_instructions);
        fold(self.thread_instructions);
        fold(self.rf.reads);
        fold(self.rf.writes);
        fold(self.rf.read_conflicts);
        fold(self.rf.write_queue_cycles);
        fold(self.bypassed_reads);
        fold(self.boc_writes);
        fold(self.writes_total);
        fold(self.rf_writes_routed);
        fold(self.bypassed_writes);
        for v in self.write_dest {
            fold(v);
        }
        fold(self.forced_evictions);
        for v in self.src_count_hist {
            fold(v);
        }
        fold(self.boc_occupancy_hist.len() as u64);
        for &v in &self.boc_occupancy_hist {
            fold(v);
        }
        fold(self.occupancy_samples);
        fold(self.rfc_reads);
        fold(self.rfc_writes);
        fold(self.oc_cycles_mem);
        fold(self.oc_cycles_nonmem);
        fold(self.exec_cycles_mem);
        fold(self.exec_cycles_nonmem);
        fold(self.insts_mem);
        fold(self.insts_nonmem);
        fold(self.mem.loads);
        fold(self.mem.stores);
        fold(self.mem.transactions);
        fold(self.mem.l1.hits);
        fold(self.mem.l1.misses);
        fold(self.mem.l2.hits);
        fold(self.mem.l2.misses);
        fold(self.mem.dram_accesses);
        fold(self.mem.dram_writebacks);
        fold(self.mem.total_latency);
        fold(self.stall_no_collector);
        fold(self.stall_scoreboard);
        fold(self.retired_completions);
        h
    }

    /// Folds another SM's counters into this one. Cycle counts take the
    /// maximum (SMs run concurrently); everything else sums.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.warp_instructions += other.warp_instructions;
        self.thread_instructions += other.thread_instructions;
        self.rf.reads += other.rf.reads;
        self.rf.writes += other.rf.writes;
        self.rf.read_conflicts += other.rf.read_conflicts;
        self.rf.write_queue_cycles += other.rf.write_queue_cycles;
        self.bypassed_reads += other.bypassed_reads;
        self.boc_writes += other.boc_writes;
        self.writes_total += other.writes_total;
        self.rf_writes_routed += other.rf_writes_routed;
        self.bypassed_writes += other.bypassed_writes;
        for i in 0..3 {
            self.write_dest[i] += other.write_dest[i];
        }
        self.forced_evictions += other.forced_evictions;
        for i in 0..4 {
            self.src_count_hist[i] += other.src_count_hist[i];
        }
        if self.boc_occupancy_hist.len() < other.boc_occupancy_hist.len() {
            self.boc_occupancy_hist
                .resize(other.boc_occupancy_hist.len(), 0);
        }
        for (i, v) in other.boc_occupancy_hist.iter().enumerate() {
            self.boc_occupancy_hist[i] += v;
        }
        self.occupancy_samples += other.occupancy_samples;
        self.rfc_reads += other.rfc_reads;
        self.rfc_writes += other.rfc_writes;
        self.oc_cycles_mem += other.oc_cycles_mem;
        self.oc_cycles_nonmem += other.oc_cycles_nonmem;
        self.exec_cycles_mem += other.exec_cycles_mem;
        self.exec_cycles_nonmem += other.exec_cycles_nonmem;
        self.insts_mem += other.insts_mem;
        self.insts_nonmem += other.insts_nonmem;
        self.mem.loads += other.mem.loads;
        self.mem.stores += other.mem.stores;
        self.mem.transactions += other.mem.transactions;
        self.mem.l1.hits += other.mem.l1.hits;
        self.mem.l1.misses += other.mem.l1.misses;
        self.mem.l2.hits += other.mem.l2.hits;
        self.mem.l2.misses += other.mem.l2.misses;
        self.mem.dram_accesses += other.mem.dram_accesses;
        self.mem.dram_writebacks += other.mem.dram_writebacks;
        self.mem.total_latency += other.mem.total_latency;
        self.stall_no_collector += other.stall_no_collector;
        self.stall_scoreboard += other.stall_scoreboard;
        self.retired_completions += other.retired_completions;
    }
}

impl Probe for SimStats {
    #[inline]
    fn on_event(&mut self, ev: &PipeEvent<'_>) {
        self.apply(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_well_defined_on_empty_stats() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.read_bypass_rate(), 0.0);
        assert_eq!(s.write_bypass_rate(), 0.0);
    }

    #[test]
    fn bypass_rates() {
        let mut s = SimStats {
            bypassed_reads: 59,
            ..Default::default()
        };
        s.rf.reads = 41;
        assert!((s.read_bypass_rate() - 0.59).abs() < 1e-12);
        s.writes_total = 100;
        s.bypassed_writes = 52;
        assert!((s.write_bypass_rate() - 0.52).abs() < 1e-12);
    }

    #[test]
    fn occupancy_sampling_saturates() {
        let mut s = SimStats::default();
        s.sample_occupancy(2, 12);
        s.sample_occupancy(30, 12);
        assert_eq!(s.boc_occupancy_hist[2], 1);
        assert_eq!(s.boc_occupancy_hist[12], 1);
        assert_eq!(s.occupancy_samples, 2);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SimStats {
            cycles: 10,
            warp_instructions: 5,
            ..Default::default()
        };
        let b = SimStats {
            cycles: 20,
            warp_instructions: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.warp_instructions, 12);
    }

    #[test]
    fn fingerprint_is_sensitive_and_stable() {
        let a = SimStats::default();
        assert_eq!(a.fingerprint(), SimStats::default().fingerprint());
        let b = SimStats {
            retired_completions: 1,
            ..Default::default()
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = SimStats {
            boc_occupancy_hist: vec![0, 0],
            ..Default::default()
        };
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "histogram length is part of the digest"
        );
    }

    #[test]
    fn access_counts_map_straight_through() {
        let mut s = SimStats::default();
        s.rf.reads = 3;
        s.rf.writes = 4;
        s.bypassed_reads = 5;
        s.boc_writes = 6;
        let c = s.access_counts();
        assert_eq!(c.rf_reads, 3);
        assert_eq!(c.rf_writes, 4);
        assert_eq!(c.boc_reads, 5);
        assert_eq!(c.boc_writes, 6);
    }
}
