//! Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

use crate::config::SchedPolicy;

/// One of the SM's warp schedulers (Table II: four per SM, each owning the
/// warps with `warp_id % 4 == scheduler_id`).
#[derive(Clone, Debug)]
pub struct WarpScheduler {
    policy: SchedPolicy,
    /// GTO: the warp currently held greedily.
    greedy: Option<usize>,
    /// LRR: last position served, for rotation.
    rr_last: usize,
}

impl WarpScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: SchedPolicy) -> WarpScheduler {
        WarpScheduler {
            policy,
            greedy: None,
            rr_last: 0,
        }
    }

    /// Picks the next warp to issue from `ready` (warp ids, any order).
    /// `age` gives each warp's assignment age — smaller is older.
    ///
    /// Returns `None` when no warp is ready.
    pub fn pick(&mut self, ready: &[usize], age: impl Fn(usize) -> u64) -> Option<usize> {
        if ready.is_empty() {
            if self.policy == SchedPolicy::Gto {
                self.greedy = None;
            }
            return None;
        }
        let choice = match self.policy {
            SchedPolicy::Gto => match self.greedy {
                Some(g) if ready.contains(&g) => g,
                _ => *ready.iter().min_by_key(|&&w| age(w)).expect("nonempty"),
            },
            SchedPolicy::Lrr => {
                let mut sorted: Vec<usize> = ready.to_vec();
                sorted.sort_unstable();
                *sorted
                    .iter()
                    .find(|&&w| w > self.rr_last)
                    .unwrap_or(&sorted[0])
            }
        };
        match self.policy {
            SchedPolicy::Gto => self.greedy = Some(choice),
            SchedPolicy::Lrr => self.rr_last = choice,
        }
        Some(choice)
    }

    /// Tells the scheduler its greedy warp stalled, releasing the hold.
    pub fn stalled(&mut self, warp: usize) {
        if self.greedy == Some(warp) {
            self.greedy = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_sticks_to_the_same_warp() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| w as u64;
        assert_eq!(s.pick(&[2, 0, 4], age), Some(0), "oldest first");
        assert_eq!(s.pick(&[2, 0, 4], age), Some(0), "greedy repeat");
        assert_eq!(s.pick(&[2, 4], age), Some(2), "falls back to oldest ready");
        assert_eq!(
            s.pick(&[2, 0, 4], age),
            Some(2),
            "greedy follows the switch"
        );
    }

    #[test]
    fn gto_respects_age_not_id() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        // Warp 4 is older than warp 0.
        let age = |w: usize| if w == 4 { 0 } else { 10 };
        assert_eq!(s.pick(&[0, 4], age), Some(4));
    }

    #[test]
    fn gto_stall_releases_greedy_hold() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| w as u64;
        assert_eq!(s.pick(&[0, 2], age), Some(0));
        s.stalled(0);
        assert_eq!(s.pick(&[0, 2], age), Some(0), "0 is still oldest");
    }

    #[test]
    fn lrr_rotates() {
        let mut s = WarpScheduler::new(SchedPolicy::Lrr);
        let age = |_: usize| 0;
        assert_eq!(
            s.pick(&[0, 2, 4], age),
            Some(2),
            "first id above rr_last = 0"
        );
        assert_eq!(s.pick(&[0, 2, 4], age), Some(4));
        assert_eq!(s.pick(&[0, 2, 4], age), Some(0), "wraps around");
    }

    #[test]
    fn empty_ready_returns_none() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        assert_eq!(s.pick(&[], |_| 0), None);
    }

    #[test]
    fn gto_selection_is_greedy_then_oldest_through_a_full_sequence() {
        // The documented order: hold the current warp while it stays
        // ready; on loss, fall back to the oldest ready warp (by age,
        // ties broken by the min scan hitting the smallest age value),
        // then hold *that* one.
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| [30u64, 20, 10, 40][w];
        assert_eq!(s.pick(&[0, 1, 2, 3], age), Some(2), "oldest (age 10)");
        assert_eq!(s.pick(&[3, 2, 1], age), Some(2), "held while ready");
        assert_eq!(s.pick(&[0, 1, 3], age), Some(1), "next oldest (age 20)");
        assert_eq!(s.pick(&[1, 3], age), Some(1), "new hold sticks");
        assert_eq!(s.pick(&[3], age), Some(3), "last warp standing");
    }

    #[test]
    fn gto_starvation_is_bounded_by_greedy_release() {
        // GTO's starvation bound: a warp is only ever held while it makes
        // progress, and when the hold breaks the *oldest* waiter is
        // served next. Model warps that each need 3 issues to finish:
        // every warp must complete within warps x 3 total picks, and the
        // completion order must follow age order.
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| [40u64, 10, 30, 20][w];
        let mut remaining = [3u32; 4];
        let mut finished = Vec::new();
        for _ in 0..12 {
            let ready: Vec<usize> = (0..4).filter(|&w| remaining[w] > 0).collect();
            if ready.is_empty() {
                break;
            }
            let picked = s.pick(&ready, age).expect("unfinished warps are ready");
            remaining[picked] -= 1;
            if remaining[picked] == 0 {
                finished.push(picked);
            }
        }
        assert_eq!(
            finished,
            vec![1, 3, 2, 0],
            "warps must finish in age order, none starved past 12 picks"
        );
    }

    #[test]
    fn all_warps_stalled_clears_the_hold_and_recovers_by_age() {
        // When every warp stalls (empty ready set), pick returns None and
        // drops the greedy hold — so the next cycle re-selects by age
        // instead of resuming a stale favourite.
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| [5u64, 1, 9][w];
        assert_eq!(s.pick(&[0, 2], age), Some(0), "oldest of the ready pair");
        assert_eq!(s.pick(&[0, 2], age), Some(0), "held");
        assert_eq!(s.pick(&[], age), None, "all warps stalled");
        assert_eq!(
            s.pick(&[0, 1, 2], age),
            Some(1),
            "hold cleared: the overall-oldest warp wins, not the old hold"
        );
    }

    #[test]
    fn lrr_starvation_is_bounded_by_rotation() {
        // Round-robin serves every persistently ready warp within one
        // full rotation, whatever their ages.
        let mut s = WarpScheduler::new(SchedPolicy::Lrr);
        let age = |_: usize| 0;
        let ready = [1usize, 3, 5, 7];
        let mut seen = [false; 8];
        for _ in 0..ready.len() {
            seen[s.pick(&ready, age).unwrap()] = true;
        }
        for w in ready {
            assert!(seen[w], "warp {w} starved within one rotation");
        }
    }
}
