//! Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

use crate::config::SchedPolicy;

/// One of the SM's warp schedulers (Table II: four per SM, each owning the
/// warps with `warp_id % 4 == scheduler_id`).
#[derive(Clone, Debug)]
pub struct WarpScheduler {
    policy: SchedPolicy,
    /// GTO: the warp currently held greedily.
    greedy: Option<usize>,
    /// LRR: last position served, for rotation.
    rr_last: usize,
}

impl WarpScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: SchedPolicy) -> WarpScheduler {
        WarpScheduler {
            policy,
            greedy: None,
            rr_last: 0,
        }
    }

    /// Picks the next warp to issue from `ready` (warp ids, any order).
    /// `age` gives each warp's assignment age — smaller is older.
    ///
    /// Returns `None` when no warp is ready.
    pub fn pick(&mut self, ready: &[usize], age: impl Fn(usize) -> u64) -> Option<usize> {
        if ready.is_empty() {
            if self.policy == SchedPolicy::Gto {
                self.greedy = None;
            }
            return None;
        }
        let choice = match self.policy {
            SchedPolicy::Gto => match self.greedy {
                Some(g) if ready.contains(&g) => g,
                _ => *ready.iter().min_by_key(|&&w| age(w)).expect("nonempty"),
            },
            SchedPolicy::Lrr => {
                let mut sorted: Vec<usize> = ready.to_vec();
                sorted.sort_unstable();
                *sorted
                    .iter()
                    .find(|&&w| w > self.rr_last)
                    .unwrap_or(&sorted[0])
            }
        };
        match self.policy {
            SchedPolicy::Gto => self.greedy = Some(choice),
            SchedPolicy::Lrr => self.rr_last = choice,
        }
        Some(choice)
    }

    /// Tells the scheduler its greedy warp stalled, releasing the hold.
    pub fn stalled(&mut self, warp: usize) {
        if self.greedy == Some(warp) {
            self.greedy = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_sticks_to_the_same_warp() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| w as u64;
        assert_eq!(s.pick(&[2, 0, 4], age), Some(0), "oldest first");
        assert_eq!(s.pick(&[2, 0, 4], age), Some(0), "greedy repeat");
        assert_eq!(s.pick(&[2, 4], age), Some(2), "falls back to oldest ready");
        assert_eq!(
            s.pick(&[2, 0, 4], age),
            Some(2),
            "greedy follows the switch"
        );
    }

    #[test]
    fn gto_respects_age_not_id() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        // Warp 4 is older than warp 0.
        let age = |w: usize| if w == 4 { 0 } else { 10 };
        assert_eq!(s.pick(&[0, 4], age), Some(4));
    }

    #[test]
    fn gto_stall_releases_greedy_hold() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        let age = |w: usize| w as u64;
        assert_eq!(s.pick(&[0, 2], age), Some(0));
        s.stalled(0);
        assert_eq!(s.pick(&[0, 2], age), Some(0), "0 is still oldest");
    }

    #[test]
    fn lrr_rotates() {
        let mut s = WarpScheduler::new(SchedPolicy::Lrr);
        let age = |_: usize| 0;
        assert_eq!(
            s.pick(&[0, 2, 4], age),
            Some(2),
            "first id above rr_last = 0"
        );
        assert_eq!(s.pick(&[0, 2, 4], age), Some(4));
        assert_eq!(s.pick(&[0, 2, 4], age), Some(0), "wraps around");
    }

    #[test]
    fn empty_ready_returns_none() {
        let mut s = WarpScheduler::new(SchedPolicy::Gto);
        assert_eq!(s.pick(&[], |_| 0), None);
    }
}
