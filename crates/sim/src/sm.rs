//! The streaming multiprocessor: a thin shell over a pluggable core.
//!
//! `Sm` owns the shared machine state ([`SmCtx`]) and a
//! [`CorePipeline`] — the core model `GpuConfig::core_model` selects.
//! The Pascal core is the paper's four-stage scoreboarded pipeline
//! (writeback → collect → dispatch → issue over the [`Latches`]
//! discipline); the modern core is the post-Volta sub-core organization.
//! All instrumentation (statistics, pipeline tracing, the bypass
//! analyzer) flows through the probe bus: [`Sm::tick`] is generic over
//! [`Probe`], and launching with [`NullProbe`](crate::probe::NullProbe)
//! monomorphizes an instrumentation-free pipeline.
//!
//! [`Latches`]: crate::stage::Latches

use crate::collector::OperandStage;
use crate::config::{CoreModelKind, GpuConfig};
use crate::core::CorePipeline;
use crate::probe::Probe;
use crate::regfile::RegFile;
use crate::scoreboard::Scoreboard;
use crate::stage::{BlockCtx, SmCtx};
use crate::stats::SimStats;
use crate::warp::Warp;
use bow_isa::{Kernel, WARP_SIZE};
use bow_mem::{GlobalAccess, MemSystem, SharedMemory};

/// One streaming multiprocessor.
pub struct Sm {
    ctx: SmCtx,
    core: CorePipeline,
}

impl Sm {
    /// Creates an idle SM.
    pub fn new(id: usize, config: &GpuConfig) -> Sm {
        let max_warps = config.max_warps_per_sm as usize;
        Sm {
            ctx: SmCtx {
                id,
                config: config.clone(),
                cycle: 0,
                warps: (0..max_warps).map(|_| None).collect(),
                scoreboards: (0..max_warps).map(|_| Scoreboard::new()).collect(),
                warp_age: vec![0; max_warps],
                age_counter: 0,
                blocks: (0..config.max_blocks_per_sm as usize)
                    .map(|_| None)
                    .collect(),
                oc: OperandStage::new(
                    config.collector,
                    max_warps,
                    config.num_ocus as usize,
                    u64::from(config.rf_read_latency),
                    config.xbar_width,
                ),
                rf: Self::build_rf(config, max_warps),
                mem: MemSystem::new(config.mem),
                params: Vec::new(),
                stats: SimStats::default(),
            },
            core: CorePipeline::new(config),
        }
    }

    /// The SM index.
    pub fn id(&self) -> usize {
        self.ctx.id
    }

    fn build_rf(config: &GpuConfig, warp_slots: usize) -> RegFile {
        // The modern core gives each sub-core a private bank group when
        // the bank count splits evenly over the schedulers; Pascal keeps
        // the flat SM-wide mapping.
        let banks = config.rf_banks as usize;
        let groups = match config.core_model {
            CoreModelKind::Modern => {
                let nsub = config.schedulers_per_sm.max(1) as usize;
                if banks.is_multiple_of(nsub) {
                    nsub
                } else {
                    1
                }
            }
            CoreModelKind::Pascal => 1,
        };
        let mut rf = RegFile::new_clustered(banks, groups);
        if config.shadow_rf {
            rf.enable_shadow(warp_slots);
        }
        rf
    }

    /// Prepares the SM for a new launch: caches flush and all statistics
    /// restart so each launch reports only its own work.
    pub fn reset_for_launch(&mut self, params: &[u32]) {
        assert!(!self.busy(), "reset_for_launch on a busy SM");
        let ctx = &mut self.ctx;
        ctx.params = params.to_vec();
        ctx.mem = MemSystem::new(ctx.config.mem);
        ctx.rf = Self::build_rf(&ctx.config, ctx.warps.len());
        ctx.oc = OperandStage::new(
            ctx.config.collector,
            ctx.warps.len(),
            ctx.config.num_ocus as usize,
            u64::from(ctx.config.rf_read_latency),
            ctx.config.xbar_width,
        );
        ctx.stats = SimStats::default();
        ctx.cycle = 0;
        self.core.reset_for_launch(&mut self.ctx);
    }

    /// Whether any block or instruction is still in flight.
    pub fn busy(&self) -> bool {
        self.ctx.blocks.iter().any(Option::is_some) || !self.core.pipeline_empty()
    }

    /// Number of additional blocks this SM can host for `kernel`.
    pub fn can_host_block(&self, kernel: &Kernel, warps_needed: u32) -> bool {
        let (free_blocks, free_warps) = self.free_capacity();
        let _ = kernel;
        free_blocks > 0 && free_warps >= warps_needed
    }

    /// `(free block slots, free warp slots)` — the dispatch capacity the
    /// parallel engine's coordinator models when it hands out blocks at a
    /// synchronization point. Must mirror
    /// [`can_host_block`](Self::can_host_block) exactly.
    pub(crate) fn free_capacity(&self) -> (u32, u32) {
        let free_blocks = self.ctx.blocks.iter().filter(|b| b.is_none()).count() as u32;
        let free_warps = self.ctx.warps.iter().filter(|w| w.is_none()).count() as u32;
        (free_blocks, free_warps)
    }

    /// Installs a block on the SM.
    ///
    /// # Panics
    ///
    /// Panics if capacity was not checked with
    /// [`can_host_block`](Self::can_host_block).
    pub fn assign_block(
        &mut self,
        kernel: &Kernel,
        ctaid: (u32, u32),
        dims: bow_isa::KernelDims,
        block_index: u64,
    ) {
        let threads = dims.threads_per_block();
        let warps = dims.warps_per_block();
        let (slot, warp_slots) = {
            let ctx = &mut self.ctx;
            let slot = ctx
                .blocks
                .iter()
                .position(Option::is_none)
                .expect("assign_block without free block slot");
            let mut warp_slots = Vec::with_capacity(warps as usize);
            for w in 0..warps {
                let wslot = ctx
                    .warps
                    .iter()
                    .position(Option::is_none)
                    .expect("assign_block without free warp slots");
                let lanes = (threads - w * WARP_SIZE as u32).min(WARP_SIZE as u32);
                let mut warp = Warp::new(wslot, slot, w, lanes, kernel.num_regs);
                warp.barrier_mode = kernel.uses_convergence_barriers();
                ctx.warps[wslot] = Some(warp);
                ctx.rf.shadow_reset_warp(wslot);
                ctx.scoreboards[wslot] = Scoreboard::new();
                ctx.warp_age[wslot] = ctx.age_counter;
                ctx.age_counter += 1;
                warp_slots.push(wslot);
            }
            (slot, warp_slots)
        };
        self.core.on_warps_assigned(&warp_slots);
        self.ctx.blocks[slot] = Some(BlockCtx {
            shared: SharedMemory::new(kernel.shared_bytes),
            info: crate::exec::BlockInfo {
                ctaid,
                ntid: dims.block,
                nctaid: dims.grid,
            },
            warp_slots,
            warps_done: 0,
            base_uid: block_index * u64::from(warps),
        });
    }

    /// Accumulated statistics (memory counters folded in).
    pub fn stats(&self) -> SimStats {
        let mut s = self.ctx.stats.clone();
        s.rf = self.ctx.rf.stats();
        s.mem = self.ctx.mem.stats();
        s
    }

    /// Advances the SM by one cycle, emitting all pipeline events to
    /// `probe` (statistics accumulate regardless of the probe). Generic
    /// over the device-memory view: the serial engine ticks against the
    /// bare [`GlobalMemory`](bow_mem::GlobalMemory), the windowed
    /// parallel engine against this SM's
    /// [`WindowedGlobal`](bow_mem::WindowedGlobal) overlay.
    pub fn tick<P: Probe, G: GlobalAccess>(
        &mut self,
        kernel: &Kernel,
        global: &mut G,
        probe: &mut P,
    ) {
        let ctx = &mut self.ctx;
        ctx.cycle += 1;
        ctx.stats.cycles = ctx.cycle;
        self.core.tick(ctx, kernel, global, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;
    use crate::trace::BypassAnalyzer;
    use bow_isa::{KernelBuilder, KernelDims, Operand, Pred, Reg, Special};
    use bow_mem::GlobalMemory;

    fn run_kernel(kind: CollectorKind, kernel: &Kernel, global: &mut GlobalMemory) -> SimStats {
        let config = GpuConfig::scaled(kind);
        let mut sm = Sm::new(0, &config);
        sm.reset_for_launch(&[0x1000]);
        let dims = KernelDims::linear(1, 32);
        sm.assign_block(kernel, (0, 0), dims, 0);
        let mut an = BypassAnalyzer::new(&[]);
        let mut guard = 0;
        while sm.busy() {
            sm.tick(kernel, global, &mut an);
            guard += 1;
            assert!(guard < 1_000_000, "kernel did not terminate");
        }
        sm.stats()
    }

    fn store_iota() -> Kernel {
        let r = Reg::r;
        KernelBuilder::new("iota")
            .s2r(r(0), Special::TidX)
            .ldc(r(1), 0)
            .shl(r(2), r(0).into(), Operand::Imm(2))
            .iadd(r(1), r(1).into(), r(2).into())
            .stg(r(1), 0, r(0).into())
            .exit()
            .build()
            .unwrap()
    }

    #[test]
    fn baseline_runs_and_produces_correct_memory() {
        let mut g = GlobalMemory::new();
        let st = run_kernel(CollectorKind::Baseline, &store_iota(), &mut g);
        for i in 0..32u64 {
            assert_eq!(g.read_u32(0x1000 + 4 * i), i as u32);
        }
        assert_eq!(st.warp_instructions, 6);
        assert!(st.cycles > 0);
        assert!(st.rf.reads > 0);
    }

    #[test]
    fn all_collectors_produce_identical_memory() {
        let kernel = store_iota();
        let mut fps = Vec::new();
        for kind in [
            CollectorKind::Baseline,
            CollectorKind::bow(3),
            CollectorKind::bow_wr(3),
            CollectorKind::BowWr {
                window: 3,
                half_size: true,
            },
            CollectorKind::rfc6(),
        ] {
            let mut g = GlobalMemory::new();
            run_kernel(kind, &kernel, &mut g);
            fps.push(g.fingerprint());
        }
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "state diverged: {fps:?}"
        );
    }

    #[test]
    fn bow_bypasses_reads_baseline_does_not() {
        let kernel = store_iota();
        let mut g1 = GlobalMemory::new();
        let base = run_kernel(CollectorKind::Baseline, &kernel, &mut g1);
        let mut g2 = GlobalMemory::new();
        let bow = run_kernel(CollectorKind::bow(3), &kernel, &mut g2);
        assert_eq!(base.bypassed_reads, 0);
        assert!(bow.bypassed_reads > 0, "r1/r2/r0 reuse must bypass");
        assert!(bow.rf.reads < base.rf.reads);
    }

    #[test]
    fn bow_wr_reduces_rf_writes() {
        // A register overwritten repeatedly within the window.
        let r = Reg::r;
        let kernel = KernelBuilder::new("overwrite")
            .mov_imm(r(0), 1)
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .ldc(r(1), 0)
            .stg(r(1), 0, r(0).into())
            .exit()
            .build()
            .unwrap();
        let mut g1 = GlobalMemory::new();
        let base = run_kernel(CollectorKind::Baseline, &kernel, &mut g1);
        let mut g2 = GlobalMemory::new();
        let wr = run_kernel(CollectorKind::bow_wr(3), &kernel, &mut g2);
        assert_eq!(g2.read_u32(0x1000), 3);
        assert!(
            wr.rf.writes < base.rf.writes,
            "{} !< {}",
            wr.rf.writes,
            base.rf.writes
        );
        assert!(wr.bypassed_writes >= 2);
    }

    #[test]
    fn divergent_kernel_reconverges_and_matches() {
        // if (tid < 16) r1 = 5 else r1 = 9; store r1.
        let r = Reg::r;
        let kernel = KernelBuilder::new("diverge")
            .s2r(r(0), Special::TidX)
            .isetp(
                bow_isa::CmpOp::Lt,
                Pred::p(0),
                r(0).into(),
                Operand::Imm(16),
            )
            .ssy("join")
            .bra_if(Pred::p(0), false, "then")
            .mov_imm(r(1), 9)
            .bra("join")
            .label("then")
            .mov_imm(r(1), 5)
            .label("join")
            .sync()
            .ldc(r(2), 0)
            .shl(r(3), r(0).into(), Operand::Imm(2))
            .iadd(r(2), r(2).into(), r(3).into())
            .stg(r(2), 0, r(1).into())
            .exit()
            .build()
            .unwrap();
        for kind in [CollectorKind::Baseline, CollectorKind::bow_wr(3)] {
            let mut g = GlobalMemory::new();
            run_kernel(kind, &kernel, &mut g);
            for i in 0..32u64 {
                let expect = if i < 16 { 5 } else { 9 };
                assert_eq!(
                    g.read_u32(0x1000 + 4 * i),
                    expect,
                    "lane {i} under {kind:?}"
                );
            }
        }
    }

    #[test]
    fn loop_kernel_terminates_with_correct_sum() {
        // r0 = sum(0..10); store.
        let r = Reg::r;
        let kernel = KernelBuilder::new("loop")
            .mov_imm(r(0), 0)
            .mov_imm(r(1), 0)
            .label("top")
            .iadd(r(0), r(0).into(), r(1).into())
            .iadd(r(1), r(1).into(), Operand::Imm(1))
            .isetp(
                bow_isa::CmpOp::Lt,
                Pred::p(0),
                r(1).into(),
                Operand::Imm(10),
            )
            .bra_if(Pred::p(0), false, "top")
            .ldc(r(2), 0)
            .stg(r(2), 0, r(0).into())
            .exit()
            .build()
            .unwrap();
        let mut g = GlobalMemory::new();
        run_kernel(CollectorKind::bow_wr(3), &kernel, &mut g);
        assert_eq!(g.read_u32(0x1000), 45);
    }

    #[test]
    fn barrier_synchronizes_shared_memory() {
        // Warp 0 writes smem[tid], both warps read smem[tid^32 ... ] — use
        // two warps: each thread stores tid to smem, barrier, loads
        // neighbour warp's value.
        let r = Reg::r;
        let kernel = KernelBuilder::new("bar")
            .shared_bytes(256)
            .s2r(r(0), Special::TidX)
            .shl(r(1), r(0).into(), Operand::Imm(2))
            .sts(r(1), 0, r(0).into())
            .bar()
            .xor(r(2), r(1).into(), Operand::Imm(128)) // partner word
            .lds(r(3), r(2), 0)
            .ldc(r(4), 0)
            .iadd(r(4), r(4).into(), r(1).into())
            .stg(r(4), 0, r(3).into())
            .exit()
            .build()
            .unwrap();
        let config = GpuConfig::scaled(CollectorKind::bow_wr(3));
        let mut sm = Sm::new(0, &config);
        sm.reset_for_launch(&[0x2000]);
        let dims = KernelDims::linear(1, 64);
        sm.assign_block(&kernel, (0, 0), dims, 0);
        let mut g = GlobalMemory::new();
        let mut an = BypassAnalyzer::new(&[]);
        let mut guard = 0;
        while sm.busy() {
            sm.tick(&kernel, &mut g, &mut an);
            guard += 1;
            assert!(guard < 1_000_000);
        }
        for i in 0..64u64 {
            assert_eq!(g.read_u32(0x2000 + 4 * i), (i as u32) ^ 32, "thread {i}");
        }
    }

    #[test]
    fn oc_residency_is_tracked() {
        let mut g = GlobalMemory::new();
        let st = run_kernel(CollectorKind::Baseline, &store_iota(), &mut g);
        assert!(st.oc_cycles() > 0);
        assert!(st.insts_mem >= 2, "ldc + stg");
        assert!(st.insts_nonmem >= 3);
    }

    #[test]
    fn null_probe_tick_matches_instrumented_tick() {
        let kernel = store_iota();
        let config = GpuConfig::scaled(CollectorKind::bow_wr(3));
        let run = |probe_on: bool| {
            let mut sm = Sm::new(0, &config);
            sm.reset_for_launch(&[0x1000]);
            sm.assign_block(&kernel, (0, 0), KernelDims::linear(1, 32), 0);
            let mut g = GlobalMemory::new();
            let mut trace = crate::pipetrace::PipeTrace::new();
            while sm.busy() {
                if probe_on {
                    sm.tick(&kernel, &mut g, &mut trace);
                } else {
                    sm.tick(&kernel, &mut g, &mut crate::probe::NullProbe);
                }
            }
            (sm.stats(), trace.len())
        };
        let (instrumented, events) = run(true);
        let (bare, none) = run(false);
        assert_eq!(instrumented, bare, "probe must not perturb the model");
        assert!(events > 0, "trace subscriber saw the pipeline");
        assert_eq!(none, 0);
    }
}
