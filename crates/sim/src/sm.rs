//! The streaming-multiprocessor pipeline: issue → operand collection →
//! execute → writeback, with resident-block and barrier management.

use crate::collector::OperandStage;
use crate::config::GpuConfig;
use crate::exec::{self, BlockInfo, ControlOutcome, ExecCtx, Space};
use crate::pipetrace::{Event, PipeTrace, Stage};
use crate::regfile::RegFile;
use crate::scheduler::WarpScheduler;
use crate::scoreboard::Scoreboard;
use crate::stats::SimStats;
use crate::trace::BypassAnalyzer;
use crate::warp::Warp;
use bow_isa::{FuClass, Kernel, Pred, Reg, WritebackHint, WARP_SIZE};
use bow_mem::{bank_conflict_degree, AccessKind, GlobalMemory, MemSystem, SharedMemory};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A thread block resident on the SM.
#[derive(Debug)]
struct BlockCtx {
    shared: SharedMemory,
    info: BlockInfo,
    /// Warp slots belonging to this block.
    warp_slots: Vec<usize>,
    warps_done: usize,
    /// Unique id of the block's first warp (for the bypass analyzer).
    base_uid: u64,
}

/// A completed instruction waiting for its writeback moment.
#[derive(Debug, PartialEq, Eq)]
struct Completion {
    time: u64,
    ord: u64,
    warp: usize,
    pc: usize,
    dst_reg: Option<Reg>,
    dst_pred: Option<Pred>,
    hint: WritebackHint,
    seq: u64,
    issue_cycle: u64,
    is_mem: bool,
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.ord).cmp(&(other.time, other.ord))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One streaming multiprocessor.
pub struct Sm {
    id: usize,
    config: GpuConfig,
    warps: Vec<Option<Warp>>,
    scoreboards: Vec<Scoreboard>,
    warp_age: Vec<u64>,
    age_counter: u64,
    blocks: Vec<Option<BlockCtx>>,
    stage: OperandStage,
    rf: RegFile,
    schedulers: Vec<WarpScheduler>,
    mem: MemSystem,
    pending: BinaryHeap<Reverse<Completion>>,
    event_ord: u64,
    cycle: u64,
    stats: SimStats,
    /// The kernel's parameter words for the current launch.
    params: Vec<u32>,
    /// Optional pipeline-event log (config `trace_pipeline`).
    trace: Option<PipeTrace>,
}

impl Sm {
    /// Creates an idle SM.
    pub fn new(id: usize, config: &GpuConfig) -> Sm {
        let max_warps = config.max_warps_per_sm as usize;
        Sm {
            id,
            config: config.clone(),
            warps: (0..max_warps).map(|_| None).collect(),
            scoreboards: (0..max_warps).map(|_| Scoreboard::new()).collect(),
            warp_age: vec![0; max_warps],
            age_counter: 0,
            blocks: (0..config.max_blocks_per_sm as usize)
                .map(|_| None)
                .collect(),
            stage: OperandStage::new(
                config.collector,
                max_warps,
                config.num_ocus as usize,
                u64::from(config.rf_read_latency),
                config.xbar_width,
            ),
            rf: RegFile::new(config.rf_banks as usize),
            schedulers: (0..config.schedulers_per_sm)
                .map(|_| WarpScheduler::new(config.sched))
                .collect(),
            mem: MemSystem::new(config.mem),
            pending: BinaryHeap::new(),
            event_ord: 0,
            cycle: 0,
            stats: SimStats::default(),
            params: Vec::new(),
            trace: config.trace_pipeline.then(PipeTrace::new),
        }
    }

    /// Takes this SM's pipeline trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<PipeTrace> {
        self.trace.take().inspect(|_| {
            self.trace = Some(PipeTrace::new());
        })
    }

    fn record(
        &mut self,
        warp: usize,
        pc: usize,
        seq: u64,
        stage: Stage,
        detail: u64,
        text: &dyn Fn() -> String,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(Event {
                cycle: self.cycle,
                sm: self.id,
                warp,
                pc,
                seq,
                stage,
                detail,
                text: text(),
            });
        }
    }

    /// The SM index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Prepares the SM for a new launch: caches flush and all statistics
    /// restart so each launch reports only its own work.
    pub fn reset_for_launch(&mut self, params: &[u32]) {
        assert!(!self.busy(), "reset_for_launch on a busy SM");
        self.params = params.to_vec();
        self.mem = MemSystem::new(self.config.mem);
        self.rf = RegFile::new(self.config.rf_banks as usize);
        self.stage = OperandStage::new(
            self.config.collector,
            self.warps.len(),
            self.config.num_ocus as usize,
            u64::from(self.config.rf_read_latency),
            self.config.xbar_width,
        );
        self.stats = SimStats::default();
        self.cycle = 0;
    }

    /// Whether any block or instruction is still in flight.
    pub fn busy(&self) -> bool {
        self.blocks.iter().any(Option::is_some) || !self.pending.is_empty()
    }

    /// Number of additional blocks this SM can host for `kernel`.
    pub fn can_host_block(&self, kernel: &Kernel, warps_needed: u32) -> bool {
        let free_block = self.blocks.iter().any(Option::is_none);
        let free_warps = self.warps.iter().filter(|w| w.is_none()).count();
        let _ = kernel;
        free_block && free_warps >= warps_needed as usize
    }

    /// Installs a block on the SM.
    ///
    /// # Panics
    ///
    /// Panics if capacity was not checked with
    /// [`can_host_block`](Self::can_host_block).
    pub fn assign_block(
        &mut self,
        kernel: &Kernel,
        ctaid: (u32, u32),
        dims: bow_isa::KernelDims,
        block_index: u64,
    ) {
        let slot = self
            .blocks
            .iter()
            .position(Option::is_none)
            .expect("assign_block without free block slot");
        let threads = dims.threads_per_block();
        let warps = dims.warps_per_block();
        let mut warp_slots = Vec::with_capacity(warps as usize);
        for w in 0..warps {
            let wslot = self
                .warps
                .iter()
                .position(Option::is_none)
                .expect("assign_block without free warp slots");
            let lanes = (threads - w * WARP_SIZE as u32).min(WARP_SIZE as u32);
            self.warps[wslot] = Some(Warp::new(wslot, slot, w, lanes, kernel.num_regs));
            self.scoreboards[wslot] = Scoreboard::new();
            self.warp_age[wslot] = self.age_counter;
            self.age_counter += 1;
            warp_slots.push(wslot);
        }
        self.blocks[slot] = Some(BlockCtx {
            shared: SharedMemory::new(kernel.shared_bytes),
            info: BlockInfo {
                ctaid,
                ntid: dims.block,
                nctaid: dims.grid,
            },
            warp_slots,
            warps_done: 0,
            base_uid: block_index * u64::from(warps),
        });
    }

    /// Accumulated statistics (memory counters folded in).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.rf = self.rf.stats();
        s.mem = self.mem.stats();
        s
    }

    /// Advances the SM by one cycle.
    pub fn tick(
        &mut self,
        kernel: &Kernel,
        global: &mut GlobalMemory,
        analyzer: &mut BypassAnalyzer,
    ) {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.rf.begin_cycle();
        self.writeback_stage();
        self.stage
            .collect(self.cycle, &mut self.rf, &mut self.stats);
        self.dispatch_stage(global);
        self.issue_stage(kernel, analyzer);
        self.stage.sample_occupancy(&mut self.stats);
    }

    // ----- writeback -----

    fn writeback_stage(&mut self) {
        while let Some(Reverse(top)) = self.pending.peek() {
            if top.time > self.cycle {
                break;
            }
            let c = self.pending.pop().expect("peeked").0;
            let span = self.cycle - c.issue_cycle;
            if c.is_mem {
                self.stats.exec_cycles_mem += span;
            } else {
                self.stats.exec_cycles_nonmem += span;
            }
            let Some(warp) = self.warps[c.warp].as_mut() else {
                debug_assert!(false, "completion for retired warp");
                continue;
            };
            warp.inflight -= 1;
            let current_seq = warp.seq;
            self.record(c.warp, c.pc, c.seq, Stage::Writeback, 0, &|| String::new());
            if let Some(reg) = c.dst_reg {
                self.stage.writeback(
                    c.warp,
                    reg,
                    c.seq,
                    c.hint,
                    current_seq,
                    &mut self.rf,
                    &mut self.stats,
                );
                self.scoreboards[c.warp].writeback_reg(reg);
            }
            if let Some(p) = c.dst_pred {
                self.scoreboards[c.warp].writeback_pred(p);
            }
            if self.warps[c.warp]
                .as_ref()
                .is_some_and(|w| w.done && w.inflight == 0)
            {
                self.finalize_warp(c.warp);
            }
        }
    }

    fn finalize_warp(&mut self, wslot: usize) {
        self.stage.flush_warp(wslot, &mut self.rf, &mut self.stats);
        let warp = self.warps[wslot].take().expect("finalize live warp");
        let bslot = warp.block_slot;
        let block = self.blocks[bslot].as_mut().expect("warp's block resident");
        block.warps_done += 1;
        if block.warps_done == block.warp_slots.len() {
            self.blocks[bslot] = None;
        }
    }

    // ----- dispatch / execute -----

    fn dispatch_stage(&mut self, global: &mut GlobalMemory) {
        let mut budget = [
            self.config.fu_width(FuClass::Alu),
            self.config.fu_width(FuClass::Mul),
            self.config.fu_width(FuClass::Sfu),
            self.config.fu_width(FuClass::Mem),
        ];
        let class_idx = |c: FuClass| match c {
            FuClass::Alu => 0,
            FuClass::Mul => 1,
            FuClass::Sfu => 2,
            FuClass::Mem => 3,
            FuClass::Ctrl => unreachable!("control ops never enter the collector"),
        };
        let ready = self.stage.ready_slots(self.cycle);
        let mut dispatched: Vec<usize> = Vec::new();
        for idx in ready {
            let class = self.stage.slot(idx).inst.op.fu_class();
            let b = &mut budget[class_idx(class)];
            if *b == 0 {
                continue;
            }
            *b -= 1;
            dispatched.push(idx);
        }
        // Remove from the stage highest-index first so indices stay valid.
        for &idx in dispatched.iter().rev() {
            let slot = self.stage.remove(idx);
            self.execute_slot(slot, global);
        }
    }

    fn execute_slot(&mut self, slot: crate::collector::Slot, global: &mut GlobalMemory) {
        let wslot = slot.warp;
        let slot_pc = slot.pc;
        let oc_cycles = self.cycle - slot.insert_cycle;
        self.record(
            wslot,
            slot_pc,
            slot.seq,
            Stage::Dispatch,
            oc_cycles,
            &|| slot.inst.to_string(),
        );
        let is_mem = slot.inst.op.is_memory();
        if is_mem {
            self.stats.oc_cycles_mem += oc_cycles;
            self.stats.insts_mem += 1;
        } else {
            self.stats.oc_cycles_nonmem += oc_cycles;
            self.stats.insts_nonmem += 1;
        }
        self.scoreboards[wslot].dispatch(&slot.inst);

        let warp = self.warps[wslot].as_mut().expect("dispatch for live warp");
        let bslot = warp.block_slot;
        let block = self.blocks[bslot].as_mut().expect("block resident");
        let mut ctx = ExecCtx {
            global,
            shared: &mut block.shared,
            params: &self.params,
            block: block.info,
        };
        let access = exec::execute_data(warp, &slot.inst, slot.mask, &mut ctx);

        let complete = match access {
            Some(a) => match a.space {
                Space::Global => {
                    let kind = if a.is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    self.mem.access(kind, &a.addrs, self.cycle)
                }
                Space::Shared => {
                    let degree = bank_conflict_degree(&a.addrs);
                    self.cycle
                        + u64::from(self.config.smem_latency)
                        + u64::from(degree.saturating_sub(1))
                }
                Space::Param => self.cycle + 4,
            },
            None => self.cycle + u64::from(self.config.fu_latency(slot.inst.op.fu_class())),
        }
        .max(self.cycle + 1);

        self.event_ord += 1;
        self.pending.push(Reverse(Completion {
            time: complete,
            ord: self.event_ord,
            warp: wslot,
            pc: slot_pc,
            dst_reg: slot.inst.dst_reg(),
            dst_pred: slot.inst.dst.pred(),
            hint: slot.inst.hint,
            seq: slot.seq,
            issue_cycle: slot.insert_cycle,
            is_mem,
        }));
    }

    // ----- issue -----

    fn issue_stage(&mut self, kernel: &Kernel, analyzer: &mut BypassAnalyzer) {
        let nsched = self.schedulers.len();
        for s in 0..nsched {
            for _ in 0..self.config.issue_per_scheduler {
                let ready = self.ready_warps_of(s, kernel);
                let age = &self.warp_age;
                let pick = self.schedulers[s].pick(&ready, |w| age[w]);
                let Some(w) = pick else { break };
                self.issue_one(w, kernel, analyzer);
            }
        }
    }

    fn ready_warps_of(&mut self, sched: usize, kernel: &Kernel) -> Vec<usize> {
        let nsched = self.schedulers.len();
        let mut ready = Vec::new();
        for w in (sched..self.warps.len()).step_by(nsched) {
            let Some(warp) = self.warps[w].as_ref() else {
                continue;
            };
            if warp.done || warp.at_barrier {
                continue;
            }
            if warp.pc >= kernel.insts.len() {
                continue;
            }
            let inst = &kernel.insts[warp.pc];
            if inst.op.is_control() {
                // Barriers and exits wait for the warp's pipeline to drain
                // so block release and flushes see a quiet machine.
                let needs_drain = matches!(inst.op, bow_isa::Opcode::Exit | bow_isa::Opcode::Bar);
                if needs_drain && warp.inflight > 0 {
                    continue;
                }
                // Branch guards must not be pending.
                if !self.scoreboards[w].can_issue(inst) {
                    self.stats.stall_scoreboard += 1;
                    continue;
                }
                ready.push(w);
            } else {
                if !self.stage.can_accept(w) {
                    self.stats.stall_no_collector += 1;
                    continue;
                }
                if !self.scoreboards[w].can_issue(inst) {
                    self.stats.stall_scoreboard += 1;
                    continue;
                }
                ready.push(w);
            }
        }
        ready
    }

    fn issue_one(&mut self, w: usize, kernel: &Kernel, analyzer: &mut BypassAnalyzer) {
        let warp = self.warps[w].as_mut().expect("ready warp is live");
        let inst = kernel.insts[warp.pc].clone();
        let seq = warp.seq;
        warp.seq += 1;
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += u64::from(warp.active.count_ones());

        let uid = self.blocks[warp.block_slot]
            .as_ref()
            .map(|b| b.base_uid + u64::from(warp.warp_in_block))
            .unwrap_or(0)
            | ((self.id as u64) << 48);
        if analyzer.is_enabled() {
            analyzer.record(uid, &inst);
        }

        if inst.op.is_control() {
            let ctrl_pc = self.warps[w].as_ref().expect("live").pc;
            self.record(w, ctrl_pc, seq, Stage::Control, 0, &|| inst.to_string());
            self.stage
                .note_control(w, seq, &mut self.rf, &mut self.stats);
            let warp = self.warps[w].as_mut().expect("live");
            let outcome = exec::execute_control(warp, &inst);
            match outcome {
                ControlOutcome::Exit => {
                    if warp.done {
                        if analyzer.is_enabled() {
                            analyzer.flush_warp(uid);
                        }
                        if warp.inflight == 0 {
                            self.finalize_warp(w);
                        }
                    }
                }
                ControlOutcome::Barrier => self.maybe_release_barrier(w),
                ControlOutcome::Plain => {}
            }
        } else {
            let mask = warp.guard_mask(inst.guard);
            warp.pc += 1;
            warp.inflight += 1;
            let pc = warp.pc - 1;
            self.stage.insert(
                w,
                pc,
                &inst,
                mask,
                seq,
                self.cycle,
                &mut self.rf,
                &mut self.stats,
            );
            self.scoreboards[w].issue(&inst);
            self.record(w, pc, seq, Stage::Issue, 0, &|| inst.to_string());
        }
    }

    fn maybe_release_barrier(&mut self, wslot: usize) {
        let bslot = self.warps[wslot].as_ref().expect("live").block_slot;
        let block = self.blocks[bslot].as_ref().expect("resident");
        let all_arrived = block.warp_slots.iter().all(|&ws| {
            self.warps[ws]
                .as_ref()
                .is_none_or(|w| w.done || w.at_barrier)
        });
        if all_arrived {
            for &ws in &self.blocks[bslot]
                .as_ref()
                .expect("resident")
                .warp_slots
                .clone()
            {
                if let Some(w) = self.warps[ws].as_mut() {
                    w.at_barrier = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;
    use bow_isa::{KernelBuilder, KernelDims, Operand, Special};

    fn run_kernel(kind: CollectorKind, kernel: &Kernel, global: &mut GlobalMemory) -> SimStats {
        let config = GpuConfig::scaled(kind);
        let mut sm = Sm::new(0, &config);
        sm.reset_for_launch(&[0x1000]);
        let dims = KernelDims::linear(1, 32);
        sm.assign_block(kernel, (0, 0), dims, 0);
        let mut an = BypassAnalyzer::new(&[]);
        let mut guard = 0;
        while sm.busy() {
            sm.tick(kernel, global, &mut an);
            guard += 1;
            assert!(guard < 1_000_000, "kernel did not terminate");
        }
        sm.stats()
    }

    fn store_iota() -> Kernel {
        let r = Reg::r;
        KernelBuilder::new("iota")
            .s2r(r(0), Special::TidX)
            .ldc(r(1), 0)
            .shl(r(2), r(0).into(), Operand::Imm(2))
            .iadd(r(1), r(1).into(), r(2).into())
            .stg(r(1), 0, r(0).into())
            .exit()
            .build()
            .unwrap()
    }

    #[test]
    fn baseline_runs_and_produces_correct_memory() {
        let mut g = GlobalMemory::new();
        let st = run_kernel(CollectorKind::Baseline, &store_iota(), &mut g);
        for i in 0..32u64 {
            assert_eq!(g.read_u32(0x1000 + 4 * i), i as u32);
        }
        assert_eq!(st.warp_instructions, 6);
        assert!(st.cycles > 0);
        assert!(st.rf.reads > 0);
    }

    #[test]
    fn all_collectors_produce_identical_memory() {
        let kernel = store_iota();
        let mut fps = Vec::new();
        for kind in [
            CollectorKind::Baseline,
            CollectorKind::bow(3),
            CollectorKind::bow_wr(3),
            CollectorKind::BowWr {
                window: 3,
                half_size: true,
            },
            CollectorKind::rfc6(),
        ] {
            let mut g = GlobalMemory::new();
            run_kernel(kind, &kernel, &mut g);
            fps.push(g.fingerprint());
        }
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "state diverged: {fps:?}"
        );
    }

    #[test]
    fn bow_bypasses_reads_baseline_does_not() {
        let kernel = store_iota();
        let mut g1 = GlobalMemory::new();
        let base = run_kernel(CollectorKind::Baseline, &kernel, &mut g1);
        let mut g2 = GlobalMemory::new();
        let bow = run_kernel(CollectorKind::bow(3), &kernel, &mut g2);
        assert_eq!(base.bypassed_reads, 0);
        assert!(bow.bypassed_reads > 0, "r1/r2/r0 reuse must bypass");
        assert!(bow.rf.reads < base.rf.reads);
    }

    #[test]
    fn bow_wr_reduces_rf_writes() {
        // A register overwritten repeatedly within the window.
        let r = Reg::r;
        let kernel = KernelBuilder::new("overwrite")
            .mov_imm(r(0), 1)
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .ldc(r(1), 0)
            .stg(r(1), 0, r(0).into())
            .exit()
            .build()
            .unwrap();
        let mut g1 = GlobalMemory::new();
        let base = run_kernel(CollectorKind::Baseline, &kernel, &mut g1);
        let mut g2 = GlobalMemory::new();
        let wr = run_kernel(CollectorKind::bow_wr(3), &kernel, &mut g2);
        assert_eq!(g2.read_u32(0x1000), 3);
        assert!(
            wr.rf.writes < base.rf.writes,
            "{} !< {}",
            wr.rf.writes,
            base.rf.writes
        );
        assert!(wr.bypassed_writes >= 2);
    }

    #[test]
    fn divergent_kernel_reconverges_and_matches() {
        // if (tid < 16) r1 = 5 else r1 = 9; store r1.
        let r = Reg::r;
        let kernel = KernelBuilder::new("diverge")
            .s2r(r(0), Special::TidX)
            .isetp(
                bow_isa::CmpOp::Lt,
                Pred::p(0),
                r(0).into(),
                Operand::Imm(16),
            )
            .ssy("join")
            .bra_if(Pred::p(0), false, "then")
            .mov_imm(r(1), 9)
            .bra("join")
            .label("then")
            .mov_imm(r(1), 5)
            .label("join")
            .sync()
            .ldc(r(2), 0)
            .shl(r(3), r(0).into(), Operand::Imm(2))
            .iadd(r(2), r(2).into(), r(3).into())
            .stg(r(2), 0, r(1).into())
            .exit()
            .build()
            .unwrap();
        for kind in [CollectorKind::Baseline, CollectorKind::bow_wr(3)] {
            let mut g = GlobalMemory::new();
            run_kernel(kind, &kernel, &mut g);
            for i in 0..32u64 {
                let expect = if i < 16 { 5 } else { 9 };
                assert_eq!(
                    g.read_u32(0x1000 + 4 * i),
                    expect,
                    "lane {i} under {kind:?}"
                );
            }
        }
    }

    #[test]
    fn loop_kernel_terminates_with_correct_sum() {
        // r0 = sum(0..10); store.
        let r = Reg::r;
        let kernel = KernelBuilder::new("loop")
            .mov_imm(r(0), 0)
            .mov_imm(r(1), 0)
            .label("top")
            .iadd(r(0), r(0).into(), r(1).into())
            .iadd(r(1), r(1).into(), Operand::Imm(1))
            .isetp(
                bow_isa::CmpOp::Lt,
                Pred::p(0),
                r(1).into(),
                Operand::Imm(10),
            )
            .bra_if(Pred::p(0), false, "top")
            .ldc(r(2), 0)
            .stg(r(2), 0, r(0).into())
            .exit()
            .build()
            .unwrap();
        let mut g = GlobalMemory::new();
        run_kernel(CollectorKind::bow_wr(3), &kernel, &mut g);
        assert_eq!(g.read_u32(0x1000), 45);
    }

    #[test]
    fn barrier_synchronizes_shared_memory() {
        // Warp 0 writes smem[tid], both warps read smem[tid^32 ... ] — use
        // two warps: each thread stores tid to smem, barrier, loads
        // neighbour warp's value.
        let r = Reg::r;
        let kernel = KernelBuilder::new("bar")
            .shared_bytes(256)
            .s2r(r(0), Special::TidX)
            .shl(r(1), r(0).into(), Operand::Imm(2))
            .sts(r(1), 0, r(0).into())
            .bar()
            .xor(r(2), r(1).into(), Operand::Imm(128)) // partner word
            .lds(r(3), r(2), 0)
            .ldc(r(4), 0)
            .iadd(r(4), r(4).into(), r(1).into())
            .stg(r(4), 0, r(3).into())
            .exit()
            .build()
            .unwrap();
        let config = GpuConfig::scaled(CollectorKind::bow_wr(3));
        let mut sm = Sm::new(0, &config);
        sm.reset_for_launch(&[0x2000]);
        let dims = KernelDims::linear(1, 64);
        sm.assign_block(&kernel, (0, 0), dims, 0);
        let mut g = GlobalMemory::new();
        let mut an = BypassAnalyzer::new(&[]);
        let mut guard = 0;
        while sm.busy() {
            sm.tick(&kernel, &mut g, &mut an);
            guard += 1;
            assert!(guard < 1_000_000);
        }
        for i in 0..64u64 {
            assert_eq!(g.read_u32(0x2000 + 4 * i), (i as u32) ^ 32, "thread {i}");
        }
    }

    #[test]
    fn oc_residency_is_tracked() {
        let mut g = GlobalMemory::new();
        let st = run_kernel(CollectorKind::Baseline, &store_iota(), &mut g);
        assert!(st.oc_cycles() > 0);
        assert!(st.insts_mem >= 2, "ldc + stg");
        assert!(st.insts_nonmem >= 3);
    }
}
