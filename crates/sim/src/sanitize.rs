//! The dynamic race sanitizer: a [`Probe`] that shadows every shared- and
//! global-memory word with last-accessor provenance plus a per-warp
//! barrier-epoch counter, and reports intra-CTA data races, reads of
//! never-initialized shared memory, divergent barriers and related
//! dynamic hazards.
//!
//! The sanitizer rides the same probe seam as
//! [`LockstepChecker`](crate::oracle::LockstepChecker): subscribe it to a
//! launch (or set [`GpuConfig::sanitize`](crate::GpuConfig) and read
//! [`LaunchResult::sanitizer`](crate::LaunchResult)) and it folds the
//! instrumented event stream — [`PipeEvent::MemTrace`],
//! [`PipeEvent::CtrlTrace`] and [`PipeEvent::ExecResult`] — into a
//! deduplicated, canonically ordered [`SanitizerReport`]. With the flag
//! off the whole subscriber monomorphizes out through [`NullProbe`]
//! exactly like every other probe, so golden fingerprints are unchanged.
//!
//! ## Detection rules
//!
//! *Barrier epochs.* Each warp's epoch is the number of `bar` instructions
//! it has executed. Two accesses can only race when they fall in the same
//! epoch of the same CTA — a barrier between them orders them.
//!
//! *Races.* Two same-epoch accesses to the same word conflict when at
//! least one is a store and the accessors are unordered: different warps,
//! different **lanes** of one warp across different instructions
//! (warp-synchronous programming is not assumed safe — on hardware with
//! independent thread scheduling an unfenced cross-lane exchange is a real
//! race), or different lanes of one instruction. Only a same-lane pair is
//! program-ordered. Write-write pairs storing the **same** value are not
//! reported: value-convergent races (e.g. level-synchronous BFS marking a
//! node from several edges) are architecturally benign under any
//! interleaving. Cross-CTA global conflicts are out of scope — blocks are
//! not ordered by barriers at all, and the repository's kernels partition
//! global memory per CTA.
//!
//! *Uninitialized reads.* A shared-memory load from a word no store in the
//! CTA has written observes spawn-state zeros; a data source register read
//! by a **lane** that never wrote it likewise (register shadows are
//! per-lane, so a guarded write on one divergent arm does not launder the
//! other arm's lanes).
//!
//! *Control hazards.* A `bar` whose arriving lane mask differs from the
//! warp's live lanes is a divergent barrier (a real GPU deadlocks); a
//! `sync` with an empty reconvergence stack underflows it.
//!
//! *Hint violations.* A `.wb.boc`-hinted value is only resident while
//! the window keeps getting touched: reads re-touch the entry, and it
//! evicts once the collector window's span passes without one (the same
//! rule as the architectural window replayer in the mutation sanitizer).
//! A consumption whose gap since the last touch reaches the span reads a
//! value the buffer already dropped — the dynamic mirror of the static
//! B010 lint. Reads under a lane mask disjoint from the definition's
//! (the complementary arm of a diverged branch) observe the older
//! architectural value, never the dropped one, so they are exempt —
//! the same mask-disjointness refinement the static verifier applies.
//!
//! [`NullProbe`]: crate::probe::NullProbe

use crate::oracle::UID_LOW48;
use crate::probe::{PipeEvent, Probe};
use bow_isa::{Kernel, Opcode, WritebackHint, WARP_SIZE};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;

/// One dynamic finding. Variant order is severity order: races first,
/// then uninitialized data, then control hazards, then advisory hint
/// violations — [`SanitizerReport::findings`] sorts by it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SanitizerFinding {
    /// Two same-epoch accesses to one word, distinct accessors, ≥1 store.
    Race {
        /// Shared (true) or global (false) memory.
        shared: bool,
        /// CTA (block index) both accessors belong to.
        cta: u64,
        /// The racing word address.
        addr: u64,
        /// First access in canonical order: `(pc, uid)`-smaller side.
        first_pc: usize,
        /// Whether the first access is a store.
        first_write: bool,
        /// Second access.
        second_pc: usize,
        /// Whether the second access is a store.
        second_write: bool,
        /// Barrier epoch the conflict fell in.
        epoch: u32,
        /// Schedule-independent warp uid of the first access.
        first_uid: u64,
        /// Warp uid of the second access.
        second_uid: u64,
    },
    /// A shared-memory load from a word no store in the CTA ever wrote.
    UninitShared {
        /// CTA of the reader.
        cta: u64,
        /// The never-written word.
        addr: u64,
        /// Program counter of the load.
        pc: usize,
        /// Warp uid of the reader.
        uid: u64,
    },
    /// A data source register read before any instruction wrote it.
    UninitReg {
        /// Register index.
        reg: u8,
        /// Program counter of the reader.
        pc: usize,
        /// Warp uid of the reader.
        uid: u64,
    },
    /// A `bar` arrived at by fewer lanes than the warp has live.
    DivergentBarrier {
        /// CTA of the warp.
        cta: u64,
        /// Program counter of the barrier.
        pc: usize,
        /// Lane mask that arrived.
        arrive: u32,
        /// Live (valid and not exited) lane mask.
        live: u32,
        /// Warp uid.
        uid: u64,
    },
    /// A `sync` executed with an empty reconvergence stack.
    BrokenSync {
        /// Program counter of the sync.
        pc: usize,
        /// Warp uid.
        uid: u64,
    },
    /// A `.wb.boc` value consumed beyond the collector window span.
    HintViolation {
        /// Register carrying the transient value.
        reg: u8,
        /// Program counter of the defining instruction.
        def_pc: usize,
        /// Program counter of the consuming instruction.
        use_pc: usize,
        /// Dynamic instruction distance between them.
        distance: u64,
        /// Warp uid.
        uid: u64,
    },
}

impl SanitizerFinding {
    /// Short stable kind tag (used by campaign JSON and static mapping).
    pub fn kind(&self) -> &'static str {
        match self {
            SanitizerFinding::Race { .. } => "race",
            SanitizerFinding::UninitShared { .. } => "uninit-shared",
            SanitizerFinding::UninitReg { .. } => "uninit-reg",
            SanitizerFinding::DivergentBarrier { .. } => "divergent-bar",
            SanitizerFinding::BrokenSync { .. } => "broken-sync",
            SanitizerFinding::HintViolation { .. } => "hint-violation",
        }
    }

    /// The dedup identity: the finding with warp/epoch/distance detail
    /// zeroed, so one report survives per distinct program location.
    fn dedup_key(&self) -> SanitizerFinding {
        let mut k = self.clone();
        match &mut k {
            SanitizerFinding::Race {
                addr,
                epoch,
                first_uid,
                second_uid,
                ..
            } => {
                *addr = 0;
                *epoch = 0;
                *first_uid = 0;
                *second_uid = 0;
            }
            SanitizerFinding::UninitShared { addr, uid, .. } => {
                *addr = 0;
                *uid = 0;
            }
            SanitizerFinding::UninitReg { uid, .. } | SanitizerFinding::BrokenSync { uid, .. } => {
                *uid = 0
            }
            SanitizerFinding::DivergentBarrier {
                arrive, live, uid, ..
            } => {
                *arrive = 0;
                *live = 0;
                *uid = 0;
            }
            SanitizerFinding::HintViolation { distance, uid, .. } => {
                *distance = 0;
                *uid = 0;
            }
        }
        k
    }
}

impl fmt::Display for SanitizerFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rw(w: bool) -> &'static str {
            if w {
                "store"
            } else {
                "load"
            }
        }
        match *self {
            SanitizerFinding::Race {
                shared,
                cta,
                addr,
                first_pc,
                first_write,
                second_pc,
                second_write,
                epoch,
                first_uid,
                second_uid,
            } => write!(
                f,
                "race: {} word {addr:#x} cta {cta} epoch {epoch}: \
                 {}@pc{first_pc} (warp {first_uid}) vs {}@pc{second_pc} (warp {second_uid})",
                if shared { "shared" } else { "global" },
                rw(first_write),
                rw(second_write),
            ),
            SanitizerFinding::UninitShared { cta, addr, pc, uid } => write!(
                f,
                "uninit-shared: read of never-written shared word {addr:#x} \
                 cta {cta} at pc{pc} (warp {uid})"
            ),
            SanitizerFinding::UninitReg { reg, pc, uid } => write!(
                f,
                "uninit-reg: r{reg} read before any write at pc{pc} (warp {uid})"
            ),
            SanitizerFinding::DivergentBarrier {
                cta,
                pc,
                arrive,
                live,
                uid,
            } => write!(
                f,
                "divergent-bar: bar at pc{pc} reached by lanes {arrive:#010x} \
                 of live {live:#010x} (warp {uid}, cta {cta})"
            ),
            SanitizerFinding::BrokenSync { pc, uid } => write!(
                f,
                "broken-sync: sync with empty reconvergence stack at pc{pc} (warp {uid})"
            ),
            SanitizerFinding::HintViolation {
                reg,
                def_pc,
                use_pc,
                distance,
                uid,
            } => write!(
                f,
                "hint-violation: .wb.boc r{reg} defined at pc{def_pc} consumed \
                 at pc{use_pc} after {distance} instructions (warp {uid})"
            ),
        }
    }
}

/// The outcome of a sanitized launch: deduplicated findings in canonical
/// order (severity, then location — independent of dispatch interleaving).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// All findings, canonically ordered.
    pub findings: Vec<SanitizerFinding>,
}

impl SanitizerReport {
    /// True when the launch produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// A stable multi-line rendering, one finding per line (golden-file
    /// friendly: byte-identical across thread counts and repeat runs).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for fd in &self.findings {
            s.push_str(&fd.to_string());
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One recorded access in the per-word shadow state.
#[derive(Clone, Copy)]
struct Access {
    uid: u64,
    lane: u32,
    cta: u64,
    pc: usize,
    seq: u64,
    epoch: u32,
    value: u32,
}

/// Shadow state of one aligned 32-bit word.
#[derive(Clone, Copy, Default)]
struct WordShadow {
    last_write: Option<Access>,
    last_read: Option<Access>,
    written: bool,
}

/// Shadow state of one register definition inside a warp: where the value
/// was produced and when the operand window last kept it alive. Reads
/// re-touch the entry (`last_touch`), mirroring the collector's residency
/// rule — a value stays bypassable as long as consumers arrive within the
/// window span of one another, not just of the definition.
#[derive(Clone, Copy)]
struct RegDef {
    /// Sequence number of the defining write.
    def_seq: u64,
    /// Sequence number of the last in-window touch (the def, then each
    /// read that found the value still resident).
    last_touch: u64,
    /// Program counter of the defining instruction.
    def_pc: usize,
    /// Active lane mask of the defining write: reads under a disjoint
    /// mask (the complementary arm of a diverged branch) never observe
    /// this definition's lanes, so they are not violations.
    mask: u32,
    /// Write-back hint the definition carried.
    hint: WritebackHint,
}

/// The sanitizer probe. Create with [`Sanitizer::new`], subscribe via
/// [`Gpu::launch_with_probe`](crate::Gpu::launch_with_probe) (or let
/// [`GpuConfig::sanitize`](crate::GpuConfig) attach it), then call
/// [`Sanitizer::finish`] for the report.
pub struct Sanitizer<'k> {
    kernel: &'k Kernel,
    warps_per_block: u64,
    /// Collector window span for `.wb.boc` hint checking; `None` when the
    /// collector model has no nominal window.
    window: Option<u32>,
    /// Executed-`bar` count per warp (uid & low48).
    epochs: HashMap<u64, u32>,
    /// Shared-memory shadow, keyed `(cta, word)`.
    shared: HashMap<(u64, u64), WordShadow>,
    /// Global-memory shadow, keyed by word (conflicts compare CTAs).
    global: HashMap<u64, WordShadow>,
    /// Per-lane register-initialization bitsets (256 registers × 32
    /// lanes per warp): a write only initializes the lanes that were
    /// active, so a divergent-arm def does not cover the join's full mask.
    reg_init: HashMap<u64, Box<[[u64; 4]; WARP_SIZE]>>,
    /// Per-warp last writer of each register.
    reg_writer: HashMap<(u64, u8), RegDef>,
    /// Deduplicated findings, best (smallest) representative per key.
    findings: HashMap<SanitizerFinding, SanitizerFinding>,
}

impl<'k> Sanitizer<'k> {
    /// Creates a sanitizer for one launch of `kernel`.
    ///
    /// `warps_per_block` maps warp uids to CTAs; `window` enables
    /// `.wb.boc` hint checking against the collector's nominal window.
    pub fn new(kernel: &'k Kernel, warps_per_block: u64, window: Option<u32>) -> Sanitizer<'k> {
        Sanitizer {
            kernel,
            warps_per_block: warps_per_block.max(1),
            window,
            epochs: HashMap::new(),
            shared: HashMap::new(),
            global: HashMap::new(),
            reg_init: HashMap::new(),
            reg_writer: HashMap::new(),
            findings: HashMap::new(),
        }
    }

    /// Consumes the sanitizer and returns the canonical report.
    pub fn finish(self) -> SanitizerReport {
        let mut findings: Vec<SanitizerFinding> = self.findings.into_values().collect();
        findings.sort();
        SanitizerReport { findings }
    }

    fn report(&mut self, finding: SanitizerFinding) {
        let key = finding.dedup_key();
        match self.findings.entry(key) {
            Entry::Occupied(mut e) => {
                // Keep the smallest representative so the survivor does
                // not depend on detection order.
                if finding < *e.get() {
                    e.insert(finding);
                }
            }
            Entry::Vacant(e) => {
                e.insert(finding);
            }
        }
    }

    /// Whether two same-word accesses are unordered: different warps, two
    /// lanes of one instruction, or different lanes of one warp across
    /// different instructions (a warp-synchronous exchange — racy under
    /// independent thread scheduling unless a barrier separates it, and
    /// the epoch check has already ruled that out). Only a same-lane pair
    /// is program-ordered.
    fn unordered(a: &Access, b: &Access) -> bool {
        a.uid != b.uid || a.seq == b.seq || a.lane != b.lane
    }

    fn race(
        shared: bool,
        a: &Access,
        a_write: bool,
        b: &Access,
        b_write: bool,
    ) -> SanitizerFinding {
        // Canonical pair order: the (pc, uid)-smaller access first.
        let (first, fw, second, sw) = if (a.pc, a.uid) <= (b.pc, b.uid) {
            (a, a_write, b, b_write)
        } else {
            (b, b_write, a, a_write)
        };
        SanitizerFinding::Race {
            shared,
            cta: first.cta,
            addr: 0, // patched by caller
            first_pc: first.pc,
            first_write: fw,
            second_pc: second.pc,
            second_write: sw,
            epoch: first.epoch.min(second.epoch),
            first_uid: first.uid,
            second_uid: second.uid,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_mem(
        &mut self,
        uid: u64,
        pc: usize,
        seq: u64,
        is_store: bool,
        shared: bool,
        mask: u32,
        addrs: &[u64],
        values: &[u32],
    ) {
        let uidl = uid & UID_LOW48;
        let cta = uidl / self.warps_per_block;
        let epoch = self.epochs.get(&uidl).copied().unwrap_or(0);
        let mut slot = 0usize;
        for lane in 0..WARP_SIZE {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let addr = addrs.get(slot).copied().unwrap_or(0) & !3;
            let value = if is_store {
                values.get(slot).copied().unwrap_or(0)
            } else {
                0
            };
            slot += 1;
            let acc = Access {
                uid: uidl,
                lane: lane as u32,
                cta,
                pc,
                seq,
                epoch,
                value,
            };
            let shadow = if shared {
                self.shared.entry((cta, addr)).or_default()
            } else {
                self.global.entry(addr).or_default()
            };
            let mut hits: Vec<SanitizerFinding> = Vec::new();
            if is_store {
                if let Some(w) = shadow.last_write {
                    // Write-write: benign when both stores carry the same
                    // value (value-convergent races commute).
                    if w.cta == cta
                        && w.epoch == epoch
                        && Self::unordered(&w, &acc)
                        && w.value != value
                    {
                        hits.push(Self::race(shared, &w, true, &acc, true));
                    }
                }
                if let Some(r) = shadow.last_read {
                    if r.cta == cta && r.epoch == epoch && Self::unordered(&r, &acc) {
                        hits.push(Self::race(shared, &r, false, &acc, true));
                    }
                }
                shadow.last_write = Some(acc);
                shadow.written = true;
            } else {
                let uninit = shared && !shadow.written;
                if let Some(w) = shadow.last_write {
                    if w.cta == cta && w.epoch == epoch && Self::unordered(&w, &acc) {
                        hits.push(Self::race(shared, &w, true, &acc, false));
                    }
                }
                shadow.last_read = Some(acc);
                if uninit {
                    hits.push(SanitizerFinding::UninitShared {
                        cta,
                        addr,
                        pc,
                        uid: uidl,
                    });
                }
            }
            for mut h in hits {
                if let SanitizerFinding::Race { addr: a, .. } = &mut h {
                    *a = addr;
                }
                self.report(h);
            }
        }
    }

    fn on_exec(&mut self, uid: u64, pc: usize, seq: u64, mask: u32) {
        if mask == 0 {
            return;
        }
        let uidl = uid & UID_LOW48;
        let Some(inst) = self.kernel.insts.get(pc) else {
            return;
        };
        let init = self
            .reg_init
            .entry(uidl)
            .or_insert_with(|| Box::new([[0u64; 4]; WARP_SIZE]));
        let is_set = |lanes: &[[u64; 4]; WARP_SIZE], lane: usize, i: u8| {
            lanes[lane][(i >> 6) as usize] >> (i & 63) & 1 != 0
        };
        let mut uninit: Vec<u8> = Vec::new();
        for r in inst.src_regs() {
            let i = r.index();
            let any_lane_uninit =
                (0..WARP_SIZE).any(|lane| mask & (1 << lane) != 0 && !is_set(init, lane, i));
            if any_lane_uninit {
                uninit.push(i);
            }
        }
        if let Some(d) = inst.dst_reg() {
            let i = d.index();
            for lane in 0..WARP_SIZE {
                if mask & (1 << lane) != 0 {
                    init[lane][(i >> 6) as usize] |= 1u64 << (i & 63);
                }
            }
        }
        for reg in uninit {
            self.report(SanitizerFinding::UninitReg { reg, pc, uid: uidl });
        }
        if let Some(win) = self.window {
            let mut hits: Vec<SanitizerFinding> = Vec::new();
            for r in inst.src_regs() {
                if let Some(def) = self.reg_writer.get_mut(&(uidl, r.index())) {
                    if def.hint == WritebackHint::BocOnly {
                        let gap = seq.saturating_sub(def.last_touch);
                        if gap > u64::from(win) {
                            // Disjoint-mask reads past the span neither
                            // violate (their lanes hold the older
                            // architectural value) nor revive the entry.
                            if mask & def.mask != 0 {
                                hits.push(SanitizerFinding::HintViolation {
                                    reg: r.index(),
                                    def_pc: def.def_pc,
                                    use_pc: pc,
                                    distance: seq.saturating_sub(def.def_seq),
                                    uid: uidl,
                                });
                            }
                        } else {
                            def.last_touch = seq;
                        }
                    }
                }
            }
            if let Some(d) = inst.dst_reg() {
                self.reg_writer.insert(
                    (uidl, d.index()),
                    RegDef {
                        def_seq: seq,
                        last_touch: seq,
                        def_pc: pc,
                        mask,
                        hint: inst.hint,
                    },
                );
            }
            for h in hits {
                self.report(h);
            }
        }
    }

    fn on_ctrl(
        &mut self,
        uid: u64,
        pc: usize,
        arrive: u32,
        live: u32,
        sync_underflow: bool,
        op: Opcode,
    ) {
        let uidl = uid & UID_LOW48;
        if sync_underflow {
            self.report(SanitizerFinding::BrokenSync { pc, uid: uidl });
        }
        if op == Opcode::Bar {
            if arrive != live {
                let cta = uidl / self.warps_per_block;
                self.report(SanitizerFinding::DivergentBarrier {
                    cta,
                    pc,
                    arrive,
                    live,
                    uid: uidl,
                });
            }
            *self.epochs.entry(uidl).or_insert(0) += 1;
        }
    }
}

impl Probe for Sanitizer<'_> {
    fn on_event(&mut self, ev: &PipeEvent<'_>) {
        match *ev {
            PipeEvent::MemTrace {
                uid,
                pc,
                seq,
                is_store,
                shared,
                mask,
                addrs,
                values,
            } => self.on_mem(uid, pc, seq, is_store, shared, mask, addrs, values),
            PipeEvent::ExecResult {
                uid, pc, seq, mask, ..
            } => self.on_exec(uid, pc, seq, mask),
            PipeEvent::CtrlTrace {
                uid,
                pc,
                arrive,
                live,
                sync_underflow,
                inst,
                ..
            } => self.on_ctrl(uid, pc, arrive, live, sync_underflow, inst.op),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;
    use crate::config::GpuConfig;
    use crate::gpu::Gpu;
    use bow_isa::{KernelBuilder, KernelDims, Operand, Reg, Special};

    fn sanitize_cfg() -> GpuConfig {
        let mut cfg = GpuConfig::scaled(CollectorKind::Baseline);
        cfg.sanitize = true;
        cfg
    }

    fn run(kernel: &bow_isa::Kernel, dims: KernelDims) -> SanitizerReport {
        let mut gpu = Gpu::new(sanitize_cfg());
        let res = gpu.launch(kernel, dims, &[]);
        assert!(res.completed);
        res.sanitizer.expect("sanitize flag attaches the probe")
    }

    /// All warps of a block store tid to shared[0], then read it back —
    /// same-epoch conflicting accesses with differing values.
    fn racy_kernel(with_bar: bool) -> bow_isa::Kernel {
        let r = Reg::r;
        let mut b = KernelBuilder::new("racy")
            .shared_bytes(64)
            .s2r(r(0), Special::TidX)
            .mov_imm(r(1), 0)
            .sts(r(1), 0, r(0).into());
        if with_bar {
            b = b.bar();
        }
        b.lds(r(2), r(1), 0)
            .shl(r(3), r(0).into(), Operand::Imm(2))
            .iadd(r(3), r(3).into(), Operand::Imm(0x1000))
            .stg(r(3), 0, r(2).into())
            .exit()
            .build()
            .unwrap()
    }

    #[test]
    fn flags_shared_race_without_barrier() {
        let rep = run(&racy_kernel(false), KernelDims::linear(1, 64));
        assert!(!rep.is_clean());
        assert!(
            rep.findings
                .iter()
                .any(|f| matches!(f, SanitizerFinding::Race { shared: true, .. })),
            "expected a shared race, got:\n{}",
            rep.render()
        );
    }

    #[test]
    fn barrier_separates_epochs_but_keeps_the_store_race() {
        // The racing stores (different values, same word, same epoch) are
        // still a race; the bar only orders the store/load pair.
        let rep = run(&racy_kernel(true), KernelDims::linear(1, 64));
        let has_store_load_race = rep.findings.iter().any(|f| {
            matches!(
                f,
                SanitizerFinding::Race {
                    first_write: w1,
                    second_write: w2,
                    ..
                } if !(w1 & w2)
            )
        });
        assert!(
            !has_store_load_race,
            "bar must order the store/load pair:\n{}",
            rep.render()
        );
        assert!(
            rep.findings.iter().any(|f| matches!(
                f,
                SanitizerFinding::Race {
                    first_write: true,
                    second_write: true,
                    ..
                }
            )),
            "the conflicting stores remain a write-write race:\n{}",
            rep.render()
        );
    }

    #[test]
    fn clean_exchange_kernel_reports_nothing() {
        // sts; bar; lds of a per-thread slot: disjoint words, ordered.
        let r = Reg::r;
        let k = KernelBuilder::new("xchg")
            .shared_bytes(256)
            .s2r(r(0), Special::TidX)
            .shl(r(1), r(0).into(), Operand::Imm(2))
            .sts(r(1), 0, r(0).into())
            .bar()
            .lds(r(2), r(1), 0)
            .iadd(r(3), r(1).into(), Operand::Imm(0x2000))
            .stg(r(3), 0, r(2).into())
            .exit()
            .build()
            .unwrap();
        let rep = run(&k, KernelDims::linear(1, 64));
        assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());
    }

    #[test]
    fn value_convergent_global_stores_are_benign() {
        // Every thread stores the same constant to one word: a race under
        // happens-before, but architecturally value-convergent.
        let r = Reg::r;
        let k = KernelBuilder::new("conv")
            .mov_imm(r(0), 0x1000)
            .mov_imm(r(1), 7)
            .stg(r(0), 0, r(1).into())
            .exit()
            .build()
            .unwrap();
        let rep = run(&k, KernelDims::linear(1, 64));
        assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());
    }

    #[test]
    fn flags_uninit_shared_read() {
        let r = Reg::r;
        let k = KernelBuilder::new("uninit")
            .shared_bytes(64)
            .mov_imm(r(0), 0)
            .lds(r(1), r(0), 0)
            .mov_imm(r(2), 0x1000)
            .stg(r(2), 0, r(1).into())
            .exit()
            .build()
            .unwrap();
        let rep = run(&k, KernelDims::linear(1, 32));
        assert!(
            rep.findings
                .iter()
                .any(|f| matches!(f, SanitizerFinding::UninitShared { addr: 0, .. })),
            "expected uninit-shared, got:\n{}",
            rep.render()
        );
    }

    #[test]
    fn flags_divergent_barrier() {
        use bow_isa::{CmpOp, Pred};
        // Half the warp branches around the bar; the arriving mask is the
        // fall-through half only.
        let r = Reg::r;
        let k = KernelBuilder::new("divbar")
            .s2r(r(0), Special::TidX)
            .isetp(CmpOp::Lt, Pred::p(0), r(0).into(), Operand::Imm(16))
            .ssy("join")
            .bra_if(Pred::p(0), true, "skip")
            .bar()
            .label("skip")
            .sync()
            .label("join")
            .exit()
            .build()
            .unwrap();
        let rep = run(&k, KernelDims::linear(1, 32));
        assert!(
            rep.findings
                .iter()
                .any(|f| matches!(f, SanitizerFinding::DivergentBarrier { .. })),
            "expected divergent-bar, got:\n{}",
            rep.render()
        );
    }

    #[test]
    fn flags_uninit_reg_read() {
        let r = Reg::r;
        let k = KernelBuilder::new("uninitreg")
            .mov_imm(r(0), 0x1000)
            .stg(r(0), 0, r(5).into())
            .exit()
            .build()
            .unwrap();
        let rep = run(&k, KernelDims::linear(1, 32));
        assert!(
            rep.findings
                .iter()
                .any(|f| matches!(f, SanitizerFinding::UninitReg { reg: 5, .. })),
            "expected uninit-reg r5, got:\n{}",
            rep.render()
        );
    }

    #[test]
    fn report_is_canonical_across_thread_counts() {
        for threads in [1u32, 4] {
            let mut cfg = sanitize_cfg();
            cfg.sim_threads = threads;
            let mut gpu = Gpu::new(cfg);
            let res = gpu.launch(&racy_kernel(false), KernelDims::linear(2, 64), &[]);
            let rep = res.sanitizer.unwrap();
            let base = {
                let mut gpu = Gpu::new(sanitize_cfg());
                gpu.launch(&racy_kernel(false), KernelDims::linear(2, 64), &[])
                    .sanitizer
                    .unwrap()
            };
            assert_eq!(rep.render(), base.render(), "threads={threads}");
        }
    }
}
