//! Per-warp scoreboard: blocks RAW, WAW and WAR hazards at issue.
//!
//! Two kinds of reservations exist:
//!
//! * **pending writes** — a destination register/predicate of an issued,
//!   not-yet-completed instruction. A later instruction reading (RAW) or
//!   writing (WAW) it stalls. Released at writeback, which in BOW terms is
//!   the moment the value lands in the BOC/RF and becomes forwardable.
//! * **pending reads** — source registers of instructions that have been
//!   issued to a collector but not yet dispatched (their values are read
//!   from architectural state at dispatch). A later instruction writing one
//!   (WAR) stalls. Released at dispatch.

use bow_isa::{Instruction, Pred, Reg};

/// Scoreboard state for one warp.
#[derive(Clone, Debug)]
pub struct Scoreboard {
    /// Pending-write flag per register.
    write_regs: [bool; 256],
    /// Pending-write flag per predicate.
    write_preds: [bool; 8],
    /// Pending-read reference counts per register.
    read_regs: [u16; 256],
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new()
    }
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard {
            write_regs: [false; 256],
            write_preds: [false; 8],
            read_regs: [0; 256],
        }
    }

    /// Whether `inst` can issue without a hazard.
    pub fn can_issue(&self, inst: &Instruction) -> bool {
        // RAW: sources must not be pending writes.
        for r in inst.src_regs() {
            if self.write_regs[r.index() as usize] {
                return false;
            }
        }
        for p in inst.src_preds() {
            if self.write_preds[p.index() as usize] {
                return false;
            }
        }
        // WAW + WAR: destination must not be pending write or pending read.
        if let Some(d) = inst.dst_reg() {
            if self.write_regs[d.index() as usize] || self.read_regs[d.index() as usize] > 0 {
                return false;
            }
        }
        if let Some(p) = inst.dst.pred() {
            if self.write_preds[p.index() as usize] {
                return false;
            }
        }
        true
    }

    /// Records the reservations of an issuing instruction.
    pub fn issue(&mut self, inst: &Instruction) {
        if let Some(d) = inst.dst_reg() {
            self.write_regs[d.index() as usize] = true;
        }
        if let Some(p) = inst.dst.pred() {
            self.write_preds[p.index() as usize] = true;
        }
        for r in inst.src_regs() {
            self.read_regs[r.index() as usize] += 1;
        }
    }

    /// Releases the source-read reservations (at dispatch).
    pub fn dispatch(&mut self, inst: &Instruction) {
        for r in inst.src_regs() {
            let c = &mut self.read_regs[r.index() as usize];
            debug_assert!(*c > 0, "dispatch without matching issue for {r}");
            *c = c.saturating_sub(1);
        }
    }

    /// Releases the destination reservation (at writeback).
    pub fn writeback_reg(&mut self, reg: Reg) {
        self.write_regs[reg.index() as usize] = false;
    }

    /// Releases a predicate destination reservation.
    pub fn writeback_pred(&mut self, pred: Pred) {
        self.write_preds[pred.index() as usize] = false;
    }

    /// Whether nothing is reserved (used by barrier/launch-end checks).
    pub fn is_clear(&self) -> bool {
        !self.write_regs.iter().any(|&b| b)
            && !self.write_preds.iter().any(|&b| b)
            && self.read_regs.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_isa::{CmpOp, Dst, KernelBuilder, Operand};

    fn insts() -> Vec<Instruction> {
        KernelBuilder::new("t")
            .iadd(Reg::r(2), Reg::r(0).into(), Reg::r(1).into()) // 0: r2 = r0+r1
            .imul(Reg::r(3), Reg::r(2).into(), Reg::r(2).into()) // 1: reads r2
            .mov_imm(Reg::r(0), 5) //                               2: writes r0
            .isetp(
                CmpOp::Ne,
                bow_isa::Pred::p(0),
                Reg::r(3).into(),
                Operand::Imm(0),
            ) // 3
            .guard(bow_isa::Pred::p(0), false)
            .mov_imm(Reg::r(4), 1) //                               4: guarded by p0
            .exit()
            .build()
            .unwrap()
            .insts
    }

    #[test]
    fn raw_blocks_until_writeback() {
        let mut sb = Scoreboard::new();
        let i = insts();
        assert!(sb.can_issue(&i[0]));
        sb.issue(&i[0]);
        assert!(!sb.can_issue(&i[1]), "RAW on r2");
        sb.dispatch(&i[0]);
        assert!(!sb.can_issue(&i[1]), "still pending until writeback");
        sb.writeback_reg(Reg::r(2));
        assert!(sb.can_issue(&i[1]));
    }

    #[test]
    fn war_blocks_until_dispatch() {
        let mut sb = Scoreboard::new();
        let i = insts();
        sb.issue(&i[0]); // reads r0, r1
        assert!(!sb.can_issue(&i[2]), "WAR on r0");
        sb.dispatch(&i[0]);
        assert!(sb.can_issue(&i[2]), "read released at dispatch");
    }

    #[test]
    fn waw_blocks() {
        let mut sb = Scoreboard::new();
        let i = insts();
        sb.issue(&i[0]); // writes r2
        let mut clobber = i[0].clone();
        clobber.srcs = vec![Operand::Imm(1), Operand::Imm(2)];
        assert!(!sb.can_issue(&clobber), "WAW on r2");
    }

    #[test]
    fn predicate_hazards() {
        let mut sb = Scoreboard::new();
        let i = insts();
        sb.issue(&i[3]); // writes p0
        assert!(!sb.can_issue(&i[4]), "guard reads p0");
        sb.writeback_pred(bow_isa::Pred::p(0));
        assert!(sb.can_issue(&i[4]));
    }

    #[test]
    fn clear_after_full_lifecycle() {
        let mut sb = Scoreboard::new();
        let i = insts();
        sb.issue(&i[0]);
        assert!(!sb.is_clear());
        sb.dispatch(&i[0]);
        sb.writeback_reg(Reg::r(2));
        assert!(sb.is_clear());
    }

    #[test]
    fn duplicate_sources_hold_two_read_reservations() {
        // imul r3, r2, r2 reads r2 twice; both references must be held at
        // issue and both released by the single dispatch call, or a WAR
        // writer would either slip in early or deadlock.
        let mut sb = Scoreboard::new();
        let square = KernelBuilder::new("t")
            .imul(Reg::r(3), Reg::r(2).into(), Reg::r(2).into())
            .exit()
            .build()
            .unwrap()
            .insts[0]
            .clone();
        let mut write_r2 = insts()[2].clone(); // mov r0, 5
        write_r2.dst = Dst::Reg(Reg::r(2));
        sb.issue(&square);
        assert!(!sb.can_issue(&write_r2), "WAR on r2");
        sb.dispatch(&square);
        assert!(sb.can_issue(&write_r2), "both refs released together");
        sb.writeback_reg(Reg::r(3));
        assert!(sb.is_clear());
    }

    #[test]
    fn war_release_waits_for_every_reader() {
        // Two in-flight readers of r1: the writer stays blocked until the
        // *last* reader dispatches, regardless of dispatch order.
        let mut sb = Scoreboard::new();
        let i = insts();
        let reader_a = &i[0]; // iadd r2, r0, r1
        let mut reader_b = i[0].clone(); // iadd r3, r0, r1
        reader_b.dst = Dst::Reg(Reg::r(3));
        let mut write_r1 = i[2].clone(); // mov r0, 5
        write_r1.dst = Dst::Reg(Reg::r(1));
        sb.issue(reader_a);
        sb.issue(&reader_b);
        assert!(!sb.can_issue(&write_r1));
        sb.dispatch(&reader_b);
        assert!(!sb.can_issue(&write_r1), "one reader still pending");
        sb.dispatch(reader_a);
        assert!(sb.can_issue(&write_r1), "last reader releases the WAR");
    }

    #[test]
    fn raw_release_is_per_register() {
        // Writing back an unrelated register must not release the hazard.
        let mut sb = Scoreboard::new();
        let i = insts();
        sb.issue(&i[0]); // writes r2
        sb.dispatch(&i[0]);
        sb.writeback_reg(Reg::r(3));
        assert!(!sb.can_issue(&i[1]), "r2 still pending after r3 writeback");
        sb.writeback_reg(Reg::r(2));
        assert!(sb.can_issue(&i[1]));
    }

    #[test]
    fn rz_never_reserves() {
        let mut sb = Scoreboard::new();
        let mut i = insts()[0].clone();
        i.dst = Dst::Reg(Reg::RZ);
        i.srcs = vec![Operand::Reg(Reg::RZ), Operand::Imm(1)];
        sb.issue(&i);
        assert!(sb.is_clear());
    }
}
