//! Per-shard probe buffers: owned event recording and deterministic
//! replay.
//!
//! Worker threads cannot feed the launch-level probe directly — it lives
//! on the coordinating thread, and interleaving events from concurrently
//! ticking SMs would make subscriber input order depend on scheduling.
//! Instead every SM records its events into its own [`EventBuf`] (an
//! ordinary [`Probe`] the pipeline monomorphizes against), and at each
//! window boundary the engine replays all buffers **in SM-index order**
//! into the real probe. The replayed stream is therefore a pure function
//! of simulation state — identical for any worker count, including the
//! inline single-thread engine.
//!
//! [`PipeEvent`] borrows the instruction and the `ExecResult` lane
//! values, so recording owns them instead: instructions are reborrowed
//! from the kernel at replay time (`pc` indexes [`Kernel::insts`], and
//! the pipeline always issues unmodified clones of those instructions),
//! and lane values live in one pooled `Vec` per buffer.

use crate::probe::{PipeEvent, Probe, StallKind};
use crate::stats::WriteDest;
use bow_isa::{Kernel, Pred, Reg};

/// An owned mirror of [`PipeEvent`] (borrows replaced by `pc` indices and
/// value-pool ranges).
#[derive(Clone, Copy, Debug)]
enum OwnedEvent {
    Issued {
        uid: u64,
        pc: usize,
        active: u32,
    },
    Issue {
        cycle: u64,
        sm: usize,
        warp: usize,
        pc: usize,
        seq: u64,
    },
    Control {
        cycle: u64,
        sm: usize,
        warp: usize,
        pc: usize,
        seq: u64,
    },
    Dispatch {
        cycle: u64,
        sm: usize,
        warp: usize,
        pc: usize,
        seq: u64,
        oc_cycles: u64,
        is_mem: bool,
    },
    Writeback {
        cycle: u64,
        sm: usize,
        warp: usize,
        pc: usize,
        seq: u64,
    },
    ExecSpan {
        is_mem: bool,
        span: u64,
    },
    RetiredCompletion {
        cycle: u64,
        warp: usize,
        pc: usize,
    },
    WarpExit {
        uid: u64,
    },
    ExecResult {
        uid: u64,
        pc: usize,
        seq: u64,
        dst_reg: Option<Reg>,
        dst_pred: Option<Pred>,
        mask: u32,
        pred_bits: u32,
        /// Range into the owning buffer's value pool.
        values: (u32, u32),
    },
    CtrlTrace {
        uid: u64,
        pc: usize,
        seq: u64,
        arrive: u32,
        live: u32,
        depth: u32,
        sync_underflow: bool,
    },
    MemTrace {
        uid: u64,
        pc: usize,
        seq: u64,
        is_store: bool,
        shared: bool,
        mask: u32,
        /// Range into the owning buffer's address pool.
        addrs: (u32, u32),
        /// Range into the owning buffer's value pool.
        values: (u32, u32),
    },
    Stall(StallKind),
    SrcRegs(usize),
    BypassedRead,
    RfcRead,
    RfcWrite,
    WriteProduced,
    RfWriteRouted,
    BypassedWrite,
    BocWrite,
    WriteDestClass(WriteDest),
    ForcedEviction,
    OccupancySample {
        live: usize,
        cap: usize,
    },
}

/// A per-SM event recorder for one cycle window.
///
/// As a [`Probe`] it is `ACTIVE`, so pipelines monomorphized against it
/// emit the full event stream; [`EventBuf::replay`] then forwards that
/// stream — element-for-element equal to what the SM would have emitted
/// into the launch probe directly — and resets the buffer.
#[derive(Debug, Default)]
pub struct EventBuf {
    events: Vec<OwnedEvent>,
    values: Vec<u32>,
    addrs: Vec<u64>,
}

impl Probe for EventBuf {
    fn on_event(&mut self, ev: &PipeEvent<'_>) {
        let owned = match *ev {
            PipeEvent::Issued {
                uid,
                pc,
                active,
                inst: _,
            } => OwnedEvent::Issued { uid, pc, active },
            PipeEvent::Issue {
                cycle,
                sm,
                warp,
                pc,
                seq,
                inst: _,
            } => OwnedEvent::Issue {
                cycle,
                sm,
                warp,
                pc,
                seq,
            },
            PipeEvent::Control {
                cycle,
                sm,
                warp,
                pc,
                seq,
                inst: _,
            } => OwnedEvent::Control {
                cycle,
                sm,
                warp,
                pc,
                seq,
            },
            PipeEvent::Dispatch {
                cycle,
                sm,
                warp,
                pc,
                seq,
                oc_cycles,
                is_mem,
                inst: _,
            } => OwnedEvent::Dispatch {
                cycle,
                sm,
                warp,
                pc,
                seq,
                oc_cycles,
                is_mem,
            },
            PipeEvent::Writeback {
                cycle,
                sm,
                warp,
                pc,
                seq,
            } => OwnedEvent::Writeback {
                cycle,
                sm,
                warp,
                pc,
                seq,
            },
            PipeEvent::ExecSpan { is_mem, span } => OwnedEvent::ExecSpan { is_mem, span },
            PipeEvent::RetiredCompletion { cycle, warp, pc } => {
                OwnedEvent::RetiredCompletion { cycle, warp, pc }
            }
            PipeEvent::WarpExit { uid } => OwnedEvent::WarpExit { uid },
            PipeEvent::ExecResult {
                uid,
                pc,
                seq,
                dst_reg,
                dst_pred,
                mask,
                pred_bits,
                values,
            } => {
                let start = self.values.len() as u32;
                self.values.extend_from_slice(values);
                OwnedEvent::ExecResult {
                    uid,
                    pc,
                    seq,
                    dst_reg,
                    dst_pred,
                    mask,
                    pred_bits,
                    values: (start, values.len() as u32),
                }
            }
            PipeEvent::CtrlTrace {
                uid,
                pc,
                seq,
                arrive,
                live,
                depth,
                sync_underflow,
                inst: _,
            } => OwnedEvent::CtrlTrace {
                uid,
                pc,
                seq,
                arrive,
                live,
                depth,
                sync_underflow,
            },
            PipeEvent::MemTrace {
                uid,
                pc,
                seq,
                is_store,
                shared,
                mask,
                addrs,
                values,
            } => {
                let astart = self.addrs.len() as u32;
                self.addrs.extend_from_slice(addrs);
                let vstart = self.values.len() as u32;
                self.values.extend_from_slice(values);
                OwnedEvent::MemTrace {
                    uid,
                    pc,
                    seq,
                    is_store,
                    shared,
                    mask,
                    addrs: (astart, addrs.len() as u32),
                    values: (vstart, values.len() as u32),
                }
            }
            PipeEvent::Stall(k) => OwnedEvent::Stall(k),
            PipeEvent::SrcRegs(n) => OwnedEvent::SrcRegs(n),
            PipeEvent::BypassedRead => OwnedEvent::BypassedRead,
            PipeEvent::RfcRead => OwnedEvent::RfcRead,
            PipeEvent::RfcWrite => OwnedEvent::RfcWrite,
            PipeEvent::WriteProduced => OwnedEvent::WriteProduced,
            PipeEvent::RfWriteRouted => OwnedEvent::RfWriteRouted,
            PipeEvent::BypassedWrite => OwnedEvent::BypassedWrite,
            PipeEvent::BocWrite => OwnedEvent::BocWrite,
            PipeEvent::WriteDestClass(d) => OwnedEvent::WriteDestClass(d),
            PipeEvent::ForcedEviction => OwnedEvent::ForcedEviction,
            PipeEvent::OccupancySample { live, cap } => OwnedEvent::OccupancySample { live, cap },
        };
        self.events.push(owned);
    }
}

impl EventBuf {
    /// Number of buffered events (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays every recorded event into `probe` in recording order,
    /// reborrowing instructions from `kernel`, then clears the buffer.
    pub fn replay<P: Probe>(&mut self, kernel: &Kernel, probe: &mut P) {
        for ev in &self.events {
            let borrowed = match *ev {
                OwnedEvent::Issued { uid, pc, active } => PipeEvent::Issued {
                    uid,
                    pc,
                    active,
                    inst: &kernel.insts[pc],
                },
                OwnedEvent::Issue {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                } => PipeEvent::Issue {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                    inst: &kernel.insts[pc],
                },
                OwnedEvent::Control {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                } => PipeEvent::Control {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                    inst: &kernel.insts[pc],
                },
                OwnedEvent::Dispatch {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                    oc_cycles,
                    is_mem,
                } => PipeEvent::Dispatch {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                    oc_cycles,
                    is_mem,
                    inst: &kernel.insts[pc],
                },
                OwnedEvent::Writeback {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                } => PipeEvent::Writeback {
                    cycle,
                    sm,
                    warp,
                    pc,
                    seq,
                },
                OwnedEvent::ExecSpan { is_mem, span } => PipeEvent::ExecSpan { is_mem, span },
                OwnedEvent::RetiredCompletion { cycle, warp, pc } => {
                    PipeEvent::RetiredCompletion { cycle, warp, pc }
                }
                OwnedEvent::WarpExit { uid } => PipeEvent::WarpExit { uid },
                OwnedEvent::ExecResult {
                    uid,
                    pc,
                    seq,
                    dst_reg,
                    dst_pred,
                    mask,
                    pred_bits,
                    values: (start, len),
                } => PipeEvent::ExecResult {
                    uid,
                    pc,
                    seq,
                    dst_reg,
                    dst_pred,
                    mask,
                    pred_bits,
                    values: &self.values[start as usize..(start + len) as usize],
                },
                OwnedEvent::CtrlTrace {
                    uid,
                    pc,
                    seq,
                    arrive,
                    live,
                    depth,
                    sync_underflow,
                } => PipeEvent::CtrlTrace {
                    uid,
                    pc,
                    seq,
                    arrive,
                    live,
                    depth,
                    sync_underflow,
                    inst: &kernel.insts[pc],
                },
                OwnedEvent::MemTrace {
                    uid,
                    pc,
                    seq,
                    is_store,
                    shared,
                    mask,
                    addrs: (astart, alen),
                    values: (vstart, vlen),
                } => PipeEvent::MemTrace {
                    uid,
                    pc,
                    seq,
                    is_store,
                    shared,
                    mask,
                    addrs: &self.addrs[astart as usize..(astart + alen) as usize],
                    values: &self.values[vstart as usize..(vstart + vlen) as usize],
                },
                OwnedEvent::Stall(k) => PipeEvent::Stall(k),
                OwnedEvent::SrcRegs(n) => PipeEvent::SrcRegs(n),
                OwnedEvent::BypassedRead => PipeEvent::BypassedRead,
                OwnedEvent::RfcRead => PipeEvent::RfcRead,
                OwnedEvent::RfcWrite => PipeEvent::RfcWrite,
                OwnedEvent::WriteProduced => PipeEvent::WriteProduced,
                OwnedEvent::RfWriteRouted => PipeEvent::RfWriteRouted,
                OwnedEvent::BypassedWrite => PipeEvent::BypassedWrite,
                OwnedEvent::BocWrite => PipeEvent::BocWrite,
                OwnedEvent::WriteDestClass(d) => PipeEvent::WriteDestClass(d),
                OwnedEvent::ForcedEviction => PipeEvent::ForcedEviction,
                OwnedEvent::OccupancySample { live, cap } => {
                    PipeEvent::OccupancySample { live, cap }
                }
            };
            probe.on_event(&borrowed);
        }
        self.events.clear();
        self.values.clear();
        self.addrs.clear();
    }
}

/// A window recorder the engine can shard across workers: records an
/// SM's events during the window, replays them into the launch probe at
/// the barrier. [`NullProbe`](crate::probe::NullProbe) implements it as a
/// double no-op, so the uninstrumented engine monomorphizes with all
/// recording compiled out.
pub trait Recorder: Probe + Default + Send {
    /// Forwards all recorded events (in recording order) into `probe` and
    /// resets the recorder.
    fn replay<P: Probe>(&mut self, kernel: &Kernel, probe: &mut P);
}

impl Recorder for crate::probe::NullProbe {
    #[inline(always)]
    fn replay<P: Probe>(&mut self, _kernel: &Kernel, _probe: &mut P) {}
}

impl Recorder for EventBuf {
    fn replay<P: Probe>(&mut self, kernel: &Kernel, probe: &mut P) {
        EventBuf::replay(self, kernel, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bow_isa::KernelBuilder;

    /// Collects a rendering of each event for equality checks.
    #[derive(Default)]
    struct Render(Vec<String>);

    impl Probe for Render {
        fn on_event(&mut self, ev: &PipeEvent<'_>) {
            self.0.push(format!("{ev:?}"));
        }
    }

    #[test]
    fn record_replay_roundtrips_every_variant() {
        let kernel = KernelBuilder::new("k")
            .mov_imm(Reg::r(0), 7)
            .exit()
            .build()
            .unwrap();
        let inst = &kernel.insts[0];
        let vals: Vec<u32> = (0..32).collect();
        let events = [
            PipeEvent::Issued {
                uid: 9,
                pc: 0,
                active: 0xffff_ffff,
                inst,
            },
            PipeEvent::Dispatch {
                cycle: 4,
                sm: 1,
                warp: 2,
                pc: 0,
                seq: 3,
                oc_cycles: 2,
                is_mem: false,
                inst,
            },
            PipeEvent::ExecResult {
                uid: 9,
                pc: 0,
                seq: 3,
                dst_reg: Some(Reg::r(0)),
                dst_pred: None,
                mask: 0xffff_ffff,
                pred_bits: 0,
                values: &vals,
            },
            PipeEvent::CtrlTrace {
                uid: 9,
                pc: 1,
                seq: 4,
                arrive: 0xffff,
                live: 0xffff_ffff,
                depth: 1,
                sync_underflow: false,
                inst: &kernel.insts[1],
            },
            PipeEvent::MemTrace {
                uid: 9,
                pc: 0,
                seq: 5,
                is_store: true,
                shared: false,
                mask: 0b11,
                addrs: &[0x1000, 0x1004],
                values: &[7, 8],
            },
            PipeEvent::Stall(StallKind::Scoreboard),
            PipeEvent::WriteDestClass(WriteDest::BocOnly),
            PipeEvent::OccupancySample { live: 3, cap: 8 },
            PipeEvent::WarpExit { uid: 9 },
        ];
        let mut direct = Render::default();
        let mut buf = EventBuf::default();
        for ev in &events {
            direct.on_event(ev);
            buf.on_event(ev);
        }
        assert_eq!(buf.len(), events.len());
        let mut replayed = Render::default();
        buf.replay(&kernel, &mut replayed);
        assert_eq!(direct.0, replayed.0, "replay must be stream-identical");
        assert!(buf.is_empty(), "replay resets the buffer");
    }
}
