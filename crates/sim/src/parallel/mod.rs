//! The deterministic windowed multi-SM execution engine.
//!
//! One simulation used to be strictly single-threaded: the serial device
//! loop ticks every SM in index order, cycle by cycle. This module shards
//! the per-SM stage pipelines across a worker pool instead. Each worker
//! advances its SMs through a bounded *cycle window* completely
//! independently, then all SMs synchronize at the interconnect/L2
//! boundary ([`bow_mem::interconnect`]), where buffered global-memory
//! writes commit in the canonical `(cycle, sm_id, seq)` order and
//! per-shard probe buffers replay in SM-index order.
//!
//! # Windowed semantics
//!
//! During a window an SM observes the device-memory snapshot taken at
//! the last window boundary plus its own writes (read-your-writes via
//! the [`SmWindowBuf`] overlay); other SMs' writes become visible at the
//! next boundary. This is the engine's *semantics*, not an execution
//! detail: the single-thread engine runs the identical window protocol
//! inline, so results are byte-identical for every `sim_threads` value —
//! the thread count only chooses how the same deterministic schedule is
//! executed. Workloads free of cross-SM races within one launch (all of
//! ours except `bfs`, whose races are value-convergent) additionally
//! match the serial reference loop bit-for-bit.
//!
//! # Block dispatch
//!
//! The serial loop assigns queued blocks at the start of every device
//! cycle, scanning SMs in index order. The windowed engine reproduces
//! that schedule exactly with a halt-and-resume protocol: while blocks
//! remain undispatched, a worker halts an SM at the first cycle at which
//! it could host a block (its *dispatch point*) and reports its free
//! capacity. The coordinator takes the earliest dispatch point across
//! all halted SMs, hands out blocks there in SM-index order against the
//! reported capacities — the same greedy fill the serial loop performs —
//! and resumes exactly the SMs it considered. Because capacity evolution
//! is purely SM-local, the resulting assignment sequence is a pure
//! function of simulation state, independent of sharding and thread
//! count.
//!
//! # Determinism argument
//!
//! Every cross-SM interaction flows through one of three deterministic
//! merge points: the `(cycle, sm_id, seq)` write commit, the SM-indexed
//! probe replay, and the coordinator's dispatch protocol. Everything
//! else is SM-local state advanced by SM-local code. Hence `SimStats`,
//! per-SM stats, device cycles, final memory and the full probe stream
//! are invariant under `sim_threads`.

pub(crate) mod events;

use crate::probe::Probe;
use crate::sm::Sm;
use bow_isa::{Kernel, KernelDims};
use bow_mem::{commit_windows, GlobalMemory, SmWindowBuf, WindowedGlobal, WriteRec};
use events::Recorder;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, RwLock};

pub use events::EventBuf;

/// Engine knobs resolved by the launch path.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EngineParams {
    /// Warps each block occupies (from the launch dims).
    pub warps_per_block: u32,
    /// Watchdog (0 = unlimited), as in the serial loop.
    pub max_cycles: u64,
    /// Cycle-window length between interconnect synchronizations (≥ 1).
    pub window: u64,
    /// Worker threads to shard SMs across (≥ 1; capped at the SM count).
    pub threads: usize,
}

/// Where one SM halted when its worker handed control back.
#[derive(Clone, Copy, Debug)]
enum SmStatus {
    /// Halted at dispatch point `at` (device cycle) with free capacity:
    /// the coordinator may hand it blocks there.
    Stopped {
        at: u64,
        free_blocks: u32,
        free_warps: u32,
    },
    /// Ran to the window boundary while busy.
    AtEnd,
    /// Went idle with no blocks left; `last_busy` is the device cycle of
    /// its final tick.
    Done { last_busy: u64 },
}

/// One SM plus its window-private state, owned by a worker (or by the
/// inline engine).
struct SmLane<'a, R> {
    id: usize,
    sm: &'a mut Sm,
    buf: SmWindowBuf,
    rec: R,
    /// Device cycle of this SM's last executed tick. Unlike the SM's own
    /// `cycle` counter (which counts busy ticks only), this tracks the
    /// global timeline and stamps the write journal.
    dev_cycle: u64,
}

/// Advances one SM until it halts: at a dispatch point, at the window
/// boundary `until`, or permanently (idle with the grid drained). The
/// halt conditions are checked in the same order the serial loop
/// interleaves dispatch, the done-check and ticking.
fn advance<R: Recorder>(
    lane: &mut SmLane<'_, R>,
    base: &GlobalMemory,
    kernel: &Kernel,
    warps_per_block: u32,
    until: u64,
    blocks_remain: bool,
) -> SmStatus {
    loop {
        if !lane.sm.busy() {
            if !blocks_remain {
                return SmStatus::Done {
                    last_busy: lane.dev_cycle,
                };
            }
            // An idle SM always has capacity (launch asserts a block fits
            // an empty SM), so with blocks pending it halts for dispatch.
            let (free_blocks, free_warps) = lane.sm.free_capacity();
            return SmStatus::Stopped {
                at: lane.dev_cycle,
                free_blocks,
                free_warps,
            };
        }
        if blocks_remain && lane.sm.can_host_block(kernel, warps_per_block) {
            let (free_blocks, free_warps) = lane.sm.free_capacity();
            return SmStatus::Stopped {
                at: lane.dev_cycle,
                free_blocks,
                free_warps,
            };
        }
        if lane.dev_cycle >= until {
            return SmStatus::AtEnd;
        }
        lane.dev_cycle += 1;
        lane.buf.cycle = lane.dev_cycle;
        let mut view = WindowedGlobal {
            base,
            buf: &mut lane.buf,
        };
        lane.sm.tick(kernel, &mut view, &mut lane.rec);
    }
}

/// Installs `block_index` on an SM (row-major coordinates, exactly as the
/// serial loop computes them).
fn apply_assign(sm: &mut Sm, kernel: &Kernel, dims: KernelDims, block_index: u64) {
    let bx = (block_index % u64::from(dims.grid.0)) as u32;
    let by = (block_index / u64::from(dims.grid.0)) as u32;
    sm.assign_block(kernel, (bx, by), dims, block_index);
}

/// The execution backend the coordinator drives: either the inline
/// single-thread host or the worker-pool host. Both expose the same two
/// operations, so the coordination logic exists exactly once.
trait LaneHost<R: Recorder> {
    /// Delivers pending block assignments (`assigns` is drained), then
    /// advances every SM whose status slot is `None`, filling the slots.
    fn advance_pending(
        &mut self,
        statuses: &mut [Option<SmStatus>],
        until: u64,
        blocks_remain: bool,
        assigns: &mut Vec<(usize, Vec<u64>)>,
    );

    /// Window barrier: drains every SM's write journal, commits the
    /// journals to the base image in canonical order, and returns each
    /// SM's probe recorder for replay.
    fn commit_window(&mut self) -> Vec<(usize, R)>;
}

/// The coordinator: windows, dispatch synchronization, commit/replay
/// barriers and the device done/watchdog checks. Host-agnostic.
fn run_engine<R: Recorder, P: Probe, H: LaneHost<R>>(
    host: &mut H,
    num_sms: usize,
    kernel: &Kernel,
    dims: KernelDims,
    ep: &EngineParams,
    probe: &mut P,
) -> (u64, bool) {
    let total = u64::from(dims.total_blocks());
    let mut next_block = 0u64;
    let watchdog = if ep.max_cycles == 0 {
        u64::MAX
    } else {
        ep.max_cycles
    };
    let window = ep.window.max(1);
    let mut statuses: Vec<Option<SmStatus>> = vec![None; num_sms];
    let mut t0 = 0u64;
    loop {
        let until = t0.saturating_add(window).min(watchdog);
        let mut assigns: Vec<(usize, Vec<u64>)> = Vec::new();
        // Dispatch sub-rounds: run until every SM reached the window
        // boundary (or finished), synchronizing at each dispatch point.
        loop {
            host.advance_pending(&mut statuses, until, next_block < total, &mut assigns);
            let t_sync = statuses
                .iter()
                .filter_map(|s| match s {
                    Some(SmStatus::Stopped { at, .. }) => Some(*at),
                    _ => None,
                })
                .min();
            let Some(t_sync) = t_sync else { break };
            if t_sync >= watchdog {
                // The serial loop would also assign blocks here, but the
                // watchdog fires before they ever tick — unobservable.
                break;
            }
            // Greedy serial-order fill: scan SMs halted at exactly
            // `t_sync` in index order, first fit hosts the next block.
            let mut caps: Vec<(usize, u32, u32)> = Vec::new();
            for (sm, st) in statuses.iter().enumerate() {
                if let Some(SmStatus::Stopped {
                    at,
                    free_blocks,
                    free_warps,
                }) = st
                {
                    if *at == t_sync {
                        caps.push((sm, *free_blocks, *free_warps));
                    }
                }
            }
            while next_block < total {
                let Some(c) = caps
                    .iter_mut()
                    .find(|c| c.1 > 0 && c.2 >= ep.warps_per_block)
                else {
                    break;
                };
                match assigns.iter_mut().find(|(sm, _)| *sm == c.0) {
                    Some((_, list)) => list.push(next_block),
                    None => assigns.push((c.0, vec![next_block])),
                }
                c.1 -= 1;
                c.2 -= ep.warps_per_block;
                next_block += 1;
            }
            if next_block >= total {
                // Grid drained: release every halted SM to run out.
                for st in statuses.iter_mut() {
                    if matches!(st, Some(SmStatus::Stopped { .. })) {
                        *st = None;
                    }
                }
            } else {
                // Resume exactly the SMs considered at this sync point
                // (their capacity is now full, so they will not re-halt
                // at the same cycle).
                for (sm, _, _) in caps {
                    statuses[sm] = None;
                }
            }
        }
        // Window barrier: commit memory, then replay probe buffers in
        // SM-index order into the launch probe.
        let mut recorders = host.commit_window();
        recorders.sort_by_key(|(sm, _)| *sm);
        for (_, mut rec) in recorders {
            rec.replay(kernel, probe);
        }
        // Device done-check before the watchdog check, as in the serial
        // loop.
        if next_block >= total
            && statuses
                .iter()
                .all(|s| matches!(s, Some(SmStatus::Done { .. })))
        {
            let cycles = statuses
                .iter()
                .filter_map(|s| match s {
                    Some(SmStatus::Done { last_busy }) => Some(*last_busy),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            return (cycles, true);
        }
        if until >= watchdog {
            return (watchdog, false);
        }
        t0 = until;
        for st in statuses.iter_mut() {
            if matches!(st, Some(SmStatus::AtEnd)) {
                *st = None;
            }
        }
    }
}

/// The single-thread host: all lanes advance inline on the caller's
/// thread, in SM-index order. Same protocol, no synchronization cost.
struct InlineHost<'a, R> {
    lanes: Vec<SmLane<'a, R>>,
    base: &'a mut GlobalMemory,
    kernel: &'a Kernel,
    dims: KernelDims,
    warps_per_block: u32,
}

impl<R: Recorder> LaneHost<R> for InlineHost<'_, R> {
    fn advance_pending(
        &mut self,
        statuses: &mut [Option<SmStatus>],
        until: u64,
        blocks_remain: bool,
        assigns: &mut Vec<(usize, Vec<u64>)>,
    ) {
        for (sm, blocks) in assigns.drain(..) {
            for b in blocks {
                apply_assign(self.lanes[sm].sm, self.kernel, self.dims, b);
            }
        }
        for (sm, st) in statuses.iter_mut().enumerate() {
            if st.is_none() {
                *st = Some(advance(
                    &mut self.lanes[sm],
                    self.base,
                    self.kernel,
                    self.warps_per_block,
                    until,
                    blocks_remain,
                ));
            }
        }
    }

    fn commit_window(&mut self) -> Vec<(usize, R)> {
        let mut journals: Vec<(usize, Vec<WriteRec>)> = self
            .lanes
            .iter_mut()
            .map(|l| (l.id, l.buf.drain()))
            .collect();
        commit_windows(self.base, &mut journals);
        self.lanes
            .iter_mut()
            .map(|l| (l.id, std::mem::take(&mut l.rec)))
            .collect()
    }
}

/// Coordinator → worker commands.
enum Cmd {
    /// Apply the listed block assignments, then advance the listed lanes
    /// (by worker-local index) under the given round parameters.
    Round {
        until: u64,
        blocks_remain: bool,
        items: Vec<(usize, Vec<u64>)>,
    },
    /// Drain journals and recorders of all lanes.
    Harvest,
    /// Launch finished.
    Exit,
}

/// Worker → coordinator replies.
enum Rep<R> {
    Status(Vec<(usize, SmStatus)>),
    Windows(Vec<(usize, Vec<WriteRec>, R)>),
}

/// The worker body: owns a shard of lanes for the whole launch, reads
/// the shared base image under the interconnect read-lock while
/// advancing, and ships journals/recorders to the coordinator at
/// barriers.
fn worker_loop<R: Recorder>(
    lanes: &mut [SmLane<'_, R>],
    kernel: &Kernel,
    dims: KernelDims,
    warps_per_block: u32,
    base: &RwLock<GlobalMemory>,
    rx: &Receiver<Cmd>,
    tx: &Sender<Rep<R>>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Round {
                until,
                blocks_remain,
                items,
            } => {
                let guard = base.read().expect("interconnect lock poisoned");
                let mut out = Vec::with_capacity(items.len());
                for (local, blocks) in items {
                    let lane = &mut lanes[local];
                    for b in blocks {
                        apply_assign(lane.sm, kernel, dims, b);
                    }
                    let st = advance(lane, &guard, kernel, warps_per_block, until, blocks_remain);
                    out.push((lane.id, st));
                }
                drop(guard);
                if tx.send(Rep::Status(out)).is_err() {
                    return;
                }
            }
            Cmd::Harvest => {
                let out = lanes
                    .iter_mut()
                    .map(|l| (l.id, l.buf.drain(), std::mem::take(&mut l.rec)))
                    .collect();
                if tx.send(Rep::Windows(out)).is_err() {
                    return;
                }
            }
            Cmd::Exit => return,
        }
    }
}

/// The worker-pool host: lanes are dealt round-robin across persistent
/// scoped workers; the coordinator talks to them over channels and owns
/// the write side of the interconnect lock.
struct ThreadedHost<'a, R> {
    cmd: Vec<Sender<Cmd>>,
    rep: Receiver<Rep<R>>,
    /// `sm id → (worker, worker-local lane index)`.
    owner: Vec<(usize, usize)>,
    base: &'a RwLock<GlobalMemory>,
}

impl<R: Recorder> LaneHost<R> for ThreadedHost<'_, R> {
    fn advance_pending(
        &mut self,
        statuses: &mut [Option<SmStatus>],
        until: u64,
        blocks_remain: bool,
        assigns: &mut Vec<(usize, Vec<u64>)>,
    ) {
        let mut items: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); self.cmd.len()];
        let mut pending_assigns: Vec<Vec<u64>> = vec![Vec::new(); statuses.len()];
        for (sm, blocks) in assigns.drain(..) {
            pending_assigns[sm] = blocks;
        }
        for (sm, st) in statuses.iter().enumerate() {
            if st.is_none() {
                let (w, local) = self.owner[sm];
                items[w].push((local, std::mem::take(&mut pending_assigns[sm])));
            }
        }
        let mut contacted = 0;
        for (w, batch) in items.into_iter().enumerate() {
            if !batch.is_empty() {
                self.cmd[w]
                    .send(Cmd::Round {
                        until,
                        blocks_remain,
                        items: batch,
                    })
                    .expect("worker exited early");
                contacted += 1;
            }
        }
        for _ in 0..contacted {
            match self.rep.recv().expect("worker exited early") {
                Rep::Status(batch) => {
                    for (sm, st) in batch {
                        statuses[sm] = Some(st);
                    }
                }
                Rep::Windows(_) => unreachable!("harvest reply outside a barrier"),
            }
        }
    }

    fn commit_window(&mut self) -> Vec<(usize, R)> {
        for tx in &self.cmd {
            tx.send(Cmd::Harvest).expect("worker exited early");
        }
        let mut journals: Vec<(usize, Vec<WriteRec>)> = Vec::new();
        let mut recorders = Vec::new();
        for _ in 0..self.cmd.len() {
            match self.rep.recv().expect("worker exited early") {
                Rep::Windows(batch) => {
                    for (sm, journal, rec) in batch {
                        journals.push((sm, journal));
                        recorders.push((sm, rec));
                    }
                }
                Rep::Status(_) => unreachable!("status reply at a barrier"),
            }
        }
        let mut base = self.base.write().expect("interconnect lock poisoned");
        commit_windows(&mut base, &mut journals);
        recorders
    }
}

fn run_inline<R: Recorder, P: Probe>(
    sms: &mut [Sm],
    global: &mut GlobalMemory,
    kernel: &Kernel,
    dims: KernelDims,
    ep: &EngineParams,
    probe: &mut P,
) -> (u64, bool) {
    let num_sms = sms.len();
    let lanes = sms
        .iter_mut()
        .enumerate()
        .map(|(id, sm)| SmLane {
            id,
            sm,
            buf: SmWindowBuf::new(),
            rec: R::default(),
            dev_cycle: 0,
        })
        .collect();
    let mut host = InlineHost {
        lanes,
        base: global,
        kernel,
        dims,
        warps_per_block: ep.warps_per_block,
    };
    run_engine::<R, P, _>(&mut host, num_sms, kernel, dims, ep, probe)
}

fn run_threaded<R: Recorder, P: Probe>(
    sms: &mut [Sm],
    global: &mut GlobalMemory,
    kernel: &Kernel,
    dims: KernelDims,
    ep: &EngineParams,
    probe: &mut P,
) -> (u64, bool) {
    let num_sms = sms.len();
    let workers = ep.threads.min(num_sms).max(1);
    let base = RwLock::new(std::mem::take(global));
    let mut owner = vec![(0usize, 0usize); num_sms];
    let mut shards: Vec<Vec<SmLane<'_, R>>> = (0..workers).map(|_| Vec::new()).collect();
    for (id, sm) in sms.iter_mut().enumerate() {
        let w = id % workers;
        owner[id] = (w, shards[w].len());
        shards[w].push(SmLane {
            id,
            sm,
            buf: SmWindowBuf::new(),
            rec: R::default(),
            dev_cycle: 0,
        });
    }
    let result = std::thread::scope(|s| {
        let mut cmd = Vec::with_capacity(workers);
        let (rep_tx, rep_rx) = mpsc::channel::<Rep<R>>();
        for shard in shards.iter_mut() {
            let (tx, rx) = mpsc::channel::<Cmd>();
            cmd.push(tx);
            let rep_tx = rep_tx.clone();
            let base = &base;
            let wpb = ep.warps_per_block;
            s.spawn(move || worker_loop(shard, kernel, dims, wpb, base, &rx, &rep_tx));
        }
        let mut host = ThreadedHost {
            cmd,
            rep: rep_rx,
            owner,
            base: &base,
        };
        let out = run_engine::<R, P, _>(&mut host, num_sms, kernel, dims, ep, probe);
        for tx in &host.cmd {
            let _ = tx.send(Cmd::Exit);
        }
        out
    });
    *global = base.into_inner().expect("interconnect lock poisoned");
    result
}

/// Runs a launch under the windowed engine. `R` selects the per-SM probe
/// recorder ([`EventBuf`] when the caller's probe is active,
/// [`NullProbe`](crate::probe::NullProbe) otherwise — the latter
/// monomorphizes all recording out). Returns `(device cycles,
/// completed)` exactly like the serial loop.
pub(crate) fn run_windowed<R: Recorder, P: Probe>(
    sms: &mut [Sm],
    global: &mut GlobalMemory,
    kernel: &Kernel,
    dims: KernelDims,
    ep: &EngineParams,
    probe: &mut P,
) -> (u64, bool) {
    if ep.threads.min(sms.len()) <= 1 {
        run_inline::<R, P>(sms, global, kernel, dims, ep, probe)
    } else {
        run_threaded::<R, P>(sms, global, kernel, dims, ep, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorKind;
    use crate::config::GpuConfig;
    use crate::probe::{NullProbe, PipeEvent};
    use bow_isa::{KernelBuilder, Operand, Reg, Special};

    fn saxpy_kernel() -> Kernel {
        let r = Reg::r;
        KernelBuilder::new("saxpy")
            .s2r(r(0), Special::TidX)
            .s2r(r(1), Special::CtaidX)
            .s2r(r(2), Special::NtidX)
            .imad(r(0), r(1).into(), r(2).into(), r(0).into())
            .shl(r(3), r(0).into(), Operand::Imm(2))
            .ldc(r(4), 0)
            .iadd(r(4), r(4).into(), r(3).into())
            .ldg(r(5), r(4), 0)
            .ldc(r(6), 4)
            .iadd(r(6), r(6).into(), r(3).into())
            .ldg(r(7), r(6), 0)
            .ldc(r(8), 8)
            .ffma(r(5), r(5).into(), r(8).into(), r(7).into())
            .stg(r(6), 0, r(5).into())
            .exit()
            .build()
            .unwrap()
    }

    fn fresh_device(num_sms: u32) -> (Vec<Sm>, GlobalMemory) {
        let mut cfg = GpuConfig::scaled(CollectorKind::bow_wr(3));
        cfg.num_sms = num_sms;
        let sms = (0..num_sms as usize).map(|i| Sm::new(i, &cfg)).collect();
        let mut global = GlobalMemory::new();
        global.write_slice_f32(0x1_0000, &vec![1.0; 2048]);
        global.write_slice_f32(0x2_0000, &vec![2.0; 2048]);
        (sms, global)
    }

    const PARAMS: [u32; 3] = [0x1_0000, 0x2_0000, 0x4040_0000 /* 3.0f32 */];

    /// A transliteration of the device serial loop (`gpu::run_blocks`),
    /// kept here as the independent reference the windowed engine must
    /// reproduce bit-for-bit on race-free kernels.
    fn run_serial_reference(
        sms: &mut [Sm],
        global: &mut GlobalMemory,
        kernel: &Kernel,
        dims: KernelDims,
        warps_per_block: u32,
        max_cycles: u64,
    ) -> (u64, bool) {
        let total = u64::from(dims.total_blocks());
        let mut next_block = 0u64;
        let mut cycles = 0u64;
        let watchdog = if max_cycles == 0 {
            u64::MAX
        } else {
            max_cycles
        };
        loop {
            while next_block < total {
                let Some(sm) = sms
                    .iter_mut()
                    .find(|sm| sm.can_host_block(kernel, warps_per_block))
                else {
                    break;
                };
                apply_assign(sm, kernel, dims, next_block);
                next_block += 1;
            }
            if next_block >= total && sms.iter().all(|sm| !sm.busy()) {
                return (cycles, true);
            }
            if cycles >= watchdog {
                return (cycles, false);
            }
            cycles += 1;
            for sm in sms.iter_mut() {
                if sm.busy() {
                    sm.tick(kernel, global, &mut NullProbe);
                }
            }
        }
    }

    fn state_digest(sms: &[Sm], global: &GlobalMemory, cycles: u64, completed: bool) -> String {
        let per_sm: Vec<String> = sms.iter().map(|s| format!("{:?}", s.stats())).collect();
        format!(
            "cycles={cycles} completed={completed} mem={:#x} per_sm={per_sm:?}",
            global.fingerprint()
        )
    }

    fn run_windowed_digest(threads: usize, window: u64) -> String {
        let kernel = saxpy_kernel();
        let dims = KernelDims::linear(16, 64);
        let (mut sms, mut global) = fresh_device(4);
        for sm in &mut sms {
            sm.reset_for_launch(&PARAMS);
        }
        let ep = EngineParams {
            warps_per_block: dims.warps_per_block(),
            max_cycles: 0,
            window,
            threads,
        };
        let (cycles, completed) =
            run_windowed::<NullProbe, _>(&mut sms, &mut global, &kernel, dims, &ep, &mut NullProbe);
        assert!(completed);
        state_digest(&sms, &global, cycles, completed)
    }

    #[test]
    fn windowed_engine_matches_serial_reference_bit_for_bit() {
        let kernel = saxpy_kernel();
        let dims = KernelDims::linear(16, 64);
        let (mut sms, mut global) = fresh_device(4);
        for sm in &mut sms {
            sm.reset_for_launch(&PARAMS);
        }
        let (cycles, completed) = run_serial_reference(
            &mut sms,
            &mut global,
            &kernel,
            dims,
            dims.warps_per_block(),
            0,
        );
        assert!(completed);
        let serial = state_digest(&sms, &global, cycles, completed);
        assert_eq!(run_windowed_digest(1, 256), serial);
    }

    #[test]
    fn results_invariant_under_thread_count() {
        let one = run_windowed_digest(1, 256);
        assert_eq!(run_windowed_digest(2, 256), one);
        assert_eq!(run_windowed_digest(8, 256), one);
        // More workers than SMs must also work (capped to the SM count).
        assert_eq!(run_windowed_digest(64, 256), one);
    }

    #[test]
    fn race_free_results_invariant_under_window_length() {
        let w256 = run_windowed_digest(1, 256);
        assert_eq!(run_windowed_digest(2, 1), w256);
        assert_eq!(run_windowed_digest(4, 7), w256);
        assert_eq!(run_windowed_digest(2, 100_000), w256);
    }

    /// A probe that renders every event to its debug form, so two runs
    /// can compare full event streams.
    #[derive(Default)]
    struct StreamProbe(Vec<String>);

    impl Probe for StreamProbe {
        fn on_event(&mut self, ev: &PipeEvent<'_>) {
            self.0.push(format!("{ev:?}"));
        }
    }

    fn run_event_stream(threads: usize) -> Vec<String> {
        let kernel = saxpy_kernel();
        let dims = KernelDims::linear(8, 64);
        let (mut sms, mut global) = fresh_device(4);
        for sm in &mut sms {
            sm.reset_for_launch(&PARAMS);
        }
        let ep = EngineParams {
            warps_per_block: dims.warps_per_block(),
            max_cycles: 0,
            window: 64,
            threads,
        };
        let mut probe = StreamProbe::default();
        let (_, completed) =
            run_windowed::<EventBuf, _>(&mut sms, &mut global, &kernel, dims, &ep, &mut probe);
        assert!(completed);
        assert!(!probe.0.is_empty());
        probe.0
    }

    #[test]
    fn probe_event_stream_invariant_under_thread_count() {
        let one = run_event_stream(1);
        assert_eq!(run_event_stream(3), one);
        assert_eq!(run_event_stream(8), one);
    }

    #[test]
    fn watchdog_fires_under_windowed_engine() {
        let r = Reg::r;
        let spin = KernelBuilder::new("spin")
            .label("top")
            .iadd(r(0), r(0).into(), Operand::Imm(1))
            .bra("top")
            .exit()
            .build()
            .unwrap();
        for threads in [1, 3] {
            let (mut sms, mut global) = fresh_device(4);
            for sm in &mut sms {
                sm.reset_for_launch(&[]);
            }
            let dims = KernelDims::linear(4, 32);
            let ep = EngineParams {
                warps_per_block: dims.warps_per_block(),
                max_cycles: 5_000,
                window: 256,
                threads,
            };
            let (cycles, completed) = run_windowed::<NullProbe, _>(
                &mut sms,
                &mut global,
                &spin,
                dims,
                &ep,
                &mut NullProbe,
            );
            assert!(!completed);
            assert_eq!(cycles, 5_000);
        }
    }
}
